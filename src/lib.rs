//! # Lifeguard
//!
//! A production-quality Rust reproduction of **"Lifeguard: Local Health
//! Awareness for More Accurate Failure Detection"** (Dadgar, Phillips,
//! Currey — HashiCorp, DSN 2018), built on a from-scratch implementation of
//! the SWIM group-membership protocol in the style of HashiCorp
//! `memberlist`.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`proto`] — wire messages and binary codec.
//! * [`core`] — the sans-io SWIM + Lifeguard protocol state machine.
//! * [`sim`] — a deterministic discrete-event cluster simulator used by the
//!   paper-reproduction experiments.
//! * [`net`] — a real UDP/TCP runtime (memberlist-style agent).
//! * [`metrics`] — the observability plane: allocation-free counters and
//!   histograms the core records into, snapshot codec, aggregation.
//! * [`experiments`] — the Threshold / Interval / stress experiment harness
//!   that regenerates every table and figure of the paper.
//!
//! # Quickstart
//!
//! Run a five-node simulated cluster and watch a failure being detected:
//!
//! ```
//! use lifeguard::core::config::Config;
//! use lifeguard::sim::cluster::{ClusterBuilder, SimAction};
//! use lifeguard::sim::clock::SimDuration;
//!
//! let mut cluster = ClusterBuilder::new(5)
//!     .config(Config::lan().lifeguard())
//!     .seed(7)
//!     .build();
//! cluster.run_for(SimDuration::from_secs(20)); // converge
//! cluster.apply(SimAction::Crash { node: 4 });
//! cluster.run_for(SimDuration::from_secs(30));
//! let trace = cluster.trace();
//! assert!(trace.first_failure_detection("node-4").is_some());
//! ```

pub use lifeguard_core as core;
pub use lifeguard_experiments as experiments;
pub use lifeguard_metrics as metrics;
pub use lifeguard_net as net;
pub use lifeguard_proto as proto;
pub use lifeguard_sim as sim;
