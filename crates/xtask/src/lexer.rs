//! A minimal, single-purpose Rust lexer for static analysis.
//!
//! The analyzer's rules match on *code* tokens — identifiers and
//! punctuation — so the lexer's whole job is to be exact about what is
//! code and what is not: line comments, (nested) block comments, plain
//! and raw strings, byte strings, and character literals must never
//! leak their contents into the token stream (`// this .unwrap() is
//! prose` is not a violation), while comment *text* is preserved
//! separately because two rules read it (`// SAFETY:` audits and
//! `// lint: allow(...)` waivers).
//!
//! This is deliberately not a full Rust lexer: numeric-literal shapes,
//! operator fission (`>>` vs `> >`), and token spacing don't matter to
//! any rule, so everything that is neither an identifier, a comment,
//! nor a literal is emitted as single-character punctuation.

/// One significant (non-comment, non-whitespace) token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `unwrap`, `std`, ...).
    Ident(String),
    /// A string/char/numeric literal. The payload is *not* kept —
    /// literal contents must never match a rule. Only string literals
    /// record their text, because the FFI rule reads `extern "C"`'s
    /// ABI string.
    Literal(Option<String>),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A single punctuation character (`.`, `!`, `[`, `{`, ...).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment's text (with the `//`, `///`, `/*` markers stripped) and
/// the lines it spans, kept for waiver and `SAFETY:` scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line_start: u32,
    pub line_end: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// All comments whose span covers `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line_start <= line && line <= c.line_end)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into significant tokens plus comments.
///
/// Unterminated strings/comments are tolerated (the rest of the file
/// is swallowed into the literal/comment): the analyzer must degrade
/// gracefully on code mid-edit, and rustc rejects such files anyway.
pub fn lex(src: &str) -> LexedFile {
    let b: Vec<char> = src.chars().collect();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Advances past `\n`s inside `[from, to)` updating the line count.
    macro_rules! count_lines {
        ($from:expr, $to:expr) => {
            for k in $from..$to {
                if b[k] == '\n' {
                    line += 1;
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments `///`, `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let text = text.trim_start_matches('/').trim_start_matches('!').trim();
            out.comments.push(Comment {
                text: text.to_string(),
                line_start: line,
                line_end: line,
            });
            continue;
        }
        // Block comment, possibly nested (incl. `/** */`, `/*! */`).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let line_start = line;
            let start = i;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            let text = text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim_end_matches('/')
                .trim_end_matches('*')
                .trim();
            out.comments.push(Comment {
                text: text.to_string(),
                line_start,
                line_end: line,
            });
            continue;
        }
        // Raw strings r"..." / r#"..."# / byte-raw br#"..."# — detect
        // before plain identifiers since they start with letters.
        if (c == 'r' || c == 'b') && raw_string_at(&b, i).is_some() {
            let (hashes, body_start) = raw_string_at(&b, i).unwrap_or((0, i));
            // Scan for `"` followed by `hashes` `#`s.
            let mut j = body_start;
            let closing: String = std::iter::once('"').chain((0..hashes).map(|_| '#')).collect();
            let closing: Vec<char> = closing.chars().collect();
            while j < n {
                if b[j] == '"' && j + closing.len() <= n && b[j..j + closing.len()] == closing[..] {
                    j += closing.len();
                    break;
                }
                j += 1;
            }
            let tok_line = line;
            count_lines!(i, j.min(n));
            i = j.min(n);
            out.tokens.push(Token {
                tok: Tok::Literal(None),
                line: tok_line,
            });
            continue;
        }
        // Identifier / keyword (a `b` or `r` not starting a raw string
        // falls through to here; `b"..."` byte strings are handled by
        // the string arm after the single `b` ident? No — handle the
        // `b"` prefix explicitly below).
        if is_ident_start(c) {
            // Byte-string prefix: `b"..."`.
            if c == 'b' && i + 1 < n && b[i + 1] == '"' {
                i += 1; // fall into the string arm on the quote
            } else {
                let start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
                continue;
            }
        }
        // String literal.
        if b[i] == '"' {
            let tok_line = line;
            let start = i;
            i += 1;
            while i < n {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            let text: String = b[start..i.min(n)].iter().collect();
            let inner = text.trim_matches('"').to_string();
            out.tokens.push(Token {
                tok: Tok::Literal(Some(inner)),
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime. A `'` begins a char literal when
        // the quoted content closes with another `'` (one escaped or
        // plain char); otherwise it is a lifetime (`'a`, `'static`).
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: skip to the closing quote.
                let mut j = i + 2;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Literal(None),
                    line,
                });
                i = (j + 1).min(n);
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                // 'x' — a plain char literal.
                out.tokens.push(Token {
                    tok: Tok::Literal(None),
                    line,
                });
                i += 3;
                continue;
            }
            // A lifetime: consume the identifier after the quote.
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Lifetime,
                line,
            });
            i = j.max(i + 1);
            continue;
        }
        // Numeric literal (digits, underscores, suffixes, hex/oct/bin,
        // floats). Consumed coarsely: rules never match numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_continue(b[j]) || b[j] == '.') {
                // `0..10` range: stop before the second dot.
                if b[j] == '.' && j + 1 < n && b[j + 1] == '.' {
                    break;
                }
                j += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Literal(None),
                line,
            });
            i = j;
            continue;
        }
        // Everything else: one punctuation char.
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

/// If a raw (byte) string starts at `i`, returns `(hash_count,
/// index_after_opening_quote)`.
fn raw_string_at(b: &[char], i: usize) -> Option<(usize, usize)> {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= n || b[j] != 'r' {
            return None;
        }
    }
    if j >= n || b[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < n && b[j] == '"' {
        Some((hashes, j + 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_do_not_leak_tokens() {
        let src = "// x.unwrap()\n/* panic! */ fn ok() {}\n";
        assert_eq!(idents(src), ["fn", "ok"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        assert_eq!(idents(src), ["fn", "f"]);
        let lexed = lex(src);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r####"let s = r#"contains "quotes" and unwrap"#; let t = s;"####;
        assert_eq!(idents(src), ["let", "s", "let", "t", "s"]);
    }

    #[test]
    fn raw_string_is_one_literal_token() {
        let src = r####"r#"a "b" c"# x"####;
        let lexed = lex(src);
        assert_eq!(lexed.tokens.len(), 2);
        assert!(matches!(lexed.tokens[0].tok, Tok::Literal(None)));
        assert_eq!(lexed.tokens[1].tok, Tok::Ident("x".into()));
    }

    #[test]
    fn byte_and_escaped_strings() {
        let src = r#"let a = b"bytes"; let c = "esc \" quote"; let d = '\n'; let e = 'x';"#;
        assert_eq!(idents(src), ["let", "a", "let", "c", "let", "d", "let", "e"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let lexed = lex(src);
        let b_line = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn multiline_strings_advance_lines() {
        let src = "let s = \"line\nbreak\";\nfn after() {}";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("after".into()))
            .map(|t| t.line);
        assert_eq!(after, Some(3));
    }

    #[test]
    fn extern_abi_string_is_kept() {
        let src = "extern \"C\" { fn poll(); }";
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Literal(Some("C".into()))));
    }

    #[test]
    fn block_comment_spans_cover_inner_lines() {
        let src = "/* a\nb\nc */ fn f() {}";
        let lexed = lex(src);
        let c = &lexed.comments[0];
        assert_eq!((c.line_start, c.line_end), (1, 3));
        assert!(lexed.comments_on_line(2).next().is_some());
    }
}
