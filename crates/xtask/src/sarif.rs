//! A minimal SARIF 2.1.0 emitter for the lint findings.
//!
//! SARIF is the interchange format code-scanning UIs ingest; emitting
//! it lets CI surface swim-lint findings inline on diffs without any
//! bespoke tooling. Only the subset the findings need is produced: one
//! run, one `tool.driver` with the rule catalog, and one `result` per
//! finding (active findings at `error` level, waived ones demoted to
//! `note` with the waiver reason appended).

use std::fmt::Write as _;

use crate::report::{json_escape, Report};
use crate::rules::ALL_RULES;

/// Short human descriptions for the rule catalog.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "layering" => "sans-I/O layering: no sockets, clocks, threads, or entropy in core crates",
        "panic" => "lexical panic-freedom on wire-facing crates",
        "unsafe_safety" => "every unsafe block needs an adjacent SAFETY audit",
        "ffi" => "FFI confined to the polling shim's allowlisted symbols",
        "lossy_cast" => "no unwaived narrowing casts on FFI/codec paths",
        "waiver" => "waivers must parse, name a known rule, and give a reason",
        "panic_path" => "no unwaived panic site reachable from a declared entry point",
        "alloc_free" => "no allocating construct reachable from the driver poll loop",
        "lock_discipline" => "no syscall-reaching call while the net driver lock is held",
        "bounded_growth" => "growable fields of long-lived structs must document their cap",
        _ => "swim-lint rule",
    }
}

/// Renders the whole report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let mut s = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"swim-lint\",\n          \
         \"version\": \"2.0.0\",\n          \"informationUri\": \"docs/ANALYSIS.md\",\n          \
         \"rules\": [\n",
    );
    for (i, rule) in ALL_RULES.iter().enumerate() {
        let comma = if i + 1 == ALL_RULES.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "            {{\"id\": \"{rule}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{comma}",
            json_escape(rule_description(rule))
        );
    }
    s.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    let total = report.violations.len();
    for (i, v) in report.violations.iter().enumerate() {
        let comma = if i + 1 == total { "" } else { "," };
        let (level, text) = match &v.waived {
            Some(reason) => ("note", format!("{} [waived: {}]", v.message, reason)),
            None => ("error", v.message.clone()),
        };
        let _ = writeln!(
            s,
            "        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{comma}",
            v.rule,
            json_escape(&text),
            json_escape(&v.file),
            v.line.max(1)
        );
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Violation, RULE_PANIC_PATH};

    #[test]
    fn sarif_document_has_all_rules_and_levels() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: RULE_PANIC_PATH,
            file: "crates/core/src/node.rs".into(),
            line: 7,
            message: "reachable \"panic\"".into(),
            waived: None,
        });
        r.violations.push(Violation {
            rule: RULE_PANIC_PATH,
            file: "crates/core/src/node.rs".into(),
            line: 9,
            message: "reachable".into(),
            waived: Some("by design".into()),
        });
        let doc = render_sarif(&r);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        for rule in ALL_RULES {
            assert!(doc.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
        assert!(doc.contains("\"level\": \"error\""));
        assert!(doc.contains("\"level\": \"note\""));
        assert!(doc.contains("reachable \\\"panic\\\""));
        assert!(doc.contains("\"startLine\": 7"));
    }
}
