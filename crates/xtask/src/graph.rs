//! The workspace call graph and the four graph rules.
//!
//! Built from every parsed non-test function (see
//! [`parser`](crate::parser)), the graph resolves calls **by name**,
//! conservatively:
//!
//! - a method call `.foo(...)` links to *every* workspace function named
//!   `foo` (the receiver's type is unknown — this over-approximates
//!   trait objects and closures by construction);
//! - a qualified call `Type::foo(...)` links to the matching
//!   `impl`/`trait` methods when one exists; a qualified call through a
//!   lowercase (module) path or `Self` falls back to name resolution;
//! - a qualified call on a CamelCase type with no workspace `impl` is
//!   external (`u32::from_le_bytes`, `Duration::from_secs`, ...) and
//!   produces no edge — external callees contribute *sites*, not
//!   edges (`.unwrap()` on the result is still seen at the call site).
//!
//! On that graph four rules run: **panic-reachability** per declared
//! entry point, **static alloc-freedom** of the driver poll loop,
//! **lock discipline** (no syscall-reaching call under the net driver
//! lock), and **bounded growth** of collection fields in long-lived
//! structs. See `docs/ANALYSIS.md` for semantics and soundness
//! caveats.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::lexer::Comment;
use crate::parser::{FnDef, ParsedFile, SiteKind, StructDef, GROWABLE_TYPES};
use crate::rules::{
    FileClass, Violation, Waiver, RULE_ALLOC_FREE, RULE_BOUNDED_GROWTH, RULE_LOCK_DISCIPLINE,
    RULE_PANIC, RULE_PANIC_PATH,
};

/// One declared panic-reachability entry point.
#[derive(Debug, Clone)]
pub struct EntrySpec {
    /// Qualified function name (`SwimNode::handle_input`).
    pub qname: String,
    /// Wire entry points are pinned at **zero** reachable panic sites:
    /// their baseline may never be raised above 0.
    pub wire: bool,
}

/// Configuration of the graph rules: entry points, long-lived roots,
/// and scopes. The workspace uses [`GraphConfig::workspace`]; fixture
/// mini-workspaces construct their own.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Crates whose functions and structs populate the graph. A name
    /// ending in `/` is a prefix (`compat/` = every compat shim).
    /// Harness crates (`bench`'s naive mirror, `sim`, `experiments`,
    /// the criterion/proptest shims) are excluded: production code
    /// cannot call into them — no production crate depends on them —
    /// so their deliberately-API-mirroring names must not absorb
    /// name-resolved edges.
    pub graph_crates: Vec<String>,
    /// Direct crate dependencies (`crate → [deps]`), mirroring the
    /// workspace `Cargo.toml`s. Calls to *inherent*-looking method
    /// names resolve only within the caller's dependency cone (its
    /// crate plus the transitive closure of these edges); calls to
    /// names declared as trait methods resolve workspace-wide, since
    /// trait dispatch can genuinely cross layers in either direction
    /// (core's `Sink` is implemented by `net`).
    pub deps: Vec<(String, Vec<String>)>,
    /// Panic-reachability entry points.
    pub panic_entries: Vec<EntrySpec>,
    /// Alloc-freedom entry points (the driver poll loop).
    pub alloc_entries: Vec<String>,
    /// Long-lived struct roots for the bounded-growth rule; the rule
    /// closes over struct containment from these.
    pub long_lived_roots: Vec<String>,
    /// Crates whose structs the bounded-growth rule inspects.
    pub bounded_crates: Vec<String>,
    /// Crates whose lock regions the lock-discipline rule inspects.
    pub lock_crates: Vec<String>,
    /// The crate holding raw syscall declarations (the polling shim).
    pub syscall_crate: String,
    /// The raw syscall symbol names (the FFI allowlist).
    pub syscall_symbols: Vec<String>,
}

impl GraphConfig {
    /// The real workspace's configuration.
    pub fn workspace() -> GraphConfig {
        GraphConfig {
            graph_crates: vec![
                "core".into(),
                "proto".into(),
                "net".into(),
                "metrics".into(),
                "compat/bytes".into(),
                "compat/rand".into(),
                "compat/parking_lot".into(),
                "compat/polling".into(),
                "compat/crossbeam".into(),
            ],
            deps: vec![
                ("proto".into(), vec!["compat/bytes".into()]),
                (
                    "core".into(),
                    vec![
                        "proto".into(),
                        "metrics".into(),
                        "compat/bytes".into(),
                        "compat/rand".into(),
                    ],
                ),
                (
                    "net".into(),
                    vec![
                        "proto".into(),
                        "metrics".into(),
                        "core".into(),
                        "compat/bytes".into(),
                        "compat/crossbeam".into(),
                        "compat/parking_lot".into(),
                        "compat/polling".into(),
                    ],
                ),
            ],
            panic_entries: vec![
                entry("SwimNode::handle_input", false),
                entry("SwimNode::poll_output", false),
                entry("SwimNode::handle_datagram_slice", true),
                entry("FrameDecoder::decode", true),
                entry("Snapshot::decode", true),
            ],
            alloc_entries: vec![
                "SwimNode::poll_output".into(),
                "SwimNode::drain_split".into(),
            ],
            long_lived_roots: vec![
                "SwimNode".into(),
                "Inner".into(),
                "Agent".into(),
                "Reactor".into(),
            ],
            bounded_crates: vec!["core".into(), "net".into()],
            lock_crates: vec!["net".into()],
            syscall_crate: "compat/polling".into(),
            syscall_symbols: crate::rules::FFI_ALLOWLIST
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
        }
    }
}

fn entry(qname: &str, wire: bool) -> EntrySpec {
    EntrySpec {
        qname: qname.into(),
        wire,
    }
}

impl GraphConfig {
    /// Whether `crate_name` participates in the call graph.
    fn in_graph(&self, crate_name: &str) -> bool {
        self.graph_crates.iter().any(|g| {
            if let Some(prefix) = g.strip_suffix('/') {
                crate_name == prefix || crate_name.starts_with(g.as_str())
            } else {
                g == crate_name
            }
        })
    }
}

/// Per-file inputs to the graph pass, produced by the workspace walk.
#[derive(Debug)]
pub struct FileData {
    pub rel: String,
    pub class: FileClass,
    pub parsed: ParsedFile,
    pub waivers: Vec<Waiver>,
    pub comments: Vec<Comment>,
}

/// What the graph pass concluded.
#[derive(Debug, Default)]
pub struct GraphOutcome {
    /// Findings from all four rules (waived ones carry their reason).
    pub violations: Vec<Violation>,
    /// Per-entry-point count of **unwaived** reachable panic sites
    /// (the per-entry baseline/ratchet input).
    pub entry_counts: BTreeMap<String, u64>,
    /// Example call chain per entry point (one per reachable site is in
    /// the violations; this is the summary shown in ANALYSIS.json).
    pub entry_chains: BTreeMap<String, Vec<String>>,
    /// Graph size, for the report.
    pub functions: usize,
    pub edges: usize,
}

/// The resolved workspace call graph.
pub struct CallGraph<'a> {
    fns: Vec<&'a FnDef>,
    structs: Vec<&'a StructDef>,
    by_name: HashMap<&'a str, Vec<usize>>,
    by_qname: HashMap<&'a str, Vec<usize>>,
    /// Adjacency: `edges[i]` = indices of functions `fns[i]` may call.
    edges: Vec<Vec<usize>>,
    files: &'a [FileData],
    /// File index of each fn (into `files`).
    fn_file: Vec<usize>,
    /// Names declared as trait methods anywhere in the graph crates.
    trait_methods: HashSet<String>,
    /// Dependency cones: crate → the crates it can see (not including
    /// itself).
    cones: HashMap<String, HashSet<String>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over every non-test function of the in-graph
    /// crates in `files`.
    pub fn build(files: &'a [FileData], config: &GraphConfig) -> CallGraph<'a> {
        let mut fns = Vec::new();
        let mut fn_file = Vec::new();
        let mut structs = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if !config.in_graph(&f.class.crate_name) {
                continue;
            }
            for d in &f.parsed.fns {
                if !d.is_test {
                    fns.push(d);
                    fn_file.push(fi);
                }
            }
            for s in &f.parsed.structs {
                if !s.is_test {
                    structs.push(s);
                }
            }
        }
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qname: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, d) in fns.iter().enumerate() {
            by_name.entry(&d.name).or_default().push(i);
            by_qname.entry(&d.qname).or_default().push(i);
        }
        let mut trait_methods: HashSet<String> = HashSet::new();
        for f in files {
            if config.in_graph(&f.class.crate_name) {
                trait_methods.extend(f.parsed.trait_methods.iter().cloned());
            }
        }
        // Transitive dependency closure.
        let mut cones: HashMap<String, HashSet<String>> = HashMap::new();
        let direct: HashMap<&str, &Vec<String>> =
            config.deps.iter().map(|(k, v)| (k.as_str(), v)).collect();
        for (name, deps) in &config.deps {
            let mut seen: HashSet<String> = HashSet::new();
            let mut q: VecDeque<&str> = deps.iter().map(String::as_str).collect();
            while let Some(d) = q.pop_front() {
                if seen.insert(d.to_string()) {
                    for dd in direct.get(d).map(|v| v.iter()).into_iter().flatten() {
                        q.push_back(dd);
                    }
                }
            }
            cones.insert(name.clone(), seen);
        }
        let mut g = CallGraph {
            fns,
            structs,
            by_name,
            by_qname,
            edges: Vec::new(),
            files,
            fn_file,
            trait_methods,
            cones,
        };
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(g.fns.len());
        for d in &g.fns {
            let mut out: Vec<usize> = Vec::new();
            for c in &d.calls {
                g.resolve(&d.crate_name, &c.path, c.method, &mut out);
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        g.edges = edges;
        g
    }

    /// Resolves one call from a function in `caller_crate` to graph
    /// indices (see module docs for the name-resolution policy).
    fn resolve(&self, caller_crate: &str, path: &[String], method: bool, out: &mut Vec<usize>) {
        let Some(last) = path.last() else { return };
        let trait_name = self.trait_methods.contains(last.as_str());
        let in_cone = |i: &usize| -> bool {
            if trait_name {
                return true;
            }
            let c = self.fns[*i].crate_name.as_str();
            c == caller_crate
                || self
                    .cones
                    .get(caller_crate)
                    .is_some_and(|s| s.contains(c))
        };
        if method || path.len() == 1 {
            if let Some(v) = self.by_name.get(last.as_str()) {
                out.extend(v.iter().filter(|i| in_cone(i)).copied());
            }
            return;
        }
        let head = &path[path.len() - 2];
        let key = format!("{head}::{last}");
        if let Some(v) = self.by_qname.get(key.as_str()) {
            out.extend(v.iter().filter(|i| in_cone(i)).copied());
            return;
        }
        let module_ish = head == "Self"
            || head == "self"
            || head == "crate"
            || head == "super"
            || head.chars().next().is_some_and(|c| c.is_lowercase());
        if module_ish {
            if let Some(v) = self.by_name.get(last.as_str()) {
                out.extend(v.iter().filter(|i| in_cone(i)).copied());
            }
        }
        // CamelCase head with no workspace impl: external, no edge.
    }

    /// Total resolved edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Function indices matching a (possibly qualified) entry name.
    fn lookup(&self, qname: &str) -> Vec<usize> {
        if let Some(v) = self.by_qname.get(qname) {
            return v.clone();
        }
        self.by_name.get(qname).cloned().unwrap_or_default()
    }

    /// BFS from `starts`; returns, for every reachable fn, the index it
    /// was first reached from (`usize::MAX` for the starts themselves).
    fn reach_from(&self, starts: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for &s in starts {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(usize::MAX);
                q.push_back(s);
            }
        }
        while let Some(i) = q.pop_front() {
            for &t in &self.edges[i] {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(t) {
                    e.insert(i);
                    q.push_back(t);
                }
            }
        }
        parent
    }

    /// The set of functions that can (transitively) reach any of
    /// `targets` — a reverse BFS.
    fn reaching_set(&self, targets: &HashSet<usize>) -> HashMap<usize, usize> {
        // next[i] = the callee through which i reaches a target.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (i, outs) in self.edges.iter().enumerate() {
            for &t in outs {
                rev[t].push(i);
            }
        }
        let mut next: HashMap<usize, usize> = HashMap::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for &t in targets {
            next.insert(t, usize::MAX);
            q.push_back(t);
        }
        while let Some(i) = q.pop_front() {
            for &caller in &rev[i] {
                if let std::collections::hash_map::Entry::Vacant(e) = next.entry(caller) {
                    e.insert(i);
                    q.push_back(caller);
                }
            }
        }
        next
    }

    /// Renders `entry → ... → fn` following BFS parents.
    fn chain_to(&self, parent: &HashMap<usize, usize>, mut i: usize) -> String {
        let mut names = vec![self.fns[i].qname.clone()];
        while let Some(&p) = parent.get(&i) {
            if p == usize::MAX {
                break;
            }
            names.push(self.fns[p].qname.clone());
            i = p;
        }
        names.reverse();
        names.join(" → ")
    }

    /// Finds a waiver covering `line` in the file of fn `i`, for any of
    /// `rules`; site-level first, then a fn-level waiver on the fn's
    /// signature line. Marks the waiver used.
    fn waived(&self, i: usize, line: u32, rules: &[&str]) -> Option<String> {
        let f = &self.files[self.fn_file[i]];
        let d = self.fns[i];
        for w in &f.waivers {
            if rules.contains(&w.rule.as_str()) && w.line_start <= line && line <= w.line_end {
                w.used.set(true);
                return Some(w.reason.clone());
            }
        }
        // Fn-level: a waiver covering the `fn` signature line covers
        // the whole body (lexical `panic` waivers stay site-level).
        for w in &f.waivers {
            if rules.contains(&w.rule.as_str())
                && w.rule != RULE_PANIC
                && w.line_start <= d.line
                && d.line <= w.line_end
            {
                w.used.set(true);
                return Some(w.reason.clone());
            }
        }
        None
    }
}

/// Runs all four graph rules.
pub fn analyze(files: &[FileData], config: &GraphConfig) -> GraphOutcome {
    let g = CallGraph::build(files, config);
    let mut out = GraphOutcome {
        functions: g.fns.len(),
        edges: g.edge_count(),
        ..GraphOutcome::default()
    };
    panic_reachability(&g, config, &mut out);
    alloc_freedom(&g, config, &mut out);
    lock_discipline(&g, config, &mut out);
    bounded_growth(&g, config, &mut out);
    out
}

/// Rule `panic_path`: every panic site transitively reachable from a
/// declared entry point, with one example call chain.
fn panic_reachability(g: &CallGraph<'_>, config: &GraphConfig, out: &mut GraphOutcome) {
    for e in &config.panic_entries {
        let starts = g.lookup(&e.qname);
        let parent = g.reach_from(&starts);
        let mut count = 0u64;
        let mut chains: Vec<String> = Vec::new();
        // Deterministic order: by function definition, then site line.
        let mut reached: Vec<usize> = parent.keys().copied().collect();
        reached.sort_unstable_by_key(|&i| (&g.fns[i].file, g.fns[i].line));
        for i in reached {
            let d = g.fns[i];
            for s in &d.sites {
                if !s.kind.is_panic() {
                    continue;
                }
                let waived = g.waived(i, s.line, &[RULE_PANIC_PATH, RULE_PANIC]);
                let chain = g.chain_to(&parent, i);
                if waived.is_none() {
                    count += 1;
                    if chains.len() < 3 {
                        chains.push(format!("{chain} → {} ({}:{})", s.what, d.file, s.line));
                    }
                }
                out.violations.push(Violation {
                    rule: RULE_PANIC_PATH,
                    file: d.file.clone(),
                    line: s.line,
                    message: format!(
                        "panic site {} reachable from entry `{}` via {}",
                        s.what, e.qname, chain
                    ),
                    waived,
                });
            }
        }
        out.entry_counts.insert(e.qname.clone(), count);
        out.entry_chains.insert(e.qname.clone(), chains);
    }
}

/// Rule `alloc_free`: no allocating construct reachable from the driver
/// poll loop, unless waived.
fn alloc_freedom(g: &CallGraph<'_>, config: &GraphConfig, out: &mut GraphOutcome) {
    for e in &config.alloc_entries {
        let starts = g.lookup(e);
        let parent = g.reach_from(&starts);
        let mut reached: Vec<usize> = parent.keys().copied().collect();
        reached.sort_unstable_by_key(|&i| (&g.fns[i].file, g.fns[i].line));
        for i in reached {
            let d = g.fns[i];
            for s in &d.sites {
                if s.kind != SiteKind::Alloc {
                    continue;
                }
                let waived = g.waived(i, s.line, &[RULE_ALLOC_FREE]);
                let chain = g.chain_to(&parent, i);
                out.violations.push(Violation {
                    rule: RULE_ALLOC_FREE,
                    file: d.file.clone(),
                    line: s.line,
                    message: format!(
                        "allocating construct {} reachable from poll entry `{e}` via {chain}",
                        s.what
                    ),
                    waived,
                });
            }
        }
    }
}

/// Rule `lock_discipline`: no call that reaches a polling-shim syscall
/// wrapper while the net driver lock is lexically held.
fn lock_discipline(g: &CallGraph<'_>, config: &GraphConfig, out: &mut GraphOutcome) {
    // Seeds: shim functions that invoke a raw syscall symbol directly.
    let mut seeds: HashSet<usize> = HashSet::new();
    for (i, d) in g.fns.iter().enumerate() {
        if d.crate_name != config.syscall_crate {
            continue;
        }
        for c in &d.calls {
            if let Some(last) = c.path.last() {
                if config.syscall_symbols.iter().any(|s| s == last) {
                    seeds.insert(i);
                    break;
                }
            }
        }
    }
    let reaches_syscall = g.reaching_set(&seeds);
    for (i, d) in g.fns.iter().enumerate() {
        if !config.lock_crates.contains(&d.crate_name) {
            continue;
        }
        for c in &d.calls {
            if !c.in_lock {
                continue;
            }
            let mut targets = Vec::new();
            g.resolve(&d.crate_name, &c.path, c.method, &mut targets);
            let Some(&hit) = targets.iter().find(|t| reaches_syscall.contains_key(t)) else {
                continue;
            };
            // Chain from the called fn down to the syscall seed.
            let mut chain = vec![g.fns[hit].qname.clone()];
            let mut cur = hit;
            while let Some(&n) = reaches_syscall.get(&cur) {
                if n == usize::MAX {
                    break;
                }
                chain.push(g.fns[n].qname.clone());
                cur = n;
            }
            let waived = g.waived(i, c.line, &[RULE_LOCK_DISCIPLINE]);
            out.violations.push(Violation {
                rule: RULE_LOCK_DISCIPLINE,
                file: d.file.clone(),
                line: c.line,
                message: format!(
                    "call under the driver lock reaches a syscall wrapper: {} (in `{}`)",
                    chain.join(" → "),
                    d.qname
                ),
                waived,
            });
        }
    }
}

/// Rule `bounded_growth`: growable collection fields in long-lived
/// structs must carry a `// bounded: <how>` annotation (or a waiver).
fn bounded_growth(g: &CallGraph<'_>, config: &GraphConfig, out: &mut GraphOutcome) {
    // Containment closure from the roots, within the bounded crates.
    let by_name: HashMap<&str, Vec<usize>> = {
        let mut m: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, s) in g.structs.iter().enumerate() {
            m.entry(s.name.as_str()).or_default().push(i);
        }
        m
    };
    let mut long_lived: HashSet<usize> = HashSet::new();
    let mut q: VecDeque<usize> = VecDeque::new();
    for root in &config.long_lived_roots {
        for &i in by_name.get(root.as_str()).into_iter().flatten() {
            if long_lived.insert(i) {
                q.push_back(i);
            }
        }
    }
    while let Some(i) = q.pop_front() {
        for f in &g.structs[i].fields {
            for ty in &f.type_idents {
                for &c in by_name.get(ty.as_str()).into_iter().flatten() {
                    if long_lived.insert(c) {
                        q.push_back(c);
                    }
                }
            }
        }
    }
    let mut ordered: Vec<usize> = long_lived.into_iter().collect();
    ordered.sort_unstable_by_key(|&i| (&g.structs[i].file, g.structs[i].line));
    for i in ordered {
        let s = g.structs[i];
        if !config.bounded_crates.contains(&s.crate_name) {
            continue;
        }
        let Some(fd) = g
            .files
            .iter()
            .find(|f| f.rel == s.file)
        else {
            continue;
        };
        for field in &s.fields {
            if !field.type_idents.iter().any(|t| GROWABLE_TYPES.contains(&t.as_str())) {
                continue;
            }
            if bounded_annotated(&fd.comments, field.line) {
                continue;
            }
            let waived = fd
                .waivers
                .iter()
                .find(|w| {
                    w.rule == RULE_BOUNDED_GROWTH
                        && w.line_start <= field.line
                        && field.line <= w.line_end
                })
                .map(|w| {
                    w.used.set(true);
                    w.reason.clone()
                });
            out.violations.push(Violation {
                rule: RULE_BOUNDED_GROWTH,
                file: s.file.clone(),
                line: field.line,
                message: format!(
                    "field `{}.{}` is a growable collection in a long-lived struct — \
                     document its cap with `// bounded: <how>` or waive",
                    s.name, field.name
                ),
                waived,
            });
        }
    }
}

/// True when a `bounded:` annotation covers `line`: on the line itself
/// or in the contiguous comment run directly above (same policy as
/// `// SAFETY:` audits).
fn bounded_annotated(comments: &[Comment], line: u32) -> bool {
    let on = |l: u32| comments.iter().find(|c| c.line_start <= l && l <= c.line_end);
    if on(line).is_some_and(|c| c.text.contains("bounded:")) {
        return true;
    }
    let mut cur = line.saturating_sub(1);
    while let Some(c) = on(cur) {
        if c.text.contains("bounded:") {
            return true;
        }
        if c.line_start == 0 {
            break;
        }
        cur = c.line_start - 1;
    }
    false
}
