//! `swim-lint`: the workspace's custom static-analysis pass.
//!
//! Run as `cargo run -p xtask -- lint`. The pass machine-enforces the
//! architectural invariants the repo otherwise only documents:
//!
//! 1. **Sans-I/O layering** (`layering`) — `crates/core`, `crates/proto`
//!    and `crates/sim` may not touch sockets, threads, wall clocks, or
//!    entropy-seeded RNG; time and I/O flow through `Input`/`Sink`,
//!    randomness through the seeded shim.
//! 2. **Panic-freedom on wire paths** (`panic`) — no `unwrap` /
//!    `expect` / `panic!` / `unreachable!` in non-test code of
//!    core/net/proto, ratcheted by `analysis/baseline.toml` (counts may
//!    only go down; proto and net are pinned at zero).
//! 3. **Unsafe hygiene** (`unsafe_safety`) — every `unsafe` needs an
//!    adjacent `// SAFETY:` comment.
//! 4. **FFI confinement** (`ffi`) — `extern "C"` lives only in
//!    `crates/compat/polling` and may only declare allowlisted symbols.
//! 5. **Lossy casts** (`lossy_cast`) — narrowing `as` casts on
//!    FFI/codec paths are flagged unless waived.
//!
//! Any rule finding can be waived inline with
//! `// lint: allow(<rule>) — <reason>`; the reason is mandatory and
//! stale waivers are reported. Results are printed as a table and
//! written to `target/ANALYSIS.json` for trend tooling.
//!
//! See `docs/ANALYSIS.md` for the full rule catalog and how to add a
//! rule.

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use baseline::Baseline;
use report::Report;
use rules::RULE_PANIC;

/// Directory names never descended into during the workspace walk.
/// `fixtures` holds the analyzer's own known-violation test inputs.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Walks `root` and analyzes every `.rs` file, in path order.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        let (violations, unused) = rules::analyze_file(&rel, &src);
        report.violations.extend(violations);
        report.unused_waivers += unused;
        report.files += 1;
    }
    Ok(report)
}

/// Everything `lint` decided, for the caller to print/exit on.
#[derive(Debug)]
pub struct LintOutcome {
    pub report: Report,
    /// Human-readable gate failures; empty means the lint passed.
    pub failures: Vec<String>,
    /// The JSON document that was (or would be) written.
    pub json: String,
}

/// Runs the full lint over `root`: analyze, apply the panic ratchet,
/// and render the JSON report. With `update_baseline`, a shrunken
/// panic count rewrites `analysis/baseline.toml` instead of failing.
///
/// # Errors
///
/// Propagates filesystem errors; a corrupt baseline file is a gate
/// failure, not an error.
pub fn run_lint(root: &Path, update_baseline: bool) -> std::io::Result<LintOutcome> {
    let report = analyze_workspace(root)?;
    let mut failures = Vec::new();

    // Zero-tolerance rules: anything active fails.
    for rule in rules::ALL_RULES {
        if rule == RULE_PANIC {
            continue;
        }
        let n = report.active(rule).count();
        if n > 0 {
            failures.push(format!("{n} active `{rule}` violation(s)"));
        }
    }

    // The panic ratchet.
    let baseline = match Baseline::load(root) {
        Ok(b) => b,
        Err(e) => {
            failures.push(format!("baseline unreadable: {e}"));
            Baseline::default()
        }
    };
    let counts = report.panic_counts();
    let baseline_exists = root.join(baseline::BASELINE_PATH).exists();
    let mut ratcheted = baseline.clone();
    let mut rewrite = false;
    let mut crates: Vec<String> = baseline.panic.keys().chain(counts.keys()).cloned().collect();
    crates.sort();
    crates.dedup();
    for name in crates {
        let have = counts.get(&name).copied().unwrap_or(0);
        let base = baseline.panic.get(&name).copied().unwrap_or(0);
        if have > base {
            // An increase is never update-able — that would defeat the
            // ratchet — except at bootstrap, when no baseline exists
            // yet and `--update-baseline` seeds the grandfathered
            // counts.
            if update_baseline && !baseline_exists {
                rewrite = true;
                ratcheted.panic.insert(name.clone(), have);
            } else {
                failures.push(format!(
                    "panic ratchet: crate `{name}` has {have} panic site(s), baseline allows \
                     {base} — remove them or (for non-wire invariants) waive with a reason"
                ));
            }
        } else if have < base {
            rewrite = true;
            ratcheted.panic.insert(name.clone(), have);
            if !update_baseline {
                failures.push(format!(
                    "panic ratchet: crate `{name}` is down to {have} site(s) but the baseline \
                     says {base} — run `cargo run -p xtask -- lint --update-baseline` to ratchet"
                ));
            }
        }
    }
    if update_baseline && rewrite {
        std::fs::create_dir_all(root.join("analysis"))?;
        std::fs::write(root.join(baseline::BASELINE_PATH), ratcheted.render())?;
    }

    let json = report.render_json(&baseline.panic, failures.is_empty());
    Ok(LintOutcome {
        report,
        failures,
        json,
    })
}
