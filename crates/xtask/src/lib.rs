//! `swim-lint`: the workspace's custom static-analysis pass.
//!
//! Run as `cargo run -p xtask -- lint`. The pass machine-enforces the
//! architectural invariants the repo otherwise only documents.
//!
//! **Lexical rules** (v1, token-stream level):
//!
//! 1. **Sans-I/O layering** (`layering`) — `crates/core`, `crates/proto`
//!    and `crates/sim` may not touch sockets, threads, wall clocks, or
//!    entropy-seeded RNG; time and I/O flow through `Input`/`Sink`,
//!    randomness through the seeded shim.
//! 2. **Panic-freedom on wire paths** (`panic`) — no `unwrap` /
//!    `expect` / `panic!` / `unreachable!` in non-test code of
//!    core/net/proto/metrics, ratcheted by `analysis/baseline.toml`.
//! 3. **Unsafe hygiene** (`unsafe_safety`) — every `unsafe` needs an
//!    adjacent `// SAFETY:` comment.
//! 4. **FFI confinement** (`ffi`) — `extern "C"` lives only in
//!    `crates/compat/polling` and may only declare allowlisted symbols.
//! 5. **Lossy casts** (`lossy_cast`) — narrowing `as` casts on
//!    FFI/codec paths are flagged unless waived.
//!
//! **Call-graph rules** (v2, whole-workspace — see
//! [`graph`] and `docs/ANALYSIS.md`):
//!
//! 6. **Panic reachability** (`panic_path`) — every transitive path
//!    from a declared entry point to a panic site, with an example call
//!    chain; ratcheted per entry point, wire entries pinned at zero.
//! 7. **Static alloc-freedom** (`alloc_free`) — nothing reachable from
//!    the driver poll loop may allocate.
//! 8. **Lock discipline** (`lock_discipline`) — no call that reaches a
//!    polling-shim syscall wrapper while the net driver lock is held.
//! 9. **Bounded growth** (`bounded_growth`) — growable collection
//!    fields of long-lived structs must document their cap.
//!
//! Any rule finding can be waived inline with
//! `// lint: allow(<rule>) — <reason>`; the reason is mandatory and
//! stale waivers are reported. Results are printed as a table and
//! written to `target/ANALYSIS.json` (schema 2) and
//! `target/ANALYSIS.sarif` (SARIF 2.1.0) for trend tooling and
//! code-scanning UIs.

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;

use std::path::{Path, PathBuf};

use baseline::Baseline;
use graph::{FileData, GraphConfig};
use report::Report;
use rules::{RULE_PANIC, RULE_PANIC_PATH};

/// Directory names never descended into during the workspace walk.
/// `fixtures` holds the analyzer's own known-violation test inputs.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Walks `root` collecting every `.rs` file, in path order.
fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        out.push((rel, src));
    }
    Ok(out)
}

/// Analyzes in-memory sources: lexical rules, then the whole-workspace
/// call-graph pass. Stale waivers are counted only after **both**
/// passes had a chance to use them. Exposed (rather than only the
/// filesystem walk) so fixture tests can assemble mini-workspaces.
pub fn analyze_sources(sources: &[(String, String)], config: &GraphConfig) -> Report {
    let mut report = Report::default();
    let mut data: Vec<FileData> = Vec::with_capacity(sources.len());
    for (rel, src) in sources {
        let lexed = lexer::lex(src);
        let class = rules::classify(rel);
        // The analyzer's own sources document the waiver syntax in
        // prose and carry intentionally-panicking test fixtures in
        // unit tests; it is not subject to the graph rules either.
        let waivers = if class.crate_name == "xtask" {
            let (violations, _) = rules::analyze_lexed(rel, &lexed);
            report.violations.extend(violations);
            report.files += 1;
            continue;
        } else {
            let (violations, waivers) = rules::analyze_lexed(rel, &lexed);
            report.violations.extend(violations);
            report.files += 1;
            waivers
        };
        let ranges = rules::test_ranges(&lexed);
        let parsed = parser::parse(rel, &class, &lexed, &ranges);
        data.push(FileData {
            rel: rel.clone(),
            class,
            parsed,
            waivers,
            comments: lexed.comments,
        });
    }

    let outcome = graph::analyze(&data, config);
    report.violations.extend(outcome.violations);
    report.graph_functions = outcome.functions;
    report.graph_edges = outcome.edges;
    report.entry_counts = outcome.entry_counts;
    report.entry_chains = outcome.entry_chains;

    // Stale-waiver accounting, after every pass marked what it used.
    for f in &data {
        for w in f.waivers.iter().filter(|w| !w.used.get()) {
            report
                .stale_waivers
                .push((f.rel.clone(), w.line_start, w.rule.clone()));
        }
    }
    report.unused_waivers = report.stale_waivers.len();
    report
}

/// Walks `root` and analyzes every `.rs` file with the workspace
/// configuration.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let sources = collect_sources(root)?;
    Ok(analyze_sources(&sources, &GraphConfig::workspace()))
}

/// Everything `lint` decided, for the caller to print/exit on.
#[derive(Debug)]
pub struct LintOutcome {
    pub report: Report,
    /// Human-readable gate failures; empty means the lint passed.
    pub failures: Vec<String>,
    /// The JSON document that was (or would be) written.
    pub json: String,
    /// The SARIF 2.1.0 document that was (or would be) written.
    pub sarif: String,
}

/// Runs the full lint over `root`: analyze, apply both panic ratchets,
/// and render the JSON/SARIF reports. With `update_baseline`, a
/// shrunken count rewrites `analysis/baseline.toml` instead of
/// failing.
///
/// # Errors
///
/// Propagates filesystem errors; a corrupt baseline file is a gate
/// failure, not an error.
pub fn run_lint(root: &Path, update_baseline: bool) -> std::io::Result<LintOutcome> {
    let config = GraphConfig::workspace();
    let sources = collect_sources(root)?;
    let report = analyze_sources(&sources, &config);
    let mut failures = Vec::new();

    // Zero-tolerance rules: anything active fails. The two ratcheted
    // rules (lexical `panic`, per-entry `panic_path`) are handled
    // below.
    for rule in rules::ALL_RULES {
        if rule == RULE_PANIC || rule == RULE_PANIC_PATH {
            continue;
        }
        let n = report.active(rule).count();
        if n > 0 {
            failures.push(format!("{n} active `{rule}` violation(s)"));
        }
    }

    let baseline = match Baseline::load(root) {
        Ok(b) => b,
        Err(e) => {
            failures.push(format!("baseline unreadable: {e}"));
            Baseline::default()
        }
    };
    let baseline_exists = root.join(baseline::BASELINE_PATH).exists();
    let mut ratcheted = baseline.clone();
    let mut rewrite = false;

    // The legacy per-crate lexical panic ratchet.
    let counts = report.panic_counts();
    let mut crates: Vec<String> = baseline.panic.keys().chain(counts.keys()).cloned().collect();
    crates.sort();
    crates.dedup();
    for name in crates {
        let have = counts.get(&name).copied().unwrap_or(0);
        let base = baseline.panic.get(&name).copied().unwrap_or(0);
        if have > base {
            // An increase is never update-able — that would defeat the
            // ratchet — except at bootstrap, when no baseline exists
            // yet and `--update-baseline` seeds the grandfathered
            // counts.
            if update_baseline && !baseline_exists {
                rewrite = true;
                ratcheted.panic.insert(name.clone(), have);
            } else {
                failures.push(format!(
                    "panic ratchet: crate `{name}` has {have} panic site(s), baseline allows \
                     {base} — remove them or (for non-wire invariants) waive with a reason"
                ));
            }
        } else if have < base {
            rewrite = true;
            if have == 0 {
                // A crate that reaches zero drops out of the legacy
                // section entirely; zero is the default.
                ratcheted.panic.remove(&name);
            } else {
                ratcheted.panic.insert(name.clone(), have);
            }
            if !update_baseline {
                failures.push(format!(
                    "panic ratchet: crate `{name}` is down to {have} site(s) but the baseline \
                     says {base} — run `cargo run -p xtask -- lint --update-baseline` to ratchet"
                ));
            }
        }
    }

    // The per-entry-point panic-path ratchet. Wire entries are pinned
    // at zero no matter what the baseline says.
    for entry in &config.panic_entries {
        let have = report.entry_counts.get(&entry.qname).copied().unwrap_or(0);
        let base = baseline.panic_paths.get(&entry.qname).copied().unwrap_or(0);
        if entry.wire && have > 0 {
            failures.push(format!(
                "panic paths: wire entry `{}` reaches {have} unwaived panic site(s) — wire \
                 entries are pinned at zero; untrusted bytes must never panic an agent",
                entry.qname
            ));
            continue;
        }
        let known = baseline.panic_paths.contains_key(&entry.qname);
        if have > base {
            // Bootstrap: `--update-baseline` may seed a *missing*
            // (non-wire) entry key, but never raise a recorded one.
            if update_baseline && !known && !entry.wire {
                rewrite = true;
                ratcheted.panic_paths.insert(entry.qname.clone(), have);
            } else {
                failures.push(format!(
                    "panic paths: entry `{}` reaches {have} unwaived panic site(s), baseline \
                     allows {base} — break the path, or waive the site with a reason",
                    entry.qname
                ));
            }
        } else if have < base {
            rewrite = true;
            ratcheted.panic_paths.insert(entry.qname.clone(), have);
            if !update_baseline {
                failures.push(format!(
                    "panic paths: entry `{}` is down to {have} reachable site(s) but the \
                     baseline says {base} — run `cargo run -p xtask -- lint --update-baseline`",
                    entry.qname
                ));
            }
        } else if !known && update_baseline {
            // Record the (stable) count so the trend tooling has an
            // explicit per-entry row to diff against.
            rewrite = true;
            ratcheted.panic_paths.insert(entry.qname.clone(), have);
        }
    }

    if update_baseline && rewrite {
        std::fs::create_dir_all(root.join("analysis"))?;
        std::fs::write(root.join(baseline::BASELINE_PATH), ratcheted.render())?;
    }

    let json = report.render_json(&baseline, failures.is_empty());
    let sarif = sarif::render_sarif(&report);
    Ok(LintOutcome {
        report,
        failures,
        json,
        sarif,
    })
}
