//! A lightweight item/body parser on top of the [`lexer`](crate::lexer)
//! token stream.
//!
//! This is deliberately **not** a Rust parser: it recovers exactly the
//! structure the call-graph rules need — function items (with their
//! `impl`/`trait` context as a one-segment qualifier), the calls, panic
//! sites, and allocation sites inside each body, struct definitions
//! with their field types, and the lexical extent of driver-lock
//! regions — and nothing else. Everything it cannot understand it
//! skips, so the parse degrades gracefully on arbitrary token streams
//! (a property pinned by `tests/prop_parser.rs`).
//!
//! # Soundness posture
//!
//! The output feeds an *over-approximating* call graph: attribution
//! errors must err toward reporting too much, never too little, on the
//! reachability rules. Concretely:
//!
//! - closure bodies are attributed to the enclosing `fn` (the closure
//!   might escape, but its sites stay visible from its definer);
//! - nested `fn` items are parsed as their own functions;
//! - a call through a variable (`callback(x)`) resolves like a call to
//!   any workspace function of that name (see
//!   [`graph`](crate::graph));
//! - macro bodies outside functions belong to no function and are
//!   invisible to reachability (the *lexical* rules still see them).

use crate::lexer::{LexedFile, Tok, Token};
use crate::rules::FileClass;

/// What kind of potentially-panicking construct a [`Site`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
    /// `assert*!` macros.
    PanicMacro,
    /// `.unwrap()` / `.expect()` (and `_err` variants).
    Unwrap,
    /// `expr[...]` indexing or slicing.
    Index,
    /// `/` or `%` with a non-constant divisor.
    Div,
    /// A known-panicking `std` method (`swap_remove`, `split_at`,
    /// `copy_from_slice`, ...).
    PanicMethod,
    /// An allocating construct (`Box::new`, `format!`, `.push()`,
    /// `.collect()`, ...).
    Alloc,
}

impl SiteKind {
    /// Whether this site is a panic site (vs. an allocation site).
    pub fn is_panic(self) -> bool {
        !matches!(self, SiteKind::Alloc)
    }
}

/// One panic/alloc site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    pub kind: SiteKind,
    /// Short description of the construct (`".unwrap()"`, `"idx[]"`).
    pub what: String,
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// The call path, innermost last: `foo(` → `["foo"]`,
    /// `Type::foo(` → `["Type", "foo"]`, `.foo(` → `["foo"]` with
    /// `method = true`.
    pub path: Vec<String>,
    pub line: u32,
    /// `.name(...)` method-call form (receiver type unknown).
    pub method: bool,
    /// The call happens while a driver-lock guard is lexically held.
    pub in_lock: bool,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Terminal name (`handle_input`).
    pub name: String,
    /// Qualified name: `Type::name` inside `impl Type` / `trait Type`,
    /// otherwise just `name`.
    pub qname: String,
    /// Crate group from [`FileClass`].
    pub crate_name: String,
    pub file: String,
    pub line: u32,
    pub end_line: u32,
    /// Defined under `#[cfg(test)]` / `#[test]` or in a test target.
    pub is_test: bool,
    pub calls: Vec<Call>,
    pub sites: Vec<Site>,
}

/// One field of a parsed struct.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name (tuple fields get their index as a name).
    pub name: String,
    pub line: u32,
    /// Every identifier appearing in the field's type.
    pub type_idents: Vec<String>,
}

/// One parsed struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub crate_name: String,
    pub file: String,
    pub line: u32,
    pub is_test: bool,
    pub fields: Vec<FieldDef>,
}

/// The parsed form of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    pub structs: Vec<StructDef>,
    /// Names of methods declared inside `trait` blocks (with or
    /// without default bodies). Calls to these names may genuinely
    /// dispatch across crate layers, so the graph resolves them
    /// workspace-wide; every other method name resolves within the
    /// caller's dependency cone.
    pub trait_methods: Vec<String>,
}

/// Identifiers that look like calls (`ident (`) but never are.
const NON_CALL_KEYWORDS: [&str; 22] = [
    "if", "while", "for", "match", "return", "loop", "as", "in", "fn", "move", "unsafe", "else",
    "let", "mut", "ref", "await", "yield", "where", "Some", "None", "Ok", "Err",
];

/// Macros that panic when reached.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Methods that can panic even though they are not `unwrap`-shaped.
const PANIC_METHODS: [&str; 4] = ["swap_remove", "split_at", "split_at_mut", "copy_from_slice"];

/// Methods whose call is an allocation (growth without a visible cap,
/// or an outright heap allocation).
const ALLOC_METHODS: [&str; 16] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "extend",
    "extend_from_slice",
    "reserve",
    "entry",
    "append",
    "split_off",
    "repeat",
    "concat",
];

/// Allocating macros.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// `Path::last` segments whose *qualified* call allocates
/// (`Box::new`, `Vec::with_capacity`, ...).
const ALLOC_PATH_HEADS: [&str; 3] = ["Box", "Arc", "Rc"];

/// Collection types whose presence in a struct field makes the field
/// growable (the bounded-growth rule's subjects).
pub const GROWABLE_TYPES: [&str; 7] = [
    "Vec",
    "VecDeque",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Parses one lexed file. `test_ranges` are the `#[cfg(test)]` item
/// spans computed by [`rules`](crate::rules); functions defined inside
/// them are marked `is_test`.
pub fn parse(
    rel_path: &str,
    class: &FileClass,
    lexed: &LexedFile,
    test_ranges: &[(u32, u32)],
) -> ParsedFile {
    let mut p = Parser {
        toks: &lexed.tokens,
        i: 0,
        file: rel_path,
        class,
        test_ranges,
        out: ParsedFile::default(),
    };
    p.items(None, usize::MAX, false);
    p.out
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    file: &'a str,
    class: &'a FileClass,
    test_ranges: &'a [(u32, u32)],
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn peek(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.i + off).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.i.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn in_test(&self, line: u32) -> bool {
        self.class.test_target || self.test_ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Parses items until `budget` tokens are consumed or a `}` closes
    /// the current scope. `ctx` is the `impl`/`trait` qualifier;
    /// `in_trait` marks a `trait` block (its method names are recorded
    /// for workspace-wide call resolution).
    fn items(&mut self, ctx: Option<&str>, end: usize, in_trait: bool) {
        while self.i < self.toks.len() && self.i < end {
            match self.peek(0) {
                Some(Tok::Ident(w)) if w == "fn" => self.fn_item(ctx, in_trait),
                Some(Tok::Ident(w)) if w == "impl" || w == "trait" => {
                    let is_trait = w == "trait";
                    self.impl_item(is_trait);
                }
                Some(Tok::Ident(w)) if w == "struct" => self.struct_item(),
                Some(Tok::Ident(w)) if w == "mod" => {
                    // `mod name { ... }`: recurse into the block (the
                    // module path does not participate in qualification);
                    // `mod name;` is skipped.
                    self.i += 1;
                    while self.i < self.toks.len() {
                        match self.peek(0) {
                            Some(Tok::Punct('{')) => {
                                let close = self.matching_brace(self.i);
                                self.i += 1;
                                self.items(None, close, false);
                                self.i = close + 1;
                                break;
                            }
                            Some(Tok::Punct(';')) => {
                                self.i += 1;
                                break;
                            }
                            None => break,
                            _ => self.i += 1,
                        }
                    }
                }
                Some(Tok::Punct('{')) => {
                    // A stray block at item level (e.g. a macro body):
                    // scan inside for items too — macro-generated fns
                    // are better over-reported than missed.
                    let close = self.matching_brace(self.i);
                    self.i += 1;
                    self.items(ctx, close, in_trait);
                    self.i = close + 1;
                }
                None => break,
                _ => self.i += 1,
            }
        }
        self.i = self.i.min(self.toks.len());
    }

    /// Index of the `}` matching the `{` at `open` (or the last token).
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.toks.len() {
            match self.toks[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// `impl [<..>] Type [for Type] { items }` / `trait Name { items }`.
    fn impl_item(&mut self, is_trait: bool) {
        self.i += 1; // `impl` / `trait`
        let mut after_for: Option<String> = None;
        let mut first_path_seg: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0i32;
        while self.i < self.toks.len() {
            match self.peek(0) {
                Some(Tok::Punct('{')) if angle <= 0 => break,
                Some(Tok::Punct(';')) if angle <= 0 => {
                    // `trait X: Y;`-ish degenerate form: nothing to do.
                    self.i += 1;
                    return;
                }
                Some(Tok::Punct('<')) => {
                    angle += 1;
                    self.i += 1;
                }
                Some(Tok::Punct('>')) => {
                    angle -= 1;
                    self.i += 1;
                }
                Some(Tok::Ident(w)) if w == "for" && angle <= 0 => {
                    saw_for = true;
                    self.i += 1;
                }
                Some(Tok::Ident(w)) if angle <= 0 => {
                    // Track the *last* plain path segment seen at angle
                    // depth 0 on each side of `for`: `a::b::Type` ends
                    // on `Type`.
                    if saw_for {
                        after_for = Some(w.clone());
                    } else {
                        first_path_seg = Some(w.clone());
                    }
                    self.i += 1;
                }
                None => return,
                _ => self.i += 1,
            }
        }
        let ctx = after_for.or(first_path_seg);
        if self.peek(0) == Some(&Tok::Punct('{')) {
            let close = self.matching_brace(self.i);
            self.i += 1;
            self.items(ctx.as_deref(), close, is_trait);
            self.i = close + 1;
        }
    }

    /// `struct Name [<..>] { fields }` / `struct Name(types);` /
    /// `struct Name;`.
    fn struct_item(&mut self) {
        let kw_line = self.line();
        self.i += 1;
        let Some(Tok::Ident(name)) = self.peek(0) else {
            return;
        };
        let name = name.clone();
        self.i += 1;
        // Skip generics.
        let mut angle = 0i32;
        loop {
            match self.peek(0) {
                Some(Tok::Punct('<')) => angle += 1,
                Some(Tok::Punct('>')) => angle -= 1,
                Some(Tok::Punct('{')) | Some(Tok::Punct('(')) | Some(Tok::Punct(';'))
                    if angle <= 0 =>
                {
                    break;
                }
                None => return,
                _ => {}
            }
            self.i += 1;
        }
        let mut fields = Vec::new();
        match self.peek(0) {
            Some(Tok::Punct('{')) => {
                let close = self.matching_brace(self.i);
                let mut j = self.i + 1;
                // Fields: `[pub] name : Type ,` — split on top-level `,`.
                while j < close {
                    // Skip attributes and doc comments (already gone).
                    while j < close && self.toks[j].tok == Tok::Punct('#') {
                        j = self.skip_attr(j, close);
                    }
                    // Field name = last ident before the `:`.
                    let mut fname: Option<(String, u32)> = None;
                    while j < close {
                        match &self.toks[j].tok {
                            Tok::Punct(':') => break,
                            Tok::Ident(w) if w != "pub" && w != "crate" && w != "super" => {
                                fname = Some((w.clone(), self.toks[j].line));
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if j >= close {
                        break;
                    }
                    j += 1; // `:`
                    let mut type_idents = Vec::new();
                    let mut depth = 0i32;
                    while j < close {
                        match &self.toks[j].tok {
                            Tok::Punct(',') if depth <= 0 => break,
                            Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                            Tok::Ident(w) => type_idents.push(w.clone()),
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some((fname, fline)) = fname {
                        fields.push(FieldDef {
                            name: fname,
                            line: fline,
                            type_idents,
                        });
                    }
                    if j < close {
                        j += 1; // `,`
                    }
                }
                self.i = close + 1;
            }
            Some(Tok::Punct('(')) => {
                // Tuple struct: one synthetic field per top-level `,`.
                let start = self.i;
                let mut depth = 0i32;
                let mut idx = 0usize;
                let mut type_idents = Vec::new();
                let mut j = start;
                while j < self.toks.len() {
                    match &self.toks[j].tok {
                        Tok::Punct('(') | Tok::Punct('<') | Tok::Punct('[') => depth += 1,
                        Tok::Punct(')') | Tok::Punct('>') | Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Punct(',') if depth == 1 => {
                            fields.push(FieldDef {
                                name: idx.to_string(),
                                line: self.toks[j].line,
                                type_idents: std::mem::take(&mut type_idents),
                            });
                            idx += 1;
                        }
                        Tok::Ident(w) => type_idents.push(w.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                if !type_idents.is_empty() {
                    fields.push(FieldDef {
                        name: idx.to_string(),
                        line: kw_line,
                        type_idents,
                    });
                }
                self.i = j + 1;
            }
            _ => {
                self.i += 1;
            }
        }
        self.out.structs.push(StructDef {
            name,
            crate_name: self.class.crate_name.clone(),
            file: self.file.to_string(),
            line: kw_line,
            is_test: self.in_test(kw_line),
            fields,
        });
    }

    /// Skips a `#[...]` attribute starting at `at`; returns the index
    /// after it (clamped to `end`).
    fn skip_attr(&self, at: usize, end: usize) -> usize {
        let mut j = at + 1;
        if self.toks.get(j).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
            return (at + 1).min(end);
        }
        let mut depth = 0usize;
        while j < end {
            match self.toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// `fn name ( .. ) [-> ..] { body }` — or a bodiless declaration.
    fn fn_item(&mut self, ctx: Option<&str>, in_trait: bool) {
        let fn_line = self.line();
        self.i += 1; // `fn`
        let Some(Tok::Ident(name)) = self.peek(0) else {
            return;
        };
        let name = name.clone();
        self.i += 1;
        if in_trait {
            self.out.trait_methods.push(name.clone());
        }
        // Scan the signature for the body `{` (or `;` for bodiless
        // declarations). `->` return types may contain parens; `where`
        // clauses may contain `<...>`; neither contains braces.
        while self.i < self.toks.len() {
            match self.peek(0) {
                Some(Tok::Punct('{')) => break,
                Some(Tok::Punct(';')) => {
                    self.i += 1;
                    return; // trait/extern declaration: no body
                }
                None => return,
                _ => self.i += 1,
            }
        }
        if self.peek(0) != Some(&Tok::Punct('{')) {
            return;
        }
        let body_open = self.i;
        let body_close = self.matching_brace(body_open);
        let qname = match ctx {
            Some(c) => format!("{c}::{name}"),
            None => name.clone(),
        };
        let mut def = FnDef {
            name,
            qname,
            crate_name: self.class.crate_name.clone(),
            file: self.file.to_string(),
            line: fn_line,
            end_line: self.toks[body_close].line,
            is_test: self.in_test(fn_line),
            calls: Vec::new(),
            sites: Vec::new(),
        };
        self.body(body_open, body_close, &mut def);
        // Nested `fn` items inside the body were parsed as separate
        // functions by `body`; the body scan already skipped them.
        self.i = body_close + 1;
        self.out.fns.push(def);
    }

    /// Scans a `{ ... }` body collecting calls and sites into `def`.
    /// Nested `fn` items become their own [`FnDef`]s.
    fn body(&mut self, open: usize, close: usize, def: &mut FnDef) {
        // Active lock regions: (token index limit policy) — each entry
        // is `(guard_name, depth_at_lock, stmt_only)`; a region ends at
        // `drop(guard)`, at the closing `}` of its block, or (for
        // un-bound guard temporaries) at the next `;`.
        struct LockRegion {
            guard: Option<String>,
            depth: usize,
            stmt_only: bool,
        }
        let mut locks: Vec<LockRegion> = Vec::new();
        let mut depth = 0usize;
        let mut j = open;
        while j <= close && j < self.toks.len() {
            let line = self.toks[j].line;
            match &self.toks[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    locks.retain(|l| l.depth <= depth);
                }
                Tok::Punct(';') => locks.retain(|l| !l.stmt_only),
                Tok::Ident(w) if w == "fn" => {
                    // A nested function item: parse it independently.
                    let save = self.i;
                    self.i = j;
                    self.fn_item(None, false);
                    j = self.i;
                    self.i = save;
                    continue;
                }
                Tok::Ident(w) => {
                    let prev = j.checked_sub(1).map(|p| &self.toks[p].tok);
                    let next = self.toks.get(j + 1).map(|t| &t.tok);
                    let is_method = prev == Some(&Tok::Punct('.'));
                    let next_is_paren = next == Some(&Tok::Punct('('));
                    let next_is_bang = next == Some(&Tok::Punct('!'));
                    let in_lock = !locks.is_empty();

                    // Macro invocation: `name!(..)` / `name![..]` /
                    // `name!{..}` — macro *definitions* are skipped
                    // (`macro_rules!` bodies are not code this fn runs).
                    if next_is_bang && w == "macro_rules" {
                        // Skip the whole definition.
                        let mut k = j + 2;
                        while k < close
                            && !matches!(self.toks[k].tok, Tok::Punct('{') | Tok::Punct('('))
                        {
                            k += 1;
                        }
                        if self.toks.get(k).map(|t| &t.tok) == Some(&Tok::Punct('{')) {
                            j = self.matching_brace(k) + 1;
                        } else {
                            j = k + 1;
                        }
                        continue;
                    }
                    if next_is_bang && (w.starts_with("debug_assert") || w == "debug_invariant") {
                        // Release no-ops: their argument tokens are not
                        // reachable code in production builds, so the
                        // indexing/divisions/calls inside them must not
                        // become sites of the enclosing fn.
                        let mut k = j + 2;
                        if matches!(
                            self.toks.get(k).map(|t| &t.tok),
                            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{'))
                        ) {
                            let mut d = 0i32;
                            while k <= close && k < self.toks.len() {
                                match self.toks[k].tok {
                                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                                        d -= 1;
                                        if d == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                        j = k + 1;
                        continue;
                    }
                    if next_is_bang {
                        if PANIC_MACROS.contains(&w.as_str()) {
                            def.sites.push(Site {
                                kind: SiteKind::PanicMacro,
                                what: format!("{w}!"),
                                line,
                            });
                        } else if ALLOC_MACROS.contains(&w.as_str()) {
                            def.sites.push(Site {
                                kind: SiteKind::Alloc,
                                what: format!("{w}!"),
                                line,
                            });
                        }
                        j += 1;
                        continue;
                    }

                    if is_method && next_is_paren {
                        // `.name(...)`.
                        match w.as_str() {
                            "unwrap" | "expect" | "unwrap_err" | "expect_err" => {
                                def.sites.push(Site {
                                    kind: SiteKind::Unwrap,
                                    what: format!(".{w}()"),
                                    line,
                                });
                            }
                            m if PANIC_METHODS.contains(&m) => {
                                def.sites.push(Site {
                                    kind: SiteKind::PanicMethod,
                                    what: format!(".{w}()"),
                                    line,
                                });
                            }
                            m if ALLOC_METHODS.contains(&m) => {
                                def.sites.push(Site {
                                    kind: SiteKind::Alloc,
                                    what: format!(".{w}()"),
                                    line,
                                });
                            }
                            _ => {}
                        }
                        def.calls.push(Call {
                            path: vec![w.clone()],
                            line,
                            method: true,
                            in_lock,
                        });
                    } else if next_is_paren && !NON_CALL_KEYWORDS.contains(&w.as_str()) {
                        // Free/path call: walk the `a::b::w` chain back.
                        let mut path = vec![w.clone()];
                        let mut k = j;
                        while k >= 2
                            && self.toks[k - 1].tok == Tok::Punct(':')
                            && self.toks[k - 2].tok == Tok::Punct(':')
                        {
                            if k >= 3 {
                                if let Tok::Ident(seg) = &self.toks[k - 3].tok {
                                    path.insert(0, seg.clone());
                                    k -= 3;
                                    continue;
                                }
                            }
                            break;
                        }
                        if path.len() >= 2 {
                            let head = &path[path.len() - 2];
                            let last = &path[path.len() - 1];
                            if (ALLOC_PATH_HEADS.contains(&head.as_str()) && last == "new")
                                || last == "with_capacity"
                                || (head == "String" && last == "from")
                            {
                                def.sites.push(Site {
                                    kind: SiteKind::Alloc,
                                    what: path.join("::") + "()",
                                    line,
                                });
                            }
                        }
                        // Detect `driver.lock()` acquisitions: the
                        // canonical net-crate guard pattern.
                        def.calls.push(Call {
                            path,
                            line,
                            method: false,
                            in_lock,
                        });
                    }

                    // Lock acquisition: `<...>driver.lock()`.
                    if is_method
                        && next_is_paren
                        && w == "lock"
                        && j >= 3
                        && self.toks[j - 2].tok == Tok::Ident("driver".into())
                    {
                        // Find the `let [mut] NAME =` binding for this
                        // statement, if any.
                        let mut guard = None;
                        let mut b = j;
                        while b > open {
                            b -= 1;
                            match &self.toks[b].tok {
                                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
                                Tok::Ident(kw) if kw == "let" => {
                                    let mut n = b + 1;
                                    if self.toks.get(n).map(|t| &t.tok)
                                        == Some(&Tok::Ident("mut".into()))
                                    {
                                        n += 1;
                                    }
                                    if let Some(Tok::Ident(g)) = self.toks.get(n).map(|t| &t.tok) {
                                        guard = Some(g.clone());
                                    }
                                    break;
                                }
                                _ => {}
                            }
                        }
                        // A guard chained straight into a method call
                        // (`driver.lock().next_wake()`) is a statement
                        // temporary: the region ends at the `;`.
                        let after_call = {
                            let mut k = j + 1; // `(`
                            let mut d = 0usize;
                            while k <= close {
                                match self.toks[k].tok {
                                    Tok::Punct('(') => d += 1,
                                    Tok::Punct(')') => {
                                        d -= 1;
                                        if d == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            self.toks.get(k + 1).map(|t| &t.tok)
                        };
                        // When the guard is chained straight into a
                        // further call, any `let` binds the *chain
                        // result*, not the guard — the guard temporary
                        // still dies at the `;`.
                        let chained = after_call == Some(&Tok::Punct('.'));
                        locks.push(LockRegion {
                            guard: if chained { None } else { guard },
                            depth,
                            stmt_only: chained,
                        });
                    }

                    // `drop(guard)` releases the named guard early.
                    if w == "drop" && next_is_paren {
                        if let Some(Tok::Ident(arg)) = self.toks.get(j + 2).map(|t| &t.tok) {
                            locks.retain(|l| l.guard.as_deref() != Some(arg.as_str()));
                        }
                    }
                }
                Tok::Punct('[') => {
                    // Indexing/slicing: `expr[...]` — `[` directly after
                    // an expression-ending token. Patterns (`let [a,b]`),
                    // attributes (`#[`), and type/array syntax are not.
                    let expr_before = j.checked_sub(1).map(|p| &self.toks[p].tok).is_some_and(
                        |t| match t {
                            Tok::Ident(w) => !NON_CALL_KEYWORDS.contains(&w.as_str()),
                            Tok::Punct(')') | Tok::Punct(']') => true,
                            _ => false,
                        },
                    );
                    if expr_before {
                        // `&x[..]` full-range slicing cannot panic.
                        let full_range = self.toks.get(j + 1).map(|t| &t.tok)
                            == Some(&Tok::Punct('.'))
                            && self.toks.get(j + 2).map(|t| &t.tok) == Some(&Tok::Punct('.'))
                            && self.toks.get(j + 3).map(|t| &t.tok) == Some(&Tok::Punct(']'));
                        if !full_range {
                            def.sites.push(Site {
                                kind: SiteKind::Index,
                                what: "[..] indexing/slicing".into(),
                                line,
                            });
                        }
                    }
                }
                Tok::Punct(c) if *c == '/' || *c == '%' => {
                    // Division/remainder: flag only with a non-constant
                    // divisor (an ALL_CAPS ident or a literal divisor is
                    // assumed nonzero; rustc rejects literal zero).
                    let expr_before = j.checked_sub(1).map(|p| &self.toks[p].tok).is_some_and(
                        |t| matches!(t, Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']') | Tok::Literal(_)),
                    );
                    let benign_divisor = match self.toks.get(j + 1).map(|t| &t.tok) {
                        Some(Tok::Literal(_)) => true,
                        Some(Tok::Ident(w)) => {
                            w.chars().all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                        }
                        _ => true, // not an expression context we understand
                    };
                    if expr_before && !benign_divisor {
                        def.sites.push(Site {
                            kind: SiteKind::Div,
                            what: format!("`{c}` with non-constant divisor"),
                            line,
                        });
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{classify, test_ranges};

    fn parse_str(path: &str, src: &str) -> ParsedFile {
        let lexed = lex(src);
        let class = classify(path);
        let ranges = test_ranges(&lexed);
        parse(path, &class, &lexed, &ranges)
    }

    #[test]
    fn qualifies_impl_and_trait_methods() {
        let src = "impl Foo { fn a(&self) {} }\n\
                   impl<T: Clone> Bar<T> for Foo { fn b(&self) {} }\n\
                   trait Baz { fn c(&self) { self.d(); } fn d(&self); }\n\
                   fn free() {}";
        let p = parse_str("crates/core/src/x.rs", src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, ["Foo::a", "Foo::b", "Baz::c", "free"]);
    }

    #[test]
    fn collects_calls_and_sites() {
        let src = "fn f(v: &mut Vec<u8>, m: &M) {\n\
                     v.push(1);\n\
                     let x = m.get(0).unwrap();\n\
                     helper(x);\n\
                     proto::codec::encode(x);\n\
                     let y = v[0];\n\
                     panic!(\"no\");\n\
                   }";
        let p = parse_str("crates/core/src/x.rs", src);
        let f = &p.fns[0];
        let kinds: Vec<SiteKind> = f.sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SiteKind::Alloc)); // push
        assert!(kinds.contains(&SiteKind::Unwrap));
        assert!(kinds.contains(&SiteKind::Index));
        assert!(kinds.contains(&SiteKind::PanicMacro));
        let paths: Vec<String> = f.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(paths.contains(&"helper".to_string()));
        assert!(paths.contains(&"proto::codec::encode".to_string()));
    }

    #[test]
    fn full_range_slice_and_const_divisor_are_not_sites() {
        let src = "fn f(v: &[u8], n: usize) -> usize { let _ = &v[..]; n / LIMIT + n / 4 }";
        let p = parse_str("crates/core/src/x.rs", src);
        assert!(p.fns[0].sites.is_empty(), "{:?}", p.fns[0].sites);
    }

    #[test]
    fn non_const_divisor_is_a_site() {
        let src = "fn f(a: usize, b: usize) -> usize { a % b }";
        let p = parse_str("crates/core/src/x.rs", src);
        assert_eq!(p.fns[0].sites.len(), 1);
        assert_eq!(p.fns[0].sites[0].kind, SiteKind::Div);
    }

    #[test]
    fn struct_fields_capture_type_idents() {
        let src = "struct S { a: Vec<Option<Slot>>, b: HashMap<NodeName, PeerSync>, c: u32 }\n\
                   struct T(VecDeque<u8>, usize);";
        let p = parse_str("crates/core/src/x.rs", src);
        assert_eq!(p.structs.len(), 2);
        let s = &p.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert!(s.fields[0].type_idents.contains(&"Vec".to_string()));
        assert!(s.fields[1].type_idents.contains(&"PeerSync".to_string()));
        let t = &p.structs[1];
        assert_eq!(t.fields.len(), 2);
        assert!(t.fields[0].type_idents.contains(&"VecDeque".to_string()));
    }

    #[test]
    fn lock_region_marks_calls_until_block_end() {
        let src = "fn f(&self) {\n\
                     before();\n\
                     {\n\
                       let mut driver = self.inner.driver.lock();\n\
                       under(driver);\n\
                     }\n\
                     after();\n\
                   }";
        let p = parse_str("crates/net/src/x.rs", src);
        let f = &p.fns[0];
        let locked: Vec<&str> = f
            .calls
            .iter()
            .filter(|c| c.in_lock)
            .map(|c| c.path.last().map(String::as_str).unwrap_or(""))
            .collect();
        assert_eq!(locked, ["under"]);
    }

    #[test]
    fn statement_temporary_lock_covers_one_statement() {
        let src = "fn f(&self) {\n\
                     let next = self.inner.driver.lock().next_wake();\n\
                     not_under();\n\
                   }";
        let p = parse_str("crates/net/src/x.rs", src);
        let f = &p.fns[0];
        assert!(f.calls.iter().all(|c| {
            c.path.last().map(String::as_str) != Some("not_under") || !c.in_lock
        }));
    }

    #[test]
    fn drop_releases_named_guard() {
        let src = "fn f(&self) {\n\
                     let driver = self.inner.driver.lock();\n\
                     under();\n\
                     drop(driver);\n\
                     after_drop();\n\
                   }";
        let p = parse_str("crates/net/src/x.rs", src);
        let f = &p.fns[0];
        for c in &f.calls {
            let name = c.path.last().map(String::as_str).unwrap_or("");
            match name {
                "under" => assert!(c.in_lock),
                "after_drop" => assert!(!c.in_lock, "lock must end at drop()"),
                _ => {}
            }
        }
    }

    #[test]
    fn test_functions_are_marked() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} }\nfn prod() {}";
        let p = parse_str("crates/core/src/x.rs", src);
        let helper = p.fns.iter().find(|f| f.name == "helper");
        assert!(helper.is_some_and(|f| f.is_test));
        let prod = p.fns.iter().find(|f| f.name == "prod");
        assert!(prod.is_some_and(|f| !f.is_test));
    }

    #[test]
    fn macro_rules_bodies_are_invisible_to_fn_sites() {
        let src = "fn f() { macro_rules! m { () => { panic!(\"x\") }; } m!(); }";
        let p = parse_str("crates/core/src/x.rs", src);
        assert!(
            p.fns[0].sites.iter().all(|s| s.kind != SiteKind::PanicMacro),
            "macro definition bodies are not attributed to the defining fn"
        );
    }

    #[test]
    fn degrades_gracefully_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "struct",
            "struct S {",
            "fn f( {",
            "}}}}{{{{",
            "impl<T for { fn }",
            "mod m { fn x",
        ] {
            let _ = parse_str("crates/core/src/x.rs", src);
        }
    }
}
