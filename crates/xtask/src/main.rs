//! CLI for the workspace's static-analysis pass.
//!
//! ```text
//! cargo run -p xtask -- lint [--update-baseline] [--root DIR] [--json PATH] [--sarif PATH]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: cargo run -p xtask -- lint [--update-baseline] [--root DIR] [--json PATH] [--sarif PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut json_path = None;
    let mut sarif_path = None;
    let mut update_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--update-baseline" => update_baseline = true,
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 1;
            }
            "--json" if i + 1 < args.len() => {
                json_path = Some(PathBuf::from(&args[i + 1]));
                i += 1;
            }
            "--sarif" if i + 1 < args.len() => {
                sarif_path = Some(PathBuf::from(&args[i + 1]));
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if cmd != Some("lint") {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    // Default root: the workspace (xtask runs from anywhere inside it).
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let outcome = match xtask::run_lint(&root, update_baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swim-lint: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", outcome.report.render_table());

    let json_path = json_path.unwrap_or_else(|| root.join("target/ANALYSIS.json"));
    let sarif_path = sarif_path.unwrap_or_else(|| root.join("target/ANALYSIS.sarif"));
    for (path, body) in [(&json_path, &outcome.json), (&sarif_path, &outcome.sarif)] {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("swim-lint: failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if outcome.failures.is_empty() {
        println!("swim-lint: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!("swim-lint: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
