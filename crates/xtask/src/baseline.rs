//! The ratcheted panic baselines: `analysis/baseline.toml`.
//!
//! Two sections, both down-only ratchets:
//!
//! - `[panic]` (legacy, per-crate) — grandfathered lexical panic-site
//!   counts. After the PR 9 burn-down the checked-in file carries no
//!   entries here; the section is still parsed so old baselines load.
//! - `[panic_paths]` (per entry point) — the count of **unwaived**
//!   panic sites transitively reachable from each declared entry point
//!   of the `panic_path` call-graph rule. Wire entry points are pinned
//!   at zero *regardless* of what this file says.
//!
//! A PR that adds a path fails immediately; a PR that removes one fails
//! until it also tightens the baseline (`cargo run -p xtask -- lint
//! --update-baseline` rewrites the file), so the recorded counts are
//! always exact and the burn-down is visible in the diff history.
//!
//! The file is a flat TOML table parsed by hand — the analyzer is
//! dependency-free by design (it gates the build; nothing in the build
//! may gate it).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Workspace-relative path of the baseline file.
pub const BASELINE_PATH: &str = "analysis/baseline.toml";

/// Per-crate grandfathered panic-site counts (`[panic]`, legacy) and
/// per-entry-point reachable-panic-path counts (`[panic_paths]`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub panic: BTreeMap<String, u64>,
    pub panic_paths: BTreeMap<String, u64>,
}

/// A baseline file that fails to parse (the gate must not silently
/// treat a corrupt baseline as "everything is allowed").
#[derive(Debug, PartialEq, Eq)]
pub struct BaselineError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", BASELINE_PATH, self.line, self.message)
    }
}

impl Baseline {
    /// Parses the TOML subset the baseline uses: `# comments`,
    /// `[section]` headers, and `key = <integer>` entries.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut out = Baseline::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `key = count`, got `{line}`"),
                });
            };
            let key = key.trim().trim_matches('"').to_string();
            let value: u64 = value.trim().parse().map_err(|_| BaselineError {
                line: lineno,
                message: format!("count for `{key}` is not a non-negative integer"),
            })?;
            match section.as_str() {
                "panic" => {
                    out.panic.insert(key, value);
                }
                "panic_paths" => {
                    out.panic_paths.insert(key, value);
                }
                other => {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!("unknown baseline section `[{other}]`"),
                    });
                }
            }
        }
        Ok(out)
    }

    /// Loads the baseline from `root`, treating a missing file as
    /// empty (zero tolerance everywhere).
    pub fn load(root: &Path) -> Result<Baseline, BaselineError> {
        match std::fs::read_to_string(root.join(BASELINE_PATH)) {
            Ok(text) => Baseline::parse(&text),
            Err(_) => Ok(Baseline::default()),
        }
    }

    /// Renders the file back out (used by `--update-baseline`).
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# Ratcheted panic baselines — maintained by `cargo run -p xtask -- lint`.\n\
             #\n\
             # The lint fails if a count rises (new panic site/path) OR falls (run\n\
             # with --update-baseline to ratchet it down), so these numbers are\n\
             # always exact and the burn-down shows up in diff history.\n",
        );
        if !self.panic.is_empty() {
            s.push_str(
                "\n# Legacy per-crate lexical panic-site counts (grandfathered).\n[panic]\n",
            );
            for (k, v) in &self.panic {
                let _ = writeln!(s, "{k} = {v}");
            }
        }
        s.push_str(
            "\n# Unwaived panic sites reachable from each declared entry point\n\
             # (`panic_path` rule). Wire entries are pinned at zero regardless of\n\
             # the values here: untrusted bytes must never panic an agent.\n\
             [panic_paths]\n",
        );
        for (k, v) in &self.panic_paths {
            let _ = writeln!(s, "\"{k}\" = {v}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let b = Baseline::parse(
            "# c\n[panic]\ncore = 20\nnet = 0\n\
             [panic_paths]\n\"SwimNode::handle_input\" = 3\n",
        )
        .unwrap();
        assert_eq!(b.panic.get("core"), Some(&20));
        assert_eq!(b.panic.get("net"), Some(&0));
        assert_eq!(b.panic_paths.get("SwimNode::handle_input"), Some(&3));
        let again = Baseline::parse(&b.render()).unwrap();
        assert_eq!(again, b);
    }

    #[test]
    fn empty_legacy_section_is_omitted_from_render() {
        let mut b = Baseline::default();
        b.panic_paths.insert("FrameDecoder::decode".into(), 0);
        let text = b.render();
        assert!(!text.contains("[panic]\n"), "{text}");
        assert!(text.contains("[panic_paths]"));
        assert_eq!(Baseline::parse(&text).unwrap(), b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("[panic]\ncore = many\n").is_err());
        assert!(Baseline::parse("[mystery]\nx = 1\n").is_err());
        assert!(Baseline::parse("[panic]\nnot a kv\n").is_err());
    }
}
