//! Rendering: the human-readable table and `target/ANALYSIS.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Violation, ALL_RULES, RULE_PANIC};

/// The full result of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, including waived ones.
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files: usize,
    /// Waivers that matched nothing (stale — surfaced so they get
    /// deleted instead of rotting).
    pub unused_waivers: usize,
    /// Location and rule of each stale waiver, so the warning is
    /// actionable: `(file, line, rule)`.
    pub stale_waivers: Vec<(String, u32, String)>,
    /// Call-graph size: non-test functions in the symbol table.
    pub graph_functions: usize,
    /// Call-graph size: resolved call edges.
    pub graph_edges: usize,
    /// Per-entry-point count of unwaived reachable panic sites (the
    /// `panic_path` ratchet input).
    pub entry_counts: BTreeMap<String, u64>,
    /// Example call chains per entry point (up to three each).
    pub entry_chains: BTreeMap<String, Vec<String>>,
}

impl Report {
    /// Active (unwaived) violations of `rule`.
    pub fn active<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Violation> + 'a {
        self.violations
            .iter()
            .filter(move |v| v.rule == rule && v.waived.is_none())
    }

    /// Waived violations of `rule`.
    pub fn waived<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Violation> + 'a {
        self.violations
            .iter()
            .filter(move |v| v.rule == rule && v.waived.is_some())
    }

    /// Active panic-rule counts per crate group (the ratchet input).
    pub fn panic_counts(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for v in self.active(RULE_PANIC) {
            let crate_name = crate::rules::classify(&v.file).crate_name;
            *map.entry(crate_name).or_insert(0) += 1;
        }
        map
    }

    /// The per-rule summary table plus a listing of active violations.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "swim-lint: {} files analyzed, call graph: {} fns / {} edges",
            self.files, self.graph_functions, self.graph_edges
        );
        let _ = writeln!(s, "{:<16} {:>8} {:>8}", "rule", "active", "waived");
        let _ = writeln!(s, "{:-<16} {:->8} {:->8}", "", "", "");
        for rule in ALL_RULES {
            let active = self.active(rule).count();
            let waived = self.waived(rule).count();
            let _ = writeln!(s, "{rule:<16} {active:>8} {waived:>8}");
        }
        for (entry, count) in &self.entry_counts {
            let _ = writeln!(s, "panic paths from `{entry}`: {count}");
            for chain in self.entry_chains.get(entry).into_iter().flatten() {
                let _ = writeln!(s, "    e.g. {chain}");
            }
        }
        if self.unused_waivers > 0 {
            let _ = writeln!(s, "warning: {} stale waiver(s) match nothing", self.unused_waivers);
            for (file, line, rule) in &self.stale_waivers {
                let _ = writeln!(s, "    {file}:{line}: allow({rule})");
            }
        }
        let mut active: Vec<&Violation> = self
            .violations
            .iter()
            .filter(|v| v.waived.is_none())
            .collect();
        active.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for v in active {
            let _ = writeln!(s, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        s
    }

    /// The machine-readable report (`target/ANALYSIS.json`): per-rule
    /// counts, both panic ratchet inputs, the call-graph summary, and
    /// every active violation.
    pub fn render_json(&self, baseline: &crate::baseline::Baseline, passed: bool) -> String {
        let mut s = String::from("{\n  \"schema\": 2,\n");
        let _ = writeln!(s, "  \"passed\": {passed},");
        let _ = writeln!(s, "  \"files_analyzed\": {},", self.files);
        let _ = writeln!(s, "  \"unused_waivers\": {},", self.unused_waivers);
        let _ = writeln!(
            s,
            "  \"call_graph\": {{\"functions\": {}, \"edges\": {}}},",
            self.graph_functions, self.graph_edges
        );
        s.push_str("  \"entry_points\": {\n");
        let entries: Vec<&String> = self.entry_counts.keys().collect();
        for (i, entry) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            let chains = self.entry_chains.get(entry.as_str());
            let chains_json = chains
                .into_iter()
                .flatten()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                s,
                "    \"{}\": {{\"panic_paths\": {}, \"baseline\": {}, \"examples\": [{chains_json}]}}{comma}",
                json_escape(entry),
                self.entry_counts.get(entry.as_str()).copied().unwrap_or(0),
                baseline
                    .panic_paths
                    .get(entry.as_str())
                    .copied()
                    .unwrap_or(0)
            );
        }
        s.push_str("  },\n  \"rules\": {\n");
        for (i, rule) in ALL_RULES.iter().enumerate() {
            let comma = if i + 1 == ALL_RULES.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    \"{rule}\": {{\"active\": {}, \"waived\": {}}}{comma}",
                self.active(rule).count(),
                self.waived(rule).count()
            );
        }
        s.push_str("  },\n  \"panic_ratchet\": {\n");
        let counts = self.panic_counts();
        let crates: Vec<&String> = baseline.panic.keys().chain(counts.keys()).collect();
        let mut crates: Vec<&String> = crates;
        crates.sort();
        crates.dedup();
        for (i, name) in crates.iter().enumerate() {
            let comma = if i + 1 == crates.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    \"{}\": {{\"count\": {}, \"baseline\": {}}}{comma}",
                json_escape(name),
                counts.get(name.as_str()).copied().unwrap_or(0),
                baseline.panic.get(name.as_str()).copied().unwrap_or(0)
            );
        }
        s.push_str("  },\n  \"violations\": [\n");
        let mut active: Vec<&Violation> = self
            .violations
            .iter()
            .filter(|v| v.waived.is_none())
            .collect();
        active.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for (i, v) in active.iter().enumerate() {
            let comma = if i + 1 == active.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
                v.rule,
                json_escape(&v.file),
                v.line,
                json_escape(&v.message)
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn table_lists_rules() {
        let r = Report::default();
        let t = r.render_table();
        for rule in ALL_RULES {
            assert!(t.contains(rule), "{rule} missing from table");
        }
    }
}
