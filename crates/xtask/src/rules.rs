//! The analyzer's rule engine: file classification, `#[cfg(test)]`
//! exclusion, waiver parsing, and the five rules.
//!
//! Every rule works on the [`lexer`](crate::lexer) token stream, so
//! comments, strings, and raw strings can never produce false
//! positives, and waivers/`SAFETY:` audits are read from the comment
//! side-channel the lexer preserves.

use crate::lexer::{lex, Comment, LexedFile, Tok};

/// Rule identifiers, used in waivers (`// lint: allow(<rule>) — why`),
/// the baseline file, and the JSON report.
pub const RULE_LAYERING: &str = "layering";
pub const RULE_PANIC: &str = "panic";
pub const RULE_UNSAFE: &str = "unsafe_safety";
pub const RULE_FFI: &str = "ffi";
pub const RULE_LOSSY_CAST: &str = "lossy_cast";
pub const RULE_WAIVER: &str = "waiver";
/// Call-graph rules (see [`graph`](crate::graph)).
pub const RULE_PANIC_PATH: &str = "panic_path";
pub const RULE_ALLOC_FREE: &str = "alloc_free";
pub const RULE_LOCK_DISCIPLINE: &str = "lock_discipline";
pub const RULE_BOUNDED_GROWTH: &str = "bounded_growth";

/// All rules, for reports and waiver validation.
pub const ALL_RULES: [&str; 10] = [
    RULE_LAYERING,
    RULE_PANIC,
    RULE_UNSAFE,
    RULE_FFI,
    RULE_LOSSY_CAST,
    RULE_WAIVER,
    RULE_PANIC_PATH,
    RULE_ALLOC_FREE,
    RULE_LOCK_DISCIPLINE,
    RULE_BOUNDED_GROWTH,
];

/// `extern "C"` symbols the FFI rule accepts, all of them confined to
/// `crates/compat/polling` (the one place raw syscall declarations are
/// allowed to live). Anything else — a new symbol or a new location —
/// fails the lint until this list and `docs/ANALYSIS.md` are updated.
pub const FFI_ALLOWLIST: [&str; 10] = [
    "close", "connect", "fcntl", "pipe", "poll", "read", "recvmmsg", "sendmmsg", "socket", "write",
];

/// Crate (group) that may declare `extern "C"` symbols.
pub const FFI_HOME: &str = "compat/polling";

/// One finding. `file` is workspace-relative with `/` separators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when an inline waiver covered this finding.
    pub waived: Option<String>,
}

/// How a file participates in the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate group: `core`, `proto`, `net`, `sim`, `bench`,
    /// `experiments`, `xtask`, `compat/<name>`, or `root`.
    pub crate_name: String,
    /// Whether the file is a test/bench/example target (under a
    /// `tests/`, `benches/`, or `examples/` directory).
    pub test_target: bool,
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let rel = rel.strip_prefix("./").unwrap_or(rel);
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") {
        if parts.get(1) == Some(&"compat") {
            format!("compat/{}", parts.get(2).unwrap_or(&"?"))
        } else {
            (*parts.get(1).unwrap_or(&"?")).to_string()
        }
    } else {
        "root".to_string()
    };
    let test_target = parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    FileClass {
        crate_name,
        test_target,
    }
}

/// A parsed inline waiver. Public so the call-graph pass can honor
/// waivers for its rules after the lexical pass ran; `used` is a `Cell`
/// so both passes can mark coverage before stale waivers are counted.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    /// Lines the waiver covers: its comment's own span plus the first
    /// code line after it.
    pub line_start: u32,
    pub line_end: u32,
    pub used: std::cell::Cell<bool>,
}

/// Parses `lint: allow(<rule>) <sep> <reason>` out of a comment.
/// Malformed waivers (unknown rule, missing reason) are violations of
/// the `waiver` rule — a waiver that silently fails to parse would
/// otherwise *look* like coverage.
pub fn parse_waivers(comments: &[Comment], file: &str, bad: &mut Vec<Violation>) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("lint: allow(") else {
            continue;
        };
        let rest = &c.text[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            bad.push(Violation {
                rule: RULE_WAIVER,
                file: file.to_string(),
                line: c.line_start,
                message: "unterminated waiver: missing `)`".into(),
                waived: None,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !ALL_RULES.contains(&rule.as_str()) {
            bad.push(Violation {
                rule: RULE_WAIVER,
                file: file.to_string(),
                line: c.line_start,
                message: format!("waiver names unknown rule `{rule}`"),
                waived: None,
            });
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim()
            .to_string();
        if reason.is_empty() {
            bad.push(Violation {
                rule: RULE_WAIVER,
                file: file.to_string(),
                line: c.line_start,
                message: format!("waiver for `{rule}` has no reason — say why"),
                waived: None,
            });
            continue;
        }
        out.push(Waiver {
            rule,
            reason,
            line_start: c.line_start,
            line_end: c.line_end + 1,
            used: std::cell::Cell::new(false),
        });
    }
    out
}

/// Line ranges occupied by `#[cfg(test)]` / `#[test]`-attributed items
/// (the item body is skipped by test-scoped rules, and functions inside
/// them are excluded from the call graph).
pub fn test_ranges(lexed: &LexedFile) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        // Attribute: `#[ ... ]` (with nested brackets).
        let Some(open) = toks.get(i + 1) else { break };
        if open.tok != Tok::Punct('[') {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = match idents.first().copied() {
            // `#[cfg(test)]`, `#[cfg(any(test, ...))]` — but not
            // `#[cfg(not(test))]` (that marks *production* code).
            Some("cfg") => idents.contains(&"test") && !idents.contains(&"not"),
            // `#[test]`, `#[tokio::test]`, `#[bench]`.
            Some("test") | Some("bench") => true,
            Some(_) if idents.last().copied() == Some("test") => true,
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then the item header, up to the
        // item's body `{ ... }` (or a `;` for bodiless items).
        let mut k = j + 1;
        let mut body_depth = 0usize;
        let mut end_line = attr_line;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('{') => body_depth += 1,
                Tok::Punct('}') => {
                    body_depth = body_depth.saturating_sub(1);
                    if body_depth == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                Tok::Punct(';') if body_depth == 0 => {
                    end_line = toks[k].line;
                    break;
                }
                _ => {}
            }
            end_line = toks[k].line;
            k += 1;
        }
        ranges.push((attr_line, end_line));
        i = k + 1;
    }
    ranges
}

/// True when the `unsafe` on `line` carries a `SAFETY` audit: either a
/// comment on the line itself, or a contiguous run of comment lines
/// directly above it (no code-only gap) in which any line mentions
/// `SAFETY`.
fn safety_adjacent(comments: &[Comment], line: u32) -> bool {
    let on = |l: u32| comments.iter().find(|c| c.line_start <= l && l <= c.line_end);
    if on(line).is_some_and(|c| c.text.contains("SAFETY")) {
        return true;
    }
    let mut cur = line.saturating_sub(1);
    while let Some(c) = on(cur) {
        if c.text.contains("SAFETY") {
            return true;
        }
        if c.line_start == 0 {
            break;
        }
        cur = c.line_start - 1;
    }
    false
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Analyzes one file's source, returning all findings (waived findings
/// carry their reason) plus the count of declared-but-unused waivers.
///
/// This is the lexical-rules-only convenience wrapper (fixture tests
/// use it); the workspace walk lexes once and feeds
/// [`analyze_lexed`] + the parser + the graph pass, counting unused
/// waivers only after every pass had a chance to use them.
pub fn analyze_file(rel_path: &str, src: &str) -> (Vec<Violation>, usize) {
    let lexed = lex(src);
    let (violations, waivers) = analyze_lexed(rel_path, &lexed);
    let unused = waivers.iter().filter(|w| !w.used.get()).count();
    (violations, unused)
}

/// Runs the lexical rules over an already-lexed file, returning the
/// findings plus the parsed waivers (with lexical coverage marked).
pub fn analyze_lexed(rel_path: &str, lexed: &LexedFile) -> (Vec<Violation>, Vec<Waiver>) {
    let class = classify(rel_path);
    let mut violations: Vec<Violation> = Vec::new();
    // The analyzer's own sources document the waiver syntax in prose;
    // don't parse those mentions as (malformed) waivers. No rule is
    // scoped to `xtask` anyway, so a real waiver there is meaningless.
    let waivers = if class.crate_name == "xtask" {
        Vec::new()
    } else {
        parse_waivers(&lexed.comments, rel_path, &mut violations)
    };
    let excluded = test_ranges(lexed);

    let mut push = |rule: &'static str, line: u32, message: String| {
        let waived = waivers
            .iter()
            .find(|w| w.rule == rule && w.line_start <= line && line <= w.line_end)
            .map(|w| {
                w.used.set(true);
                w.reason.clone()
            });
        violations.push(Violation {
            rule,
            file: rel_path.to_string(),
            line,
            message,
            waived,
        });
    };

    let toks = &lexed.tokens;
    let in_test = |line: u32| in_ranges(&excluded, line);

    // --- Rule: panic-freedom on wire-facing crates -------------------
    // `metrics` decodes snapshot bytes from disk/network, so it is held
    // to the same standard as the wire crates.
    let panic_scope = !class.test_target
        && matches!(class.crate_name.as_str(), "core" | "proto" | "net" | "metrics");
    // --- Rule: sans-I/O layering -------------------------------------
    // `metrics` must stay sans-I/O and clock-free so the core can embed
    // it and the simulator stays deterministic.
    let layering_scope = !class.test_target
        && matches!(class.crate_name.as_str(), "core" | "proto" | "sim" | "metrics");
    // --- Rule: lossy casts on FFI/codec paths ------------------------
    let cast_scope = !class.test_target
        && matches!(class.crate_name.as_str(), "proto" | "net" | "compat/polling");

    const LOSSY_TARGETS: [&str; 11] = [
        "u8", "u16", "u32", "i8", "i16", "i32", "c_short", "c_ushort", "c_int", "c_uint", "_",
    ];
    const IO_TYPES: [&str; 3] = ["UdpSocket", "TcpStream", "TcpListener"];
    const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
    const ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "from_os_rng"];

    for (i, t) in toks.iter().enumerate() {
        let line = t.line;
        let Tok::Ident(word) = &t.tok else {
            // `extern "C"` is Ident + Literal; handled from the ident.
            continue;
        };
        let word = word.as_str();

        if panic_scope && !in_test(line) {
            let prev_is_dot = i > 0 && toks[i - 1].tok == Tok::Punct('.');
            let next_is_bang = toks.get(i + 1).map(|n| n.tok == Tok::Punct('!')) == Some(true);
            if prev_is_dot && (word == "unwrap" || word == "expect") {
                push(
                    RULE_PANIC,
                    line,
                    format!(".{word}() can panic on untrusted input paths"),
                );
            } else if next_is_bang
                && matches!(word, "panic" | "unreachable" | "todo" | "unimplemented")
            {
                push(RULE_PANIC, line, format!("{word}! in non-test code"));
            }
        }

        if layering_scope && !in_test(line) {
            if IO_TYPES.contains(&word) {
                push(
                    RULE_LAYERING,
                    line,
                    format!("{word}: socket I/O is confined to crates/net (sans-I/O layering)"),
                );
            } else if CLOCK_TYPES.contains(&word) {
                push(
                    RULE_LAYERING,
                    line,
                    format!("{word}: wall-clock time must flow through `Time`/`Input::Tick`"),
                );
            } else if ENTROPY.contains(&word) {
                push(
                    RULE_LAYERING,
                    line,
                    format!("{word}: randomness must come from the seeded RNG shim"),
                );
            } else if word == "std"
                && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Ident("thread".into()))
            {
                push(
                    RULE_LAYERING,
                    line,
                    "std::thread: threads are an I/O-runtime concern, not a core one".into(),
                );
            }
        }

        if word == "unsafe" {
            // `unsafe fn` declares a contract, not a discharge of one:
            // its body is a safe context (`unsafe_op_in_unsafe_fn` is
            // denied workspace-wide), so the inner `unsafe {}` blocks
            // carry the audits and the fn signature itself is exempt.
            let declares_fn = toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Ident("fn".into()));
            if !declares_fn && !safety_adjacent(&lexed.comments, line) {
                push(
                    RULE_UNSAFE,
                    line,
                    "unsafe without an adjacent `// SAFETY:` comment".into(),
                );
            }
        }

        if word == "extern" {
            if let Some(Tok::Literal(Some(abi))) = toks.get(i + 1).map(|t| &t.tok) {
                if class.crate_name != FFI_HOME {
                    push(
                        RULE_FFI,
                        line,
                        format!(
                            "extern \"{abi}\" outside {FFI_HOME}: FFI is confined to the polling shim"
                        ),
                    );
                } else if toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('{')) {
                    // Walk the foreign block, checking declared symbols.
                    let mut depth = 0usize;
                    let mut k = i + 2;
                    while k < toks.len() {
                        match &toks[k].tok {
                            Tok::Punct('{') => depth += 1,
                            Tok::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Tok::Ident(f) if f == "fn" => {
                                if let Some(Tok::Ident(name)) = toks.get(k + 1).map(|t| &t.tok) {
                                    if !FFI_ALLOWLIST.contains(&name.as_str()) {
                                        push(
                                            RULE_FFI,
                                            toks[k + 1].line,
                                            format!(
                                                "extern symbol `{name}` is not on the FFI allowlist"
                                            ),
                                        );
                                    }
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
        }

        if cast_scope && !in_test(line) && word == "as" {
            if let Some(Tok::Ident(target)) = toks.get(i + 1).map(|t| &t.tok) {
                if LOSSY_TARGETS.contains(&target.as_str()) {
                    let shown = if target == "_" { "`as _`" } else { target.as_str() };
                    push(
                        RULE_LOSSY_CAST,
                        line,
                        format!("potentially lossy cast to {shown} on an FFI/codec path"),
                    );
                }
            }
        }
    }

    (violations, waivers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/node.rs").crate_name, "core");
        assert_eq!(
            classify("crates/compat/polling/src/lib.rs").crate_name,
            "compat/polling"
        );
        assert_eq!(classify("src/lib.rs").crate_name, "root");
        assert!(classify("crates/core/tests/prop_core.rs").test_target);
        assert!(classify("crates/bench/benches/micro.rs").test_target);
        assert!(!classify("crates/bench/src/naive.rs").test_target);
    }
}
