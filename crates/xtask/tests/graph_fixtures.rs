//! Mini-workspace tests for the call-graph rules: each test feeds a
//! handful of synthetic sources through [`xtask::analyze_sources`] with
//! a purpose-built [`GraphConfig`] and asserts the exact
//! `(rule, entry point, example path)` triples — not just counts — so a
//! resolution regression (a dropped edge, a mis-scoped crate) shows up
//! as a concrete wrong chain, not a silently smaller number.

use xtask::analyze_sources;
use xtask::graph::{EntrySpec, GraphConfig};
use xtask::rules::{
    RULE_ALLOC_FREE, RULE_BOUNDED_GROWTH, RULE_LOCK_DISCIPLINE, RULE_PANIC_PATH,
};

fn sources(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(rel, src)| ((*rel).to_string(), (*src).to_string()))
        .collect()
}

/// A config whose graph covers `core`, `net`, and the polling shim,
/// with no entries or roots — tests switch on exactly the rule under
/// test so fixtures cannot trip each other.
fn base_config() -> GraphConfig {
    GraphConfig {
        graph_crates: vec!["core".into(), "net".into(), "compat/polling".into()],
        deps: vec![
            ("core".into(), vec![]),
            ("net".into(), vec!["core".into(), "compat/polling".into()]),
        ],
        panic_entries: vec![],
        alloc_entries: vec![],
        long_lived_roots: vec![],
        bounded_crates: vec![],
        lock_crates: vec![],
        syscall_crate: "compat/polling".into(),
        syscall_symbols: vec!["write".into(), "sendmmsg".into()],
    }
}

fn entry(qname: &str, wire: bool) -> EntrySpec {
    EntrySpec {
        qname: qname.into(),
        wire,
    }
}

const PANIC_CHAIN_SRC: &str = r#"
pub struct Node;
impl Node {
    pub fn handle(&mut self, b: &[u8]) {
        helper(b);
    }
}
fn helper(b: &[u8]) {
    decode(b);
}
fn decode(b: &[u8]) -> u8 {
    b.first().copied().unwrap()
}
"#;

#[test]
fn panic_path_reports_the_exact_transitive_chain() {
    let mut config = base_config();
    config.panic_entries = vec![entry("Node::handle", true)];
    let report = analyze_sources(
        &sources(&[("crates/core/src/lib.rs", PANIC_CHAIN_SRC)]),
        &config,
    );

    let active: Vec<_> = report.active(RULE_PANIC_PATH).collect();
    assert_eq!(active.len(), 1, "{active:?}");
    assert_eq!(active[0].file, "crates/core/src/lib.rs");
    assert_eq!(active[0].line, 12, "the .unwrap() line");
    assert_eq!(
        active[0].message,
        "panic site .unwrap() reachable from entry `Node::handle` \
         via Node::handle → helper → decode"
    );

    assert_eq!(report.entry_counts.get("Node::handle"), Some(&1));
    assert_eq!(
        report.entry_chains.get("Node::handle").map(Vec::as_slice),
        Some(
            &["Node::handle → helper → decode → .unwrap() \
               (crates/core/src/lib.rs:12)"
                .to_string()][..]
        )
    );
}

#[test]
fn panic_path_fn_level_waiver_kills_every_path_through_the_fn() {
    let waived_src = PANIC_CHAIN_SRC.replace(
        "fn decode(b: &[u8]) -> u8 {",
        "// lint: allow(panic_path) — fixture: caller guarantees non-empty input\n\
         fn decode(b: &[u8]) -> u8 {",
    );
    let mut config = base_config();
    config.panic_entries = vec![entry("Node::handle", true)];
    let report = analyze_sources(
        &sources(&[("crates/core/src/lib.rs", &waived_src)]),
        &config,
    );
    assert_eq!(report.active(RULE_PANIC_PATH).count(), 0);
    assert_eq!(report.waived(RULE_PANIC_PATH).count(), 1);
    assert_eq!(report.entry_counts.get("Node::handle"), Some(&0));
    assert_eq!(
        report.entry_chains.get("Node::handle").map(Vec::len),
        Some(0),
        "waived sites must not produce example chains"
    );
}

#[test]
fn panic_path_is_scoped_per_entry_point() {
    // Two entries: only `Node::handle` reaches the panic; `Node::quiet`
    // must report zero paths even though it lives in the same impl.
    let src = r#"
pub struct Node;
impl Node {
    pub fn handle(&mut self, b: &[u8]) {
        decode(b);
    }
    pub fn quiet(&self) -> u32 {
        7
    }
}
fn decode(b: &[u8]) -> u8 {
    b[0]
}
"#;
    let mut config = base_config();
    config.panic_entries = vec![entry("Node::handle", true), entry("Node::quiet", false)];
    let report = analyze_sources(&sources(&[("crates/core/src/lib.rs", src)]), &config);
    assert_eq!(report.entry_counts.get("Node::handle"), Some(&1));
    assert_eq!(report.entry_counts.get("Node::quiet"), Some(&0));
    let chains = report.entry_chains.get("Node::handle").unwrap();
    assert_eq!(
        chains,
        &["Node::handle → decode → [..] indexing/slicing (crates/core/src/lib.rs:12)".to_string()],
        "indexing must be reported as a panic site with its chain"
    );
}

#[test]
fn alloc_free_flags_allocation_reachable_from_the_poll_entry() {
    let src = r#"
pub struct Node {
    buf: Vec<u8>,
}
impl Node {
    pub fn poll(&mut self) {
        self.stage();
    }
    fn stage(&mut self) {
        self.buf.push(1);
    }
}
"#;
    let mut config = base_config();
    config.alloc_entries = vec!["Node::poll".into()];
    let report = analyze_sources(&sources(&[("crates/core/src/lib.rs", src)]), &config);
    let active: Vec<_> = report.active(RULE_ALLOC_FREE).collect();
    assert_eq!(active.len(), 1, "{active:?}");
    assert_eq!(active[0].line, 10, "the .push(1) line");
    assert_eq!(
        active[0].message,
        "allocating construct .push() reachable from poll entry \
         `Node::poll` via Node::poll → Node::stage"
    );
}

#[test]
fn alloc_free_site_waiver_suppresses_with_reason() {
    let src = r#"
pub struct Node {
    buf: Vec<u8>,
}
impl Node {
    pub fn poll(&mut self) {
        // lint: allow(alloc_free) — fixture: amortised, capacity reserved up front
        self.buf.push(1);
    }
}
"#;
    let mut config = base_config();
    config.alloc_entries = vec!["Node::poll".into()];
    let report = analyze_sources(&sources(&[("crates/core/src/lib.rs", src)]), &config);
    assert_eq!(report.active(RULE_ALLOC_FREE).count(), 0);
    let waived: Vec<_> = report.waived(RULE_ALLOC_FREE).collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(
        waived[0].waived.as_deref(),
        Some("fixture: amortised, capacity reserved up front")
    );
}

#[test]
fn lock_discipline_traces_the_call_to_the_syscall_wrapper() {
    let shim = r#"
pub fn send_now(fd: i32) -> i32 {
    // SAFETY: fixture — raw call is the point of the shim.
    unsafe { write(fd) }
}
extern "C" {
    fn write(fd: i32) -> i32;
}
"#;
    let agent = r#"
pub struct Agent;
impl Agent {
    pub fn flush(&self) {
        let mut g = self.driver.lock();
        g.step();
        send_now(0);
    }
    pub fn outside(&self) {
        send_now(0);
    }
}
"#;
    let mut config = base_config();
    config.lock_crates = vec!["net".into()];
    let report = analyze_sources(
        &sources(&[
            ("crates/compat/polling/src/lib.rs", shim),
            ("crates/net/src/agent.rs", agent),
        ]),
        &config,
    );
    let active: Vec<_> = report.active(RULE_LOCK_DISCIPLINE).collect();
    assert_eq!(active.len(), 1, "{active:?}");
    assert_eq!(active[0].file, "crates/net/src/agent.rs");
    assert_eq!(active[0].line, 7, "the send_now call under the guard");
    assert_eq!(
        active[0].message,
        "call under the driver lock reaches a syscall wrapper: \
         send_now (in `Agent::flush`)"
    );
}

#[test]
fn lock_discipline_region_ends_at_drop() {
    let shim = r#"
pub fn send_now(fd: i32) -> i32 {
    // SAFETY: fixture — raw call is the point of the shim.
    unsafe { write(fd) }
}
extern "C" {
    fn write(fd: i32) -> i32;
}
"#;
    let agent = r#"
pub struct Agent;
impl Agent {
    pub fn flush(&self) {
        let mut g = self.driver.lock();
        g.step();
        drop(g);
        send_now(0);
    }
}
"#;
    let mut config = base_config();
    config.lock_crates = vec!["net".into()];
    let report = analyze_sources(
        &sources(&[
            ("crates/compat/polling/src/lib.rs", shim),
            ("crates/net/src/agent.rs", agent),
        ]),
        &config,
    );
    assert_eq!(
        report.active(RULE_LOCK_DISCIPLINE).count(),
        0,
        "after drop(guard) the lock region is over"
    );
}

#[test]
fn bounded_growth_requires_annotation_and_closes_over_containment() {
    let src = r#"
pub struct Node {
    peers: Vec<u8>,
    // bounded: capped at k entries; retire() evicts beyond that
    log: Vec<u8>,
    inner: Inner,
    count: u64,
}
pub struct Inner {
    backlog: Vec<u8>,
}
pub struct Unreachable {
    grows: Vec<u8>,
}
"#;
    let mut config = base_config();
    config.long_lived_roots = vec!["Node".into()];
    config.bounded_crates = vec!["core".into()];
    let report = analyze_sources(&sources(&[("crates/core/src/lib.rs", src)]), &config);
    let mut active: Vec<(u32, &str)> = report
        .active(RULE_BOUNDED_GROWTH)
        .map(|v| (v.line, v.message.as_str()))
        .collect();
    active.sort_unstable();
    assert_eq!(active.len(), 2, "{active:?}");
    assert_eq!(active[0].0, 3, "Node.peers is unannotated");
    assert!(
        active[0].1.contains("`Node.peers`"),
        "message names struct.field: {}",
        active[0].1
    );
    assert_eq!(
        active[1].0, 10,
        "Inner.backlog is reached through the containment closure"
    );
    assert!(active[1].1.contains("`Inner.backlog`"), "{}", active[1].1);
    // `log` is annotated, `count` is not growable, and `Unreachable`
    // is not contained in any long-lived root.
}
