//! Fixture-based rule tests: each file under `tests/fixtures/` is fed
//! to [`xtask::rules::analyze_file`] under a synthetic workspace path,
//! and the exact `(rule, line, waived)` set is asserted. The fixtures
//! directory is on the analyzer's skip list, so these files never leak
//! into a real `cargo run -p xtask -- lint` run.

use xtask::rules::{
    analyze_file, RULE_FFI, RULE_LAYERING, RULE_LOSSY_CAST, RULE_PANIC, RULE_UNSAFE, RULE_WAIVER,
};

/// Runs `fixture` as if it lived at `as_path`; returns the sorted
/// `(rule, line, waived)` triples plus the unused-waiver count.
fn run(fixture: &str, as_path: &str) -> (Vec<(&'static str, u32, bool)>, usize) {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let (violations, unused) = analyze_file(as_path, &src);
    let mut got: Vec<(&'static str, u32, bool)> = violations
        .iter()
        .map(|v| (v.rule, v.line, v.waived.is_some()))
        .collect();
    got.sort_unstable();
    (got, unused)
}

#[test]
fn layering_flags_io_time_and_threads_in_core() {
    let (got, _) = run("layering.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        got,
        vec![
            (RULE_LAYERING, 1, false), // use std::net::UdpSocket
            (RULE_LAYERING, 2, false), // use std::time::Instant
            (RULE_LAYERING, 5, false), // UdpSocket::bind
            (RULE_LAYERING, 6, false), // Instant::now
            (RULE_LAYERING, 7, false), // std::thread::sleep
        ]
    );
}

#[test]
fn layering_does_not_apply_to_the_io_crate() {
    let (got, _) = run("layering.rs", "crates/net/src/fixture.rs");
    assert_eq!(got, vec![]);
}

#[test]
fn layering_ignores_cfg_test_modules_strings_and_comments() {
    // The fixture's test module uses UdpSocket and Instant, and its
    // non-test body mentions both in a string and a comment; none of
    // those appear in the core-path results above (lines 11-22 absent).
    let (got, _) = run("layering.rs", "crates/core/src/fixture.rs");
    assert!(got.iter().all(|&(_, line, _)| line <= 7), "{got:?}");
}

#[test]
fn panic_rule_flags_all_four_forms_outside_tests() {
    let (got, _) = run("panics.rs", "crates/net/src/fixture.rs");
    assert_eq!(
        got,
        vec![
            (RULE_PANIC, 2, false), // .unwrap()
            (RULE_PANIC, 3, false), // .expect()
            (RULE_PANIC, 5, false), // panic!
            (RULE_PANIC, 8, false), // unreachable!
        ]
    );
}

#[test]
fn panic_rule_scope_excludes_the_simulator() {
    let (got, _) = run("panics.rs", "crates/sim/src/fixture.rs");
    assert_eq!(got, vec![]);
}

#[test]
fn waivers_suppress_validate_and_report_staleness() {
    let (got, unused) = run("waivers.rs", "crates/proto/src/fixture.rs");
    assert_eq!(
        got,
        vec![
            (RULE_LOSSY_CAST, 3, true),   // waived with a reason
            (RULE_LOSSY_CAST, 7, false),  // unguarded cast
            (RULE_LOSSY_CAST, 12, false), // a reasonless waiver waives nothing
            (RULE_WAIVER, 10, false),     // ... and is itself a violation
            (RULE_WAIVER, 15, false),     // unknown rule name
        ]
    );
    assert_eq!(unused, 1, "the waiver above `fn stale` matches nothing");
}

#[test]
fn unsafe_rule_accepts_adjacent_safety_comments_only() {
    let (got, _) = run("unsafety.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        got,
        vec![
            (RULE_UNSAFE, 17, false), // fn undocumented
            (RULE_UNSAFE, 23, false), // SAFETY comment separated by code
            (RULE_UNSAFE, 33, false), // undocumented unsafe impl
        ]
    );
    // Same-line, directly-above, and multi-line-run SAFETY comments all
    // pass, `unsafe fn` signatures are exempt (the inner block carries
    // the audit), and a documented `unsafe impl` passes.
}

#[test]
fn ffi_is_confined_to_the_polling_shim() {
    let (outside, _) = run("ffi.rs", "crates/core/src/fixture.rs");
    assert_eq!(outside, vec![(RULE_FFI, 1, false)]);
    let (inside, _) = run("ffi.rs", "crates/compat/polling/src/fixture.rs");
    assert_eq!(inside, vec![], "allowlisted symbol in the FFI home");
}

#[test]
fn ffi_symbols_must_be_allowlisted_even_in_the_shim() {
    let (got, _) = run("ffi_unknown_symbol.rs", "crates/compat/polling/src/fixture.rs");
    assert_eq!(got, vec![(RULE_FFI, 3, false)], "execve is not allowlisted");
}

#[test]
fn lossy_casts_flag_narrowing_on_codec_paths_only() {
    let (proto, _) = run("casts.rs", "crates/proto/src/fixture.rs");
    // Only the narrowing usize-as-u32 on line 2; the widening u16-as-u64
    // and the cast inside #[cfg(test)] are free.
    assert_eq!(proto, vec![(RULE_LOSSY_CAST, 2, false)]);
    let (core, _) = run("casts.rs", "crates/core/src/fixture.rs");
    assert_eq!(core, vec![], "core is not a codec path");
}

#[test]
fn lexer_side_channels_never_produce_findings() {
    let (got, _) = run("tricky_lexer.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        got,
        vec![],
        "strings, raw strings, byte strings, nested block comments, and \
         char literals must all be invisible to the rules"
    );
}

#[test]
fn fixture_results_are_stable_across_crate_prefix_forms() {
    // `classify` must treat the path the walker produces (relative,
    // forward slashes) consistently; a leading `./` must not change
    // scoping.
    let (a, _) = run("panics.rs", "crates/net/src/fixture.rs");
    let (b, _) = run("panics.rs", "./crates/net/src/fixture.rs");
    assert_eq!(a, b);
}
