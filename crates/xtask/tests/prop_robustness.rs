//! Property tests: the analyzer must never panic, whatever bytes it is
//! fed. swim-lint runs in CI over every source file in the workspace —
//! including half-saved, mid-rebase, or macro-mangled ones — so the
//! lexer, parser, and graph pass all have to degrade gracefully on
//! arbitrary (even non-UTF-8-shaped, even unbalanced) input.

use proptest::prelude::*;
use xtask::graph::GraphConfig;
use xtask::{analyze_sources, lexer, rules};

/// Rust-ish fragments: random bytes almost never form interesting token
/// runs, so half the coverage comes from splicing real syntax shapes
/// (unbalanced braces, stray waivers, half-written impls) together.
const FRAGMENTS: &[&str] = &[
    "fn ", "pub ", "impl ", "struct ", "trait ", "mod ", "unsafe ", "extern \"C\" ",
    "{", "}", "(", ")", "[", "]", ";", ",", "::", ".", "!", "#", "->", "=>", "&mut ",
    "x", "Node", "self", "driver", "lock", "unwrap", "expect", "panic!", "Vec",
    "push", "write", "macro_rules! m ", "let ", "= ", "\"str \\\" ing\"", "r#\"raw\"#",
    "b'\\x7f'", "// comment\n", "/* block", "*/", "/// doc\n",
    "// lint: allow(panic) — reason\n", "// lint: allow(", "// bounded: cap\n",
    "#[cfg(test)]", "0u8 as u32", "1_000", "'a", "<T>", "where T: Sized",
    "debug_assert!(", "\n",
];

fn fragment_soup(picks: &[u8]) -> String {
    let mut s = String::new();
    for &p in picks {
        s.push_str(FRAGMENTS[p as usize % FRAGMENTS.len()]);
    }
    s
}

proptest! {
    /// The lexer and the lexical rules survive arbitrary byte soup.
    #[test]
    fn lexical_pass_never_panics_on_bytes(bytes in collection::vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lexer::lex(&src);
        let _ = rules::analyze_lexed("crates/core/src/fuzz.rs", &lexed);
    }

    /// The full pipeline — lexer, parser, call graph, all four graph
    /// rules — survives arbitrary splices of Rust-shaped fragments
    /// (unterminated strings and comments, unbalanced brackets, waiver
    /// syntax cut off mid-token).
    #[test]
    fn full_pipeline_never_panics_on_fragment_soup(picks in collection::vec(any::<u8>(), 0..120)) {
        let src = fragment_soup(&picks);
        let sources = vec![
            ("crates/core/src/fuzz.rs".to_string(), src.clone()),
            ("crates/net/src/fuzz.rs".to_string(), src),
        ];
        let report = analyze_sources(&sources, &GraphConfig::workspace());
        // Any answer is fine; reaching here without unwinding is the
        // property. Touch the report so the call cannot be elided.
        prop_assert!(report.files >= 2);
    }

    /// Same property on raw byte soup through the whole pipeline.
    #[test]
    fn full_pipeline_never_panics_on_bytes(bytes in collection::vec(any::<u8>(), 0..300)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let sources = vec![("crates/core/src/fuzz.rs".to_string(), src)];
        let report = analyze_sources(&sources, &GraphConfig::workspace());
        prop_assert!(report.files == 1);
    }
}
