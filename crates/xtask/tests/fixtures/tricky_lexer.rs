fn no_false_positives() -> &'static str {
    let in_string = "x.unwrap() and panic! and UdpSocket live here";
    // A comment may say .unwrap() or extern "C" without tripping rules.
    /* Block comments too: Instant::now(), std::thread::spawn,
    even nested /* .expect("inner") */ stay invisible. */
    let raw = r#"raw strings hide "quotes" and .unwrap() calls"#;
    let byte = b"panic! bytes";
    let _lifetime: &'static str = "lifetimes are not char literals";
    let _ch = '"';
    let _ = (in_string, raw, byte);
    "ok"
}
