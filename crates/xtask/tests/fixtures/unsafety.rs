fn documented_same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller guarantees p is valid
}

fn documented_above(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}

fn documented_multiline(p: *const u8) -> u8 {
    // SAFETY: the audit sentence starts here and continues on a
    // second line; the run of comments ends directly above.
    unsafe { *p }
}

fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

fn stale_comment_with_code_gap(p: *const u8) -> u8 {
    // SAFETY: a code line below breaks adjacency, so this does not count.
    let _unrelated = 1;
    unsafe { *p }
}

struct Wrapper(*const u8);

// SAFETY: the pointer is never dereferenced off-thread.
unsafe impl Send for Wrapper {}

struct Undocumented(*const u8);

unsafe impl Send for Undocumented {}

pub unsafe fn contract_fn(p: *const u8) -> u8 {
    // SAFETY: contract_fn's caller guarantees p is valid.
    unsafe { *p }
}
