fn wire_path(bytes: &[u8]) -> u8 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("has two bytes");
    if *first == 0 {
        panic!("zero tag");
    }
    match second {
        0 => unreachable!("checked above"),
        n => *n,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u8> = Some(1);
        let _ = v.unwrap();
        let _ = v.expect("present");
    }
}
