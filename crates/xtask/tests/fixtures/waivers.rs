fn guarded(len: usize) -> u16 {
    // lint: allow(lossy_cast) — callers bound len to the packet budget
    len as u16
}

fn unguarded(len: usize) -> u16 {
    len as u16
}

// lint: allow(lossy_cast)
fn missing_reason(len: usize) -> u32 {
    len as u32
}

// lint: allow(no_such_rule) — the rule name is validated
fn unknown_rule() {}

// lint: allow(lossy_cast) — this waiver matches nothing below
fn stale() {}
