fn encode_len(len: usize) -> u32 {
    len as u32
}

fn widen(n: u16) -> u64 {
    n as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_casts_are_free() {
        let n = 300usize;
        let _ = n as u8;
    }
}
