extern "C" {
    fn close(fd: i32) -> i32;
    fn execve(path: *const u8, argv: *const *const u8, envp: *const *const u8) -> i32;
}
