use std::net::UdpSocket;
use std::time::Instant;

fn bad() {
    let _sock = UdpSocket::bind("127.0.0.1:0");
    let _now = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn strings_and_comments_do_not_trip() {
    let _s = "UdpSocket::bind inside a string";
    // UdpSocket mentioned in a comment is fine.
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_io() {
        let _sock = std::net::UdpSocket::bind("127.0.0.1:0");
        let _t = std::time::Instant::now();
    }
}
