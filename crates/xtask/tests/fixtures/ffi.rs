extern "C" {
    fn close(fd: i32) -> i32;
}

fn shut(fd: i32) -> i32 {
    // SAFETY: close(2) takes no pointers.
    unsafe { close(fd) }
}
