//! Aggregation at 100k-member scale: folding one snapshot per member of
//! a very large run into an [`Aggregate`] must stay linear — per-node
//! work in `add` is O(1) (counter sums + fixed-width histogram merges)
//! and rendering is a single pass. A quadratic regression (say, re-merge
//! of all prior nodes per `add`, or repeated string reallocation per
//! node in the report) would make the 100k simulation's metrics
//! post-processing slower than the simulation itself.

use std::time::Instant;

use lifeguard_metrics::{Aggregate, Snapshot};

/// A distinct snapshot for synthetic node `i`.
fn snap_for(i: u64) -> Snapshot {
    let mut s = Snapshot::default();
    s.core.probes_sent = 100 + i % 7;
    s.core.suspicions_raised = i % 3;
    s.core.refutations = i % 2;
    s.core.lhm = i % 5;
    s.core.lhm_peak = i % 8;
    s.core.probe_rtt.record(200 + (i % 900));
    s.io.datagrams_sent = 1_000 + i;
    s.io.datagram_bytes = 140_000 + i * 17;
    s
}

fn aggregate_n(n: u64) -> (Aggregate, std::time::Duration) {
    let start = Instant::now();
    let mut agg = Aggregate::new();
    for i in 0..n {
        agg.add(&format!("node-{i}"), snap_for(i));
    }
    // Rendering both report forms is part of the per-run cost.
    let json = agg.to_json();
    let dash = agg.dashboard();
    assert!(!json.is_empty() && !dash.is_empty());
    (agg, start.elapsed())
}

#[test]
fn hundred_thousand_snapshots_merge_correctly() {
    let n = 100_000u64;
    let start = Instant::now();
    let mut agg = Aggregate::new();
    for i in 0..n {
        // Round-trip the binary `.snap` codec: this is the exact
        // per-file path the `swim-metrics` binary takes.
        let snap = Snapshot::decode(&snap_for(i).encode()).expect("self-encoded must decode");
        agg.add(&format!("node-{i}"), snap);
    }
    assert!(!agg.to_json().is_empty() && !agg.dashboard().is_empty());
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 60,
        "aggregating 100k snapshots took {elapsed:?}"
    );
    assert_eq!(agg.len(), n as usize);
    let merged = agg.merged();
    // Counters sum exactly.
    let want_probes: u64 = (0..n).map(|i| 100 + i % 7).sum();
    assert_eq!(merged.core.probes_sent, want_probes);
    let want_datagrams: u64 = (0..n).map(|i| 1_000 + i).sum();
    assert_eq!(merged.io.datagrams_sent, want_datagrams);
    // Gauges keep the worst value.
    assert_eq!(merged.core.lhm_peak, 7);
    // Histograms accumulate one sample per node.
    assert_eq!(merged.core.probe_rtt.count(), n);
}

/// Growth guard: 4× the snapshots must cost far less than the ~16× a
/// quadratic `add` (or report rendering) would show. The bound is loose
/// (10×) to tolerate scheduler noise; the point is catching asymptotic
/// regressions, not micro-variance.
#[test]
fn aggregation_scales_linearly() {
    let time = |n: u64| {
        (0..2)
            .map(|_| aggregate_n(n).1)
            .min()
            .expect("two samples")
    };
    // Warm up allocators and caches before sampling.
    let _ = aggregate_n(2_000);
    let small = time(8_000);
    let large = time(32_000);
    let ratio = large.as_secs_f64() / small.as_secs_f64().max(1e-9);
    assert!(
        ratio < 10.0,
        "4x snapshots cost {ratio:.1}x time ({small:?} -> {large:?}); aggregation is super-linear"
    );
}
