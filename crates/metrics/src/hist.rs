//! Fixed log-bucket histogram and the shared quantile rule.
//!
//! The histogram is HDR-style log-linear: values below 16 get one
//! bucket each (exact), every power-of-two range above is split into
//! 16 sub-buckets, so the relative quantile error is bounded by half a
//! sub-bucket width (≤ ~3.2%) across the whole `u64` domain. The
//! bucket array is a fixed-size inline array — `record` is branch +
//! shift + one increment, no allocation ever — which is what lets the
//! protocol core carry histograms on its zero-allocation hot path.
//!
//! Quantiles everywhere in the workspace use the *same* rank rule
//! (`rank_bounds`): closest-ranks linear interpolation over `n`
//! ordered samples. [`percentile`] applies it to raw `f64` samples
//! (exact), [`Histogram::quantile`] applies it to bucket counts
//! (bounded-error). The experiments crate re-exports these instead of
//! keeping its own copy.

use std::time::Duration;

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 4;
/// Buckets per power-of-two range.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` domain: 16 unit buckets
/// for values `< 16`, then 16 per octave for octaves 4..=63.
pub const NUM_BUCKETS: usize = 976;

/// A fixed log-linear-bucket histogram over `u64` values.
///
/// ```
/// use lifeguard_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in [10, 12, 14] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.quantile(50.0), Some(12.0)); // values < 16 are exact
/// assert_eq!(Histogram::new().quantile(50.0), None);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    /// Bucket index of `v`. Always `< NUM_BUCKETS`.
    fn index(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            // msb >= SUB_BITS, so the shift never underflows and the
            // shifted value lands in [SUB, 2*SUB).
            let msb = 63 - v.leading_zeros();
            let shift = msb - SUB_BITS;
            (shift as usize) * (SUB as usize) + (v >> shift) as usize
        }
    }

    /// Inclusive lower bound of bucket `idx`.
    fn bucket_lo(idx: usize) -> u64 {
        if idx < SUB as usize {
            idx as u64
        } else {
            let shift = (idx / SUB as usize - 1) as u32;
            ((idx as u64) - u64::from(shift) * SUB) << shift
        }
    }

    /// Representative value of bucket `idx` (midpoint of its range).
    fn bucket_mid(idx: usize) -> u64 {
        let lo = Self::bucket_lo(idx);
        let width = if idx < SUB as usize {
            1
        } else {
            1u64 << (idx / SUB as usize - 1)
        };
        lo.saturating_add((width - 1) / 2)
    }

    /// Records one observation. Allocation-free; counters saturate
    /// rather than wrap.
    // lint: allow(panic_path) — `Self::index` documents and guarantees `idx < NUM_BUCKETS`, so the bucket index never goes out of bounds
    pub fn record(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = Self::index(v);
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
    }

    /// Records a duration in microseconds (the workspace's metric time
    /// unit, matching `lifeguard_core::time::Time` resolution).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), estimated from the
    /// bucket counts with the shared closest-ranks rule and clamped to
    /// the recorded `[min, max]` (so extremes are exact). `None` when
    /// empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let (lo, hi, frac) = rank_bounds(p, self.count);
        let a = self.value_at_rank(lo) as f64;
        let v = if lo == hi {
            a
        } else {
            let b = self.value_at_rank(hi) as f64;
            a * (1.0 - frac) + b * frac
        };
        Some(v.clamp(self.min() as f64, self.max as f64))
    }

    /// Representative value of the `rank`-th smallest observation
    /// (0-based). `rank` must be `< count`.
    fn value_at_rank(&self, rank: u64) -> u64 {
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen > rank {
                return Self::bucket_mid(idx);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (run-level aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Non-empty buckets as `(index, count)` pairs — the sparse wire
    /// form used by the snapshot codec.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
    }

    /// Rebuilds a histogram from its wire form. Returns `None` if a
    /// bucket index is out of range or the bucket counts do not add up
    /// to `count` (a corrupt snapshot must not decode silently).
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        pairs: &[(u32, u64)],
    ) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        let mut total = 0u64;
        for &(idx, c) in pairs {
            let slot = h.buckets.get_mut(idx as usize)?;
            *slot = slot.saturating_add(c);
            total = total.saturating_add(c);
        }
        if total != count {
            return None;
        }
        Some(h)
    }
}

/// Closest-ranks interpolation bounds for the `p`-th percentile over
/// `n` ordered samples: the two 0-based ranks to blend and the blend
/// fraction. This is the single quantile rule every caller shares.
fn rank_bounds(p: f64, n: u64) -> (u64, u64, f64) {
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    if n <= 1 {
        return (0, 0, 0.0);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as u64;
    let hi = rank.ceil() as u64;
    (lo, hi, rank - lo as f64)
}

/// Percentile of raw samples by linear interpolation between closest
/// ranks. `p` is in `[0, 100]`.
///
/// `NaN` samples are ignored (they carry no ordering information);
/// returns `None` when no finite-ordered sample remains, including the
/// empty input.
///
/// ```
/// use lifeguard_metrics::percentile;
/// let xs = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// assert_eq!(percentile(&[f64::NAN], 50.0), None);
/// assert_eq!(percentile(&[f64::NAN, 5.0], 99.0), Some(5.0));
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let (lo, hi, frac) = rank_bounds(p, sorted.len() as u64);
    let a = *sorted.get(lo as usize)?;
    if lo == hi {
        return Some(a);
    }
    let b = *sorted.get(hi as usize)?;
    Some(a * (1.0 - frac) + b * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_covers_domain() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(15), 15);
        assert_eq!(Histogram::index(16), 16);
        assert_eq!(Histogram::index(31), 31);
        assert_eq!(Histogram::index(32), 32);
        assert_eq!(Histogram::index(u64::MAX), NUM_BUCKETS - 1);
        // Buckets are monotone in the value.
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 100, 1000, 1 << 20, 1 << 40, u64::MAX] {
            let idx = Histogram::index(v);
            assert!(idx >= last, "bucket order broke at {v}");
            last = idx;
        }
    }

    #[test]
    fn bucket_bounds_invert_index() {
        for v in [0u64, 3, 15, 16, 17, 100, 12345, 1 << 33, u64::MAX] {
            let idx = Histogram::index(v);
            let lo = Histogram::bucket_lo(idx);
            assert!(lo <= v, "lo {lo} > v {v}");
            let mid = Histogram::bucket_mid(idx);
            assert_eq!(Histogram::index(mid), idx, "midpoint left its bucket");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 12, 14] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(10.0));
        assert_eq!(h.quantile(50.0), Some(12.0));
        assert_eq!(h.quantile(100.0), Some(14.0));
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 14);
        assert_eq!(h.mean(), Some(12.0));
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Seconds-scale microsecond samples: the log-linear buckets
        // must stay within half a sub-bucket (~3.2%) of the truth.
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=1000u64).map(|i| i * 10_000).collect();
        for &s in &samples {
            h.record(s);
        }
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9] {
            let est = h.quantile(p).unwrap();
            let exact =
                percentile(&samples.iter().map(|&s| s as f64).collect::<Vec<_>>(), p).unwrap();
            let err = (est - exact).abs() / exact;
            assert!(err <= 0.033, "p{p}: est {est} vs exact {exact} ({err})");
        }
    }

    #[test]
    fn empty_histogram_answers_safely() {
        let h = Histogram::new();
        assert_eq!(h.quantile(50.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_is_sum_of_parts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [5u64, 100, 10_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [7u64, 1_000_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn wire_form_round_trips() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 500, 1 << 30] {
            h.record(v);
        }
        let pairs: Vec<(u32, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &pairs).unwrap();
        assert_eq!(back, h);
        // Corrupt pair lists refuse to decode.
        assert!(Histogram::from_parts(5, 0, 0, 0, &pairs[..1]).is_none());
        assert!(Histogram::from_parts(1, 0, 0, 0, &[(NUM_BUCKETS as u32, 1)]).is_none());
    }

    #[test]
    fn percentile_matches_previous_semantics() {
        let xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 25.0), Some(20.0));
        assert_eq!(percentile(&xs, 50.0), Some(30.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&xs, 62.5), Some(35.0));
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
        assert_eq!(percentile(&[7.0], 99.9), Some(7.0));
        assert_eq!(percentile(&[1.0, 2.0], -5.0), Some(1.0));
        assert_eq!(percentile(&[1.0, 2.0], 150.0), Some(2.0));
    }

    #[test]
    fn percentile_nan_inputs_are_ignored_not_fatal() {
        // The old implementation panicked via `partial_cmp().expect()`
        // on any NaN; the shared one filters them out.
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), None);
        assert_eq!(percentile(&[f64::NAN, 4.0, 2.0], 50.0), Some(3.0));
        // NaN percentile argument degrades to p=0, not a poisoned sort.
        assert_eq!(percentile(&[1.0, 9.0], f64::NAN), Some(1.0));
    }
}
