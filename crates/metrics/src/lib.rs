//! The observability plane's sans-io metrics core.
//!
//! Everything in this crate is pure data manipulation: no sockets, no
//! clocks, no threads, no allocation on the recording path. The
//! protocol core embeds [`Histogram`]s and plain counter fields and
//! records into them from its deterministic `handle_input` path, so
//! under the simulator the same seed produces byte-identical metric
//! state — the crate passes swim-lint's sans-I/O layering rule for the
//! same reason `lifeguard-core` does.
//!
//! Layers:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — the recording
//!   primitives. The histogram is a fixed log-linear bucket array
//!   (16 sub-buckets per power of two, ≤ ~3% quantile error), sized
//!   for the full `u64` range, `record()` is a handful of integer ops
//!   and one array increment.
//! - [`Snapshot`] ([`CoreSnapshot`] + [`IoSnapshot`]) — the compact
//!   serializable point-in-time export every runtime (sim, threaded
//!   net, reactor net) produces in the same shape, with a versioned
//!   binary codec and a hand-rolled JSON writer (the build is
//!   offline; no serde).
//! - [`Aggregate`] — run-level merge of per-node snapshots plus the
//!   text dashboard, shared by the `swim-metrics` binary and the
//!   experiments harness.
//! - [`percentile`] — the one quantile implementation (closest-ranks
//!   linear interpolation); [`Histogram::quantile`] routes through
//!   the same rank rule over bucket counts.

pub mod aggregate;
pub mod hist;
pub mod snapshot;

pub use aggregate::Aggregate;
pub use hist::{percentile, Histogram};
pub use snapshot::{CoreSnapshot, DecodeError, IoSnapshot, Snapshot};

/// A monotonically increasing event count.
///
/// A thin newtype over `u64` so registries read declaratively; the
/// recording path is a single saturating add (no allocation, no
/// atomics — the core is single-threaded by design, runtimes that
/// share counters across threads keep their own atomic mirrors and
/// fold them into the [`Snapshot`]).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `n`, saturating instead of wrapping (a saturated counter
    /// is visibly pegged; a wrapped one silently lies).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A point-in-time level (queue depth, health score). Unlike a
/// [`Counter`] it moves both ways; the peak since construction is
/// tracked alongside so a snapshot taken after an incident still
/// shows how bad it got.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Gauge {
    value: u64,
    peak: u64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge { value: 0, peak: 0 }
    }

    /// Sets the current level and folds it into the peak.
    pub fn set(&mut self, v: u64) {
        self.value = v;
        self.peak = self.peak.max(v);
    }

    /// Current level.
    pub fn get(self) -> u64 {
        self.value
    }

    /// Highest level ever set.
    pub fn peak(self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.inc();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_tracks_peak() {
        let mut g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.peak(), 7);
    }
}
