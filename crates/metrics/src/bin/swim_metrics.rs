//! `swim-metrics` — run-level metrics aggregator.
//!
//! Merges per-node snapshot files (the compact binary `.snap` form
//! every runtime can drop, e.g. `target/metrics/<node>.snap`) into
//! the text dashboard on stdout and, with `--json`, a machine-readable
//! report.
//!
//! ```text
//! swim-metrics [--json OUT.json] <file-or-dir>...
//! ```
//!
//! Directories are scanned (non-recursively) for `*.snap`. With no
//! arguments, `target/metrics` is scanned. Exits nonzero when no
//! snapshot decodes — a run that produced nothing must not look
//! healthy in CI.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lifeguard_metrics::{Aggregate, Snapshot};

fn usage() -> ExitCode {
    eprintln!("usage: swim-metrics [--json OUT.json] <snapshot-file-or-dir>...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut json_out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => inputs.push(PathBuf::from(arg)),
        }
    }
    if inputs.is_empty() {
        inputs.push(PathBuf::from("target/metrics"));
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for input in &inputs {
        if input.is_dir() {
            let entries = match fs::read_dir(input) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("swim-metrics: cannot read {}: {e}", input.display());
                    return ExitCode::FAILURE;
                }
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.extension().and_then(|e| e.to_str()) == Some("snap") {
                    files.push(p);
                }
            }
        } else {
            files.push(input.clone());
        }
    }
    files.sort();

    let mut agg = Aggregate::new();
    for path in &files {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("swim-metrics: skipping {}: {e}", path.display());
                continue;
            }
        };
        match Snapshot::decode(&bytes) {
            Ok(snap) => agg.add(&node_name(path), snap),
            Err(e) => eprintln!("swim-metrics: skipping {}: {e}", path.display()),
        }
    }
    if agg.is_empty() {
        eprintln!("swim-metrics: no decodable snapshots among {} file(s)", files.len());
        return ExitCode::FAILURE;
    }

    print!("{}", agg.dashboard());
    if let Some(path) = json_out {
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(e) = fs::write(&path, agg.to_json()) {
            eprintln!("swim-metrics: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Node name of a snapshot file: its stem (`n3.snap` → `n3`).
fn node_name(path: &Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("node")
        .to_string()
}
