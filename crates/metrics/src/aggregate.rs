//! Run-level aggregation: merging per-node [`Snapshot`]s and
//! rendering the text dashboard / JSON report the `swim-metrics`
//! binary and the experiments harness share.

use std::fmt::Write as _;

use crate::snapshot::{write_hist_json, Snapshot};

/// Per-node snapshots of one run plus their merged totals.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    nodes: Vec<(String, Snapshot)>,
    merged: Snapshot,
}

impl Aggregate {
    /// An empty aggregate.
    pub fn new() -> Aggregate {
        Aggregate::default()
    }

    /// Folds one node's snapshot in. Counters and histograms sum;
    /// level gauges keep the worst value across nodes (an aggregate
    /// LHM of 3 means *some* node degraded that far).
    pub fn add(&mut self, name: &str, snap: Snapshot) {
        let m = &mut self.merged.core;
        let c = &snap.core;
        m.lhm = m.lhm.max(c.lhm);
        m.lhm_peak = m.lhm_peak.max(c.lhm_peak);
        m.lhm_max = m.lhm_max.max(c.lhm_max);
        m.probes_sent = m.probes_sent.saturating_add(c.probes_sent);
        m.probes_failed = m.probes_failed.saturating_add(c.probes_failed);
        m.indirect_probes_sent = m.indirect_probes_sent.saturating_add(c.indirect_probes_sent);
        m.suspicions_raised = m.suspicions_raised.saturating_add(c.suspicions_raised);
        m.refutations = m.refutations.saturating_add(c.refutations);
        m.failures_declared = m.failures_declared.saturating_add(c.failures_declared);
        m.flaps = m.flaps.saturating_add(c.flaps);
        m.broadcast_queue_depth = m.broadcast_queue_depth.saturating_add(c.broadcast_queue_depth);
        m.broadcast_queue_peak = m.broadcast_queue_peak.max(c.broadcast_queue_peak);
        m.delta_syncs = m.delta_syncs.saturating_add(c.delta_syncs);
        m.delta_sync_bytes = m.delta_sync_bytes.saturating_add(c.delta_sync_bytes);
        m.full_sync_fallbacks = m.full_sync_fallbacks.saturating_add(c.full_sync_fallbacks);
        m.probe_rtt.merge(&c.probe_rtt);
        m.suspicion_lifetime.merge(&c.suspicion_lifetime);
        let mi = &mut self.merged.io;
        let i = &snap.io;
        mi.send_syscalls = mi.send_syscalls.saturating_add(i.send_syscalls);
        mi.sendmmsg_batches = mi.sendmmsg_batches.saturating_add(i.sendmmsg_batches);
        mi.datagrams_sent = mi.datagrams_sent.saturating_add(i.datagrams_sent);
        mi.datagram_bytes = mi.datagram_bytes.saturating_add(i.datagram_bytes);
        mi.send_errors = mi.send_errors.saturating_add(i.send_errors);
        mi.would_block_drops = mi.would_block_drops.saturating_add(i.would_block_drops);
        mi.recv_syscalls = mi.recv_syscalls.saturating_add(i.recv_syscalls);
        mi.datagrams_received = mi.datagrams_received.saturating_add(i.datagrams_received);
        mi.recv_truncations = mi.recv_truncations.saturating_add(i.recv_truncations);
        mi.streams_sent = mi.streams_sent.saturating_add(i.streams_sent);
        mi.stream_bytes = mi.stream_bytes.saturating_add(i.stream_bytes);
        mi.wakeups = mi.wakeups.saturating_add(i.wakeups);
        self.nodes.push((name.to_string(), snap));
    }

    /// Number of nodes folded in.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether anything was folded in.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The merged totals.
    pub fn merged(&self) -> &Snapshot {
        &self.merged
    }

    /// The per-node snapshots in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (&str, &Snapshot)> {
        self.nodes.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// The human-readable run dashboard.
    pub fn dashboard(&self) -> String {
        let mut out = String::with_capacity(2048);
        let c = &self.merged.core;
        let io = &self.merged.io;
        let _ = writeln!(out, "swim-metrics · {} node(s)", self.nodes.len());
        let _ = writeln!(
            out,
            "  health      lhm now {} / peak {} (ceiling {})",
            c.lhm, c.lhm_peak, c.lhm_max
        );
        let _ = writeln!(
            out,
            "  probing     {} sent · {} failed · {} indirect",
            c.probes_sent, c.probes_failed, c.indirect_probes_sent
        );
        let _ = writeln!(out, "  probe rtt   {}", hist_line(&c.probe_rtt));
        let _ = writeln!(
            out,
            "  suspicion   {} raised · {} refuted-by-target · {} declared dead · {} flaps",
            c.suspicions_raised, c.refutations, c.failures_declared, c.flaps
        );
        let _ = writeln!(out, "  susp life   {}", hist_line(&c.suspicion_lifetime));
        let _ = writeln!(
            out,
            "  anti-entropy {} delta msgs ({} B) · {} full-state exchanges",
            c.delta_syncs, c.delta_sync_bytes, c.full_sync_fallbacks
        );
        let _ = writeln!(
            out,
            "  broadcast q {} queued · peak {}",
            c.broadcast_queue_depth, c.broadcast_queue_peak
        );
        let _ = writeln!(
            out,
            "  io          {} dgrams out ({} B, {} syscalls, {} mmsg batches) · {} in · {} streams ({} B) · {} wakeups",
            io.datagrams_sent,
            io.datagram_bytes,
            io.send_syscalls,
            io.sendmmsg_batches,
            io.datagrams_received,
            io.streams_sent,
            io.stream_bytes,
            io.wakeups
        );
        if io.send_errors + io.would_block_drops + io.recv_truncations > 0 {
            let _ = writeln!(
                out,
                "  io errors   {} send errors · {} would-block drops · {} truncations",
                io.send_errors, io.would_block_drops, io.recv_truncations
            );
        }
        if !self.nodes.is_empty() {
            let _ = writeln!(
                out,
                "  {:<18} {:>4} {:>8} {:>7} {:>5} {:>5} {:>9}",
                "node", "lhm", "probes", "failed", "susp", "flaps", "dgrams"
            );
            for (name, s) in &self.nodes {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>4} {:>8} {:>7} {:>5} {:>5} {:>9}",
                    truncate(name, 18),
                    s.core.lhm,
                    s.core.probes_sent,
                    s.core.probes_failed,
                    s.core.suspicions_raised,
                    s.core.flaps,
                    s.io.datagrams_sent
                );
            }
        }
        out
    }

    /// The aggregate as JSON: `{"nodes": {...}, "total": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.write_json(&mut out);
        out
    }

    /// Writes the aggregate JSON object into `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"nodes\":{");
        for (i, (name, snap)) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(out, name);
            out.push_str("\":");
            snap.write_json(out);
        }
        out.push_str("},\"total\":");
        self.merged.write_json(out);
        out.push('}');
    }
}

/// One-line histogram summary for the dashboard.
fn hist_line(h: &crate::Histogram) -> String {
    match (h.quantile(50.0), h.quantile(99.0)) {
        (Some(p50), Some(p99)) => format!(
            "n={} p50={:.1}ms p99={:.1}ms max={:.1}ms",
            h.count(),
            p50 / 1000.0,
            p99 / 1000.0,
            h.max() as f64 / 1000.0
        ),
        _ => "n=0".to_string(),
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

/// Minimal JSON string escaping (node names are operator-chosen).
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Re-exported so the aggregator and experiments can embed histogram
/// JSON for SLO curves without re-implementing the writer.
pub fn hist_json(h: &crate::Histogram) -> String {
    let mut s = String::new();
    write_hist_json(&mut s, h);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = Aggregate::new();
        let mut s1 = Snapshot::default();
        s1.core.lhm = 1;
        s1.core.probes_sent = 10;
        s1.core.probe_rtt.record(1000);
        let mut s2 = Snapshot::default();
        s2.core.lhm = 3;
        s2.core.probes_sent = 5;
        s2.io.wakeups = 9;
        a.add("n1", s1);
        a.add("n2", s2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.merged().core.lhm, 3);
        assert_eq!(a.merged().core.probes_sent, 15);
        assert_eq!(a.merged().core.probe_rtt.count(), 1);
        assert_eq!(a.merged().io.wakeups, 9);
    }

    #[test]
    fn dashboard_and_json_render() {
        let mut a = Aggregate::new();
        let mut s = Snapshot::default();
        s.core.probes_sent = 42;
        a.add("node-\"x\"", s);
        let dash = a.dashboard();
        assert!(dash.contains("42 sent"));
        let json = a.to_json();
        assert!(json.contains("\"node-\\\"x\\\"\""));
        assert!(json.contains("\"total\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
