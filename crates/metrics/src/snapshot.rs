//! The serializable per-node metrics snapshot.
//!
//! Every runtime exports the same shape: a [`CoreSnapshot`] of the
//! deterministic protocol metrics (recorded by `SwimNode` on its
//! sans-io input path) plus an [`IoSnapshot`] of runtime transport
//! counters (sim telemetry, threaded-agent syscall counters, reactor
//! wakeups). That single shape is what makes sim vs threaded vs
//! reactor behavior comparable from one struct, and what the
//! `swim-metrics` aggregator merges across a run.
//!
//! Two codecs, both dependency-free:
//!
//! - a versioned compact binary form ([`Snapshot::encode`] /
//!   [`Snapshot::decode`], magic `SWMM`, little-endian, histograms as
//!   sparse `(bucket, count)` pairs) for `.snap` files a run drops on
//!   disk;
//! - a hand-rolled JSON writer ([`Snapshot::to_json`]) for dashboards
//!   and the CI gate (the build is offline; no serde).

use crate::hist::Histogram;

/// Snapshot codec magic.
const MAGIC: [u8; 4] = *b"SWMM";
/// Snapshot codec version; bumped on any layout change.
const VERSION: u8 = 1;

/// Deterministic protocol-core metrics (identical across runtimes for
/// the same input trace).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoreSnapshot {
    /// Current Local Health Multiplier score (0 = healthy).
    pub lhm: u64,
    /// Highest LHM score ever reached.
    pub lhm_peak: u64,
    /// Configured LHM ceiling.
    pub lhm_max: u64,
    /// Direct probes initiated.
    pub probes_sent: u64,
    /// Probe rounds that ended without an ack.
    pub probes_failed: u64,
    /// `ping-req` messages sent to intermediaries.
    pub indirect_probes_sent: u64,
    /// Suspicions started or adopted.
    pub suspicions_raised: u64,
    /// Times this node refuted a claim about itself.
    pub refutations: u64,
    /// Failures declared from this node's own suspicion timeouts
    /// (the false-positive numerator when the target was healthy).
    pub failures_declared: u64,
    /// Members seen Suspect/Dead and then Alive again (flap counter).
    pub flaps: u64,
    /// Gossip broadcasts queued right now.
    pub broadcast_queue_depth: u64,
    /// Highest queued-broadcast level observed at a snapshot point.
    pub broadcast_queue_peak: u64,
    /// Incremental push-pull messages sent (requests + replies).
    pub delta_syncs: u64,
    /// Encoded bytes of those incremental push-pull messages.
    pub delta_sync_bytes: u64,
    /// Full-state push-pull exchanges queued (delta-sync fallbacks,
    /// horizon resyncs, reconnects and joins).
    pub full_sync_fallbacks: u64,
    /// Probe round-trip time, microseconds (timely acks only).
    pub probe_rtt: Histogram,
    /// Lifetime of suspicions from raise to resolution (refute, death
    /// claim, or local expiry), microseconds.
    pub suspicion_lifetime: Histogram,
}

/// Transport counters in one runtime-agnostic shape. Fields a runtime
/// cannot observe stay zero (the sim has no syscalls; the threaded
/// runtime has no reactor wakeups).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// UDP send syscalls issued (`send_to` + `sendmmsg`).
    pub send_syscalls: u64,
    /// `sendmmsg` calls that carried more than one datagram.
    pub sendmmsg_batches: u64,
    /// Datagrams handed to the kernel (or the sim network).
    pub datagrams_sent: u64,
    /// Payload bytes of those datagrams.
    pub datagram_bytes: u64,
    /// Send errors other than `WouldBlock`.
    pub send_errors: u64,
    /// Datagrams dropped because the socket buffer was full.
    pub would_block_drops: u64,
    /// UDP receive syscalls issued.
    pub recv_syscalls: u64,
    /// Datagrams received.
    pub datagrams_received: u64,
    /// Datagrams truncated on receive (malformed oversized senders).
    pub recv_truncations: u64,
    /// Stream (TCP / sim-stream) messages sent.
    pub streams_sent: u64,
    /// Encoded payload bytes of those stream messages.
    pub stream_bytes: u64,
    /// Reactor event-loop wakeups (poll returns).
    pub wakeups: u64,
}

/// One node's complete metrics export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Deterministic protocol metrics.
    pub core: CoreSnapshot,
    /// Runtime transport metrics.
    pub io: IoSnapshot,
}

/// A snapshot that failed to decode (corrupt file, foreign version).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// What was wrong, for operator-facing error output.
    pub reason: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode failed: {}", self.reason)
    }
}

impl std::error::Error for DecodeError {}

const fn err(reason: &'static str) -> DecodeError {
    DecodeError { reason }
}

/// Little-endian reader over a snapshot buffer; every accessor is
/// bounds-checked (snapshot files are untrusted input to the
/// aggregator, and the metrics crate is panic-baseline zero).
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    // lint: allow(panic_path) — `s[0]` indexes the 1-byte slice `take(1)` just returned; `take` guarantees the exact length
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        let arr: [u8; 4] = s.try_into().ok()?;
        Some(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let arr: [u8; 8] = s.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_hist(out: &mut Vec<u8>, h: &Histogram) {
    put_u64(out, h.count());
    put_u64(out, h.sum());
    put_u64(out, h.min());
    put_u64(out, h.max());
    let pairs: Vec<(u32, u64)> = h.nonzero_buckets().collect();
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (idx, c) in pairs {
        out.extend_from_slice(&idx.to_le_bytes());
        put_u64(out, c);
    }
}

fn decode_hist(c: &mut Cursor<'_>) -> Option<Histogram> {
    let count = c.u64()?;
    let sum = c.u64()?;
    let min = c.u64()?;
    let max = c.u64()?;
    let n = c.u32()? as usize;
    let mut pairs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        pairs.push((c.u32()?, c.u64()?));
    }
    Histogram::from_parts(count, sum, min, max, &pairs)
}

impl Snapshot {
    /// Encodes the snapshot into its compact binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(512);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        let co = &self.core;
        for v in [
            co.lhm,
            co.lhm_peak,
            co.lhm_max,
            co.probes_sent,
            co.probes_failed,
            co.indirect_probes_sent,
            co.suspicions_raised,
            co.refutations,
            co.failures_declared,
            co.flaps,
            co.broadcast_queue_depth,
            co.broadcast_queue_peak,
            co.delta_syncs,
            co.delta_sync_bytes,
            co.full_sync_fallbacks,
        ] {
            put_u64(&mut out, v);
        }
        encode_hist(&mut out, &co.probe_rtt);
        encode_hist(&mut out, &co.suspicion_lifetime);
        let io = &self.io;
        for v in [
            io.send_syscalls,
            io.sendmmsg_batches,
            io.datagrams_sent,
            io.datagram_bytes,
            io.send_errors,
            io.would_block_drops,
            io.recv_syscalls,
            io.datagrams_received,
            io.recv_truncations,
            io.streams_sent,
            io.stream_bytes,
            io.wakeups,
        ] {
            put_u64(&mut out, v);
        }
        out
    }

    /// Decodes a snapshot produced by [`Snapshot::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a bad magic/version, truncation,
    /// trailing bytes, or inconsistent histogram bucket counts.
    // lint: allow(panic_path) — every index is a literal into the fixed-size `core15`/`io12` local arrays; all reads from the untrusted buffer go through the bounds-checked `Cursor`
    pub fn decode(buf: &[u8]) -> Result<Snapshot, DecodeError> {
        let mut c = Cursor { buf, at: 0 };
        if c.take(4) != Some(&MAGIC) {
            return Err(err("bad magic"));
        }
        if c.u8() != Some(VERSION) {
            return Err(err("unsupported version"));
        }
        let mut core15 = [0u64; 15];
        for slot in &mut core15 {
            *slot = c.u64().ok_or(err("truncated core counters"))?;
        }
        let probe_rtt = decode_hist(&mut c).ok_or(err("bad probe_rtt histogram"))?;
        let suspicion_lifetime =
            decode_hist(&mut c).ok_or(err("bad suspicion_lifetime histogram"))?;
        let mut io12 = [0u64; 12];
        for slot in &mut io12 {
            *slot = c.u64().ok_or(err("truncated io counters"))?;
        }
        if c.at != buf.len() {
            return Err(err("trailing bytes"));
        }
        Ok(Snapshot {
            core: CoreSnapshot {
                lhm: core15[0],
                lhm_peak: core15[1],
                lhm_max: core15[2],
                probes_sent: core15[3],
                probes_failed: core15[4],
                indirect_probes_sent: core15[5],
                suspicions_raised: core15[6],
                refutations: core15[7],
                failures_declared: core15[8],
                flaps: core15[9],
                broadcast_queue_depth: core15[10],
                broadcast_queue_peak: core15[11],
                delta_syncs: core15[12],
                delta_sync_bytes: core15[13],
                full_sync_fallbacks: core15[14],
                probe_rtt,
                suspicion_lifetime,
            },
            io: IoSnapshot {
                send_syscalls: io12[0],
                sendmmsg_batches: io12[1],
                datagrams_sent: io12[2],
                datagram_bytes: io12[3],
                send_errors: io12[4],
                would_block_drops: io12[5],
                recv_syscalls: io12[6],
                datagrams_received: io12[7],
                recv_truncations: io12[8],
                streams_sent: io12[9],
                stream_bytes: io12[10],
                wakeups: io12[11],
            },
        })
    }

    /// The snapshot as a JSON object (see `docs/OBSERVABILITY.md` for
    /// the schema).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        self.write_json(&mut s);
        s
    }

    /// Writes the JSON object into `out` (aggregator embedding).
    pub fn write_json(&self, out: &mut String) {
        let co = &self.core;
        out.push_str("{\"core\":{");
        write_fields(
            out,
            &[
                ("lhm", co.lhm),
                ("lhm_peak", co.lhm_peak),
                ("lhm_max", co.lhm_max),
                ("probes_sent", co.probes_sent),
                ("probes_failed", co.probes_failed),
                ("indirect_probes_sent", co.indirect_probes_sent),
                ("suspicions_raised", co.suspicions_raised),
                ("refutations", co.refutations),
                ("failures_declared", co.failures_declared),
                ("flaps", co.flaps),
                ("broadcast_queue_depth", co.broadcast_queue_depth),
                ("broadcast_queue_peak", co.broadcast_queue_peak),
                ("delta_syncs", co.delta_syncs),
                ("delta_sync_bytes", co.delta_sync_bytes),
                ("full_sync_fallbacks", co.full_sync_fallbacks),
            ],
        );
        out.push_str(",\"probe_rtt_us\":");
        write_hist_json(out, &co.probe_rtt);
        out.push_str(",\"suspicion_lifetime_us\":");
        write_hist_json(out, &co.suspicion_lifetime);
        out.push_str("},\"io\":{");
        let io = &self.io;
        write_fields(
            out,
            &[
                ("send_syscalls", io.send_syscalls),
                ("sendmmsg_batches", io.sendmmsg_batches),
                ("datagrams_sent", io.datagrams_sent),
                ("datagram_bytes", io.datagram_bytes),
                ("send_errors", io.send_errors),
                ("would_block_drops", io.would_block_drops),
                ("recv_syscalls", io.recv_syscalls),
                ("datagrams_received", io.datagrams_received),
                ("recv_truncations", io.recv_truncations),
                ("streams_sent", io.streams_sent),
                ("stream_bytes", io.stream_bytes),
                ("wakeups", io.wakeups),
            ],
        );
        out.push_str("}}");
    }
}

fn write_fields(out: &mut String, fields: &[(&str, u64)]) {
    use std::fmt::Write as _;
    for (i, (name, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
}

/// Writes a histogram as a JSON object: summary stats, the standard
/// quantiles, and the sparse buckets (`null` quantiles when empty).
pub(crate) fn write_hist_json(out: &mut String, h: &Histogram) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
        h.count(),
        h.sum(),
        h.min(),
        h.max()
    );
    for (name, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9)] {
        match h.quantile(p) {
            Some(v) if v.is_finite() => {
                let _ = write!(out, ",\"{name}\":{v:.1}");
            }
            _ => {
                let _ = write!(out, ",\"{name}\":null");
            }
        }
    }
    out.push_str(",\"buckets\":[");
    for (i, (idx, c)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{idx},{c}]");
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.core.lhm = 2;
        s.core.lhm_peak = 4;
        s.core.lhm_max = 8;
        s.core.probes_sent = 100;
        s.core.probes_failed = 3;
        s.core.suspicions_raised = 2;
        s.core.flaps = 1;
        s.core.delta_syncs = 12;
        s.core.delta_sync_bytes = 3456;
        s.core.full_sync_fallbacks = 2;
        for v in [900u64, 1200, 250_000] {
            s.core.probe_rtt.record(v);
        }
        s.core.suspicion_lifetime.record(4_000_000);
        s.io.datagrams_sent = 321;
        s.io.datagram_bytes = 65_000;
        s.io.wakeups = 77;
        s
    }

    #[test]
    fn binary_round_trip() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(Snapshot::decode(&bytes), Ok(s));
        // The default (all-zero) snapshot round-trips too.
        let d = Snapshot::default();
        assert_eq!(Snapshot::decode(&d.encode()), Ok(d));
    }

    #[test]
    fn decode_rejects_corruption() {
        let s = sample();
        let bytes = s.encode();
        assert!(Snapshot::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(Snapshot::decode(b"XXXX").is_err());
        let mut wrong_ver = bytes.clone();
        wrong_ver[4] = 99;
        assert!(Snapshot::decode(&wrong_ver).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Snapshot::decode(&trailing).is_err());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"probes_sent\":100"));
        assert!(j.contains("\"probe_rtt_us\":{\"count\":3"));
        assert!(j.contains("\"wakeups\":77"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Empty histograms print null quantiles, not NaN.
        let empty = Snapshot::default().to_json();
        assert!(empty.contains("\"p50\":null"));
        assert!(!empty.contains("NaN"));
    }
}
