//! Offline shim for the `parking_lot` crate: a `Mutex` whose `lock()`
//! returns the guard directly (no `Result`), built on `std::sync::Mutex`
//! with poison recovery.

use std::fmt;

/// Mutex guard alias (the std guard, obtained infallibly).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning (a panicking holder
    /// does not permanently wedge the lock).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_infallible_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
