//! Offline shim for the `crossbeam` crate: an unbounded MPMC channel
//! built on `Mutex<VecDeque>` + `Condvar`, and scoped threads built on
//! `std::thread::scope`. Only the operations the workspace uses are
//! provided (`send`, `recv`, `recv_timeout`, `try_recv`, `try_iter`;
//! `thread::scope`, `Scope::spawn`, `ScopedJoinHandle::join`).

/// Scoped threads: spawn borrowing threads that are guaranteed joined
/// before the scope returns.
///
/// Mirrors `crossbeam::thread` (the closure receives `&Scope` so nested
/// spawns work, and `scope` returns a `Result` capturing child panics),
/// implemented on `std::thread::scope` — which postdates crossbeam's
/// API and makes the shim a thin wrapper.
pub mod thread {
    use std::any::Any;

    /// A scope handle for spawning borrowing threads.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its panic payload
        /// as the error if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from outside the scope. The
        /// closure receives the scope again (upstream signature) so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// every spawned thread is joined before `scope` returns. Returns
    /// `Err` with the first panic payload if any unjoined child thread
    /// panicked (like upstream crossbeam; `std::thread::scope` would
    /// resume the unwind instead).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn child_panic_surfaces_as_err() {
            let out = super::scope(|s| {
                s.spawn(|_| panic!("child failed"));
            });
            assert!(out.is_err());
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloning (as in
    /// upstream crossbeam) yields another consumer of the same queue:
    /// each item is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Error returned when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] / [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvError {
        /// Every sender is gone and the queue is drained.
        Disconnected,
        /// The timeout elapsed with the channel still empty.
        Timeout,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared
            .queue
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueues a value (never blocks; the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            lock(&self.shared).senders -= 1;
            self.shared.ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.shared);
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError::Disconnected);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|poison| poison.into_inner());
                state = guard;
            }
        }

        /// Drains currently queued values without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Iterator over values available right now.
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_iter_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<i32>>(), vec![1, 2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv(), Ok(42));
            t.join().unwrap();
            assert_eq!(rx.recv(), Err(RecvError::Disconnected));
        }
    }
}
