//! Offline shim for the `crossbeam` crate: an unbounded MPMC channel
//! built on `Mutex<VecDeque>` + `Condvar`. Only the operations the
//! workspace uses are provided (`send`, `recv`, `recv_timeout`,
//! `try_recv`, `try_iter`).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloning (as in
    /// upstream crossbeam) yields another consumer of the same queue:
    /// each item is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Error returned when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] / [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvError {
        /// Every sender is gone and the queue is drained.
        Disconnected,
        /// The timeout elapsed with the channel still empty.
        Timeout,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared
            .queue
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueues a value (never blocks; the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            lock(&self.shared).senders -= 1;
            self.shared.ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.shared);
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError::Disconnected);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|poison| poison.into_inner());
                state = guard;
            }
        }

        /// Drains currently queued values without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Iterator over values available right now.
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_iter_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<i32>>(), vec![1, 2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv(), Ok(42));
            t.join().unwrap();
            assert_eq!(rx.recv(), Err(RecvError::Disconnected));
        }
    }
}
