//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.9 API the project actually
//! uses: the [`Rng`]/[`RngExt`]/[`SeedableRng`] traits, integer/float
//! range sampling, and a deterministic [`rngs::StdRng`] (xoshiro256++
//! seeded with SplitMix64). Statistical quality is more than sufficient
//! for protocol sampling and the uniformity assertions in the test
//! suite; it is *not* a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full output
/// (the shim's stand-in for `rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
// lint: allow(panic_path) — `% span` cannot divide by zero: every caller asserts its range non-empty, making span ≥ 1
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // lint: allow(panic_path) — documented contract mirroring `rand`: sampling an empty range is a caller bug; wire-path callers guard `n > 0` first
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            // lint: allow(panic_path) — documented contract mirroring `rand`: sampling an empty range is a caller bug; wire-path callers guard `n > 0` first
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && hi.wrapping_sub(lo) == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // lint: allow(panic_path) — documented contract mirroring `rand`: sampling an empty range is a caller bug; wire-path callers guard `n > 0` first
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            // lint: allow(panic_path) — documented contract mirroring `rand`: sampling an empty range is a caller bug; wire-path callers guard `n > 0` first
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniformly random value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        // lint: allow(panic_path) — literal indices into the fixed `[u64; 4]` xoshiro state cannot go out of bounds
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let u = rng.random_range(0usize..=0);
            assert_eq!(u, 0);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
