//! Pins the poller shim's FFI surface independent of the net agent:
//! readable/writable readiness, timeout expiry, deregistration, oneshot
//! re-arming and spurious-wakeup tolerance all hold on real sockets.

use std::io::Write;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use polling::{Event, Events, Poller};

fn udp_pair() -> (UdpSocket, UdpSocket) {
    let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
    let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
    (a, b)
}

#[test]
fn readable_readiness_is_reported_with_the_registered_key() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(7)).expect("add");
    let mut events = Events::new();

    // Nothing pending: a bounded wait times out with zero events.
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(10)))
        .expect("wait");
    assert_eq!(n, 0);

    b.send_to(b"ping", a.local_addr().unwrap()).expect("send");
    let n = poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert_eq!(n, 1);
    let event = events.iter().next().expect("one event");
    assert_eq!(event.key, 7);
    assert!(event.readable);
    assert!(!event.writable);
}

#[test]
fn writable_readiness_is_immediate_on_a_fresh_socket() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::writable(3)).expect("add");
    let mut events = Events::new();
    let n = poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert_eq!(n, 1);
    let event = events.iter().next().expect("one event");
    assert_eq!(event.key, 3);
    assert!(event.writable);
}

#[test]
fn timeout_expires_when_nothing_is_ready() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(0)).expect("add");
    let mut events = Events::new();
    let start = Instant::now();
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(60)))
        .expect("wait");
    assert_eq!(n, 0);
    assert!(events.is_empty());
    assert!(
        start.elapsed() >= Duration::from_millis(40),
        "wait returned {:?} before the timeout",
        start.elapsed()
    );
}

#[test]
fn deregistered_source_is_silent_even_when_ready() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(1)).expect("add");
    b.send_to(b"ping", a.local_addr().unwrap()).expect("send");
    poller.delete(&a).expect("delete");
    let mut events = Events::new();
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(30)))
        .expect("wait");
    assert_eq!(n, 0, "a deleted source must not report readiness");
    // Deleting again (or modifying) is an error, not UB.
    assert_eq!(
        poller.delete(&a).unwrap_err().kind(),
        std::io::ErrorKind::NotFound
    );
    assert_eq!(
        poller.modify(&a, Event::readable(1)).unwrap_err().kind(),
        std::io::ErrorKind::NotFound
    );
}

#[test]
fn oneshot_interest_clears_until_rearmed() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(9)).expect("add");
    b.send_to(b"one", a.local_addr().unwrap()).expect("send");
    let mut events = Events::new();
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait"),
        1
    );
    // The datagram is still unread, but interest was consumed.
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait"),
        0,
        "oneshot interest must not re-report without a modify"
    );
    poller.modify(&a, Event::readable(9)).expect("rearm");
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait"),
        1,
        "level-triggered readiness must resurface after re-arming"
    );
}

#[test]
fn notify_wakes_a_future_wait_as_a_zero_event_spurious_wakeup() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(0)).expect("add");
    poller.notify().expect("notify");
    let mut events = Events::new();
    let start = Instant::now();
    // Wakes promptly (well inside the 5 s bound) with zero events.
    let n = poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
    assert_eq!(n, 0);
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "notify must preempt the timeout"
    );
    // The wakeup is consumed: the next wait honours its timeout again.
    let start = Instant::now();
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(60)))
        .expect("wait");
    assert_eq!(n, 0);
    assert!(start.elapsed() >= Duration::from_millis(40));
}

#[test]
fn notify_wakes_a_concurrent_wait_from_another_thread() {
    let (a, _b) = udp_pair();
    let poller = std::sync::Arc::new(Poller::new().expect("poller"));
    poller.add(&a, Event::readable(0)).expect("add");
    let waker = std::sync::Arc::clone(&poller);
    let waiter = std::thread::spawn(move || {
        let mut events = Events::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        (n, start.elapsed())
    });
    std::thread::sleep(Duration::from_millis(50));
    waker.notify().expect("notify");
    let (n, elapsed) = waiter.join().expect("join");
    assert_eq!(n, 0);
    assert!(elapsed < Duration::from_secs(5), "blocked wait never woke");
}

#[test]
fn duplicate_registration_is_rejected() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(0)).expect("add");
    assert_eq!(
        poller.add(&a, Event::readable(1)).unwrap_err().kind(),
        std::io::ErrorKind::AlreadyExists
    );
}

#[test]
fn tcp_accept_and_connect_readiness() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.set_nonblocking(true).expect("nonblocking");
    let poller = Poller::new().expect("poller");
    poller.add(&listener, Event::readable(42)).expect("add");
    let mut events = Events::new();

    // No pending connection yet.
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait"),
        0
    );

    let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait"),
        1,
        "pending connection must mark the listener readable"
    );
    assert_eq!(events.iter().next().unwrap().key, 42);
    let (server, _) = listener.accept().expect("accept");
    server.set_nonblocking(true).expect("nonblocking");

    // The accepted socket becomes readable once the client writes.
    poller.add(&server, Event::readable(43)).expect("add conn");
    client.write_all(b"hello").expect("write");
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut seen = false;
    while Instant::now() < deadline && !seen {
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("wait");
        seen = events.iter().any(|e| e.key == 43 && e.readable);
    }
    assert!(seen, "accepted connection never became readable");
}

#[test]
fn disarmed_interest_reports_nothing() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::none(5)).expect("add disarmed");
    b.send_to(b"ping", a.local_addr().unwrap()).expect("send");
    let mut events = Events::new();
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait"),
        0,
        "Event::none must keep the source registered but silent"
    );
    poller.modify(&a, Event::all(5)).expect("arm");
    let n = poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert!(n >= 1);
    let event = events.iter().next().unwrap();
    assert_eq!(event.key, 5);
    assert!(event.readable && event.writable);
}
