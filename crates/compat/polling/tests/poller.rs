//! Pins the poller shim's FFI surface independent of the net agent:
//! readable/writable readiness, timeout expiry, deregistration, oneshot
//! re-arming and spurious-wakeup tolerance all hold on real sockets.

use std::io::Write;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use polling::{Event, Events, Poller};

fn udp_pair() -> (UdpSocket, UdpSocket) {
    let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
    let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
    (a, b)
}

#[test]
fn readable_readiness_is_reported_with_the_registered_key() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(7)).expect("add");
    let mut events = Events::new();

    // Nothing pending: a bounded wait times out with zero events.
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(10)))
        .expect("wait");
    assert_eq!(n, 0);

    b.send_to(b"ping", a.local_addr().unwrap()).expect("send");
    let n = poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert_eq!(n, 1);
    let event = events.iter().next().expect("one event");
    assert_eq!(event.key, 7);
    assert!(event.readable);
    assert!(!event.writable);
}

#[test]
fn writable_readiness_is_immediate_on_a_fresh_socket() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::writable(3)).expect("add");
    let mut events = Events::new();
    let n = poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert_eq!(n, 1);
    let event = events.iter().next().expect("one event");
    assert_eq!(event.key, 3);
    assert!(event.writable);
}

#[test]
fn timeout_expires_when_nothing_is_ready() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(0)).expect("add");
    let mut events = Events::new();
    let start = Instant::now();
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(60)))
        .expect("wait");
    assert_eq!(n, 0);
    assert!(events.is_empty());
    assert!(
        start.elapsed() >= Duration::from_millis(40),
        "wait returned {:?} before the timeout",
        start.elapsed()
    );
}

#[test]
fn deregistered_source_is_silent_even_when_ready() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(1)).expect("add");
    b.send_to(b"ping", a.local_addr().unwrap()).expect("send");
    poller.delete(&a).expect("delete");
    let mut events = Events::new();
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(30)))
        .expect("wait");
    assert_eq!(n, 0, "a deleted source must not report readiness");
    // Deleting again (or modifying) is an error, not UB.
    assert_eq!(
        poller.delete(&a).unwrap_err().kind(),
        std::io::ErrorKind::NotFound
    );
    assert_eq!(
        poller.modify(&a, Event::readable(1)).unwrap_err().kind(),
        std::io::ErrorKind::NotFound
    );
}

#[test]
fn oneshot_interest_clears_until_rearmed() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(9)).expect("add");
    b.send_to(b"one", a.local_addr().unwrap()).expect("send");
    let mut events = Events::new();
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait"),
        1
    );
    // The datagram is still unread, but interest was consumed.
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait"),
        0,
        "oneshot interest must not re-report without a modify"
    );
    poller.modify(&a, Event::readable(9)).expect("rearm");
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait"),
        1,
        "level-triggered readiness must resurface after re-arming"
    );
}

#[test]
fn notify_wakes_a_future_wait_as_a_zero_event_spurious_wakeup() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(0)).expect("add");
    poller.notify().expect("notify");
    let mut events = Events::new();
    let start = Instant::now();
    // Wakes promptly (well inside the 5 s bound) with zero events.
    let n = poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
    assert_eq!(n, 0);
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "notify must preempt the timeout"
    );
    // The wakeup is consumed: the next wait honours its timeout again.
    let start = Instant::now();
    let n = poller
        .wait(&mut events, Some(Duration::from_millis(60)))
        .expect("wait");
    assert_eq!(n, 0);
    assert!(start.elapsed() >= Duration::from_millis(40));
}

#[test]
fn notify_wakes_a_concurrent_wait_from_another_thread() {
    let (a, _b) = udp_pair();
    let poller = std::sync::Arc::new(Poller::new().expect("poller"));
    poller.add(&a, Event::readable(0)).expect("add");
    let waker = std::sync::Arc::clone(&poller);
    let waiter = std::thread::spawn(move || {
        let mut events = Events::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        (n, start.elapsed())
    });
    std::thread::sleep(Duration::from_millis(50));
    waker.notify().expect("notify");
    let (n, elapsed) = waiter.join().expect("join");
    assert_eq!(n, 0);
    assert!(elapsed < Duration::from_secs(5), "blocked wait never woke");
}

#[test]
fn duplicate_registration_is_rejected() {
    let (a, _b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::readable(0)).expect("add");
    assert_eq!(
        poller.add(&a, Event::readable(1)).unwrap_err().kind(),
        std::io::ErrorKind::AlreadyExists
    );
}

#[test]
fn tcp_accept_and_connect_readiness() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.set_nonblocking(true).expect("nonblocking");
    let poller = Poller::new().expect("poller");
    poller.add(&listener, Event::readable(42)).expect("add");
    let mut events = Events::new();

    // No pending connection yet.
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait"),
        0
    );

    let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait"),
        1,
        "pending connection must mark the listener readable"
    );
    assert_eq!(events.iter().next().unwrap().key, 42);
    let (server, _) = listener.accept().expect("accept");
    server.set_nonblocking(true).expect("nonblocking");

    // The accepted socket becomes readable once the client writes.
    poller.add(&server, Event::readable(43)).expect("add conn");
    client.write_all(b"hello").expect("write");
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut seen = false;
    while Instant::now() < deadline && !seen {
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .expect("wait");
        seen = events.iter().any(|e| e.key == 43 && e.readable);
    }
    assert!(seen, "accepted connection never became readable");
}

#[test]
fn disarmed_interest_reports_nothing() {
    let (a, b) = udp_pair();
    let poller = Poller::new().expect("poller");
    poller.add(&a, Event::none(5)).expect("add disarmed");
    b.send_to(b"ping", a.local_addr().unwrap()).expect("send");
    let mut events = Events::new();
    assert_eq!(
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait"),
        0,
        "Event::none must keep the source registered but silent"
    );
    poller.modify(&a, Event::all(5)).expect("arm");
    let n = poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert!(n >= 1);
    let event = events.iter().next().unwrap();
    assert_eq!(event.key, 5);
    assert!(event.readable && event.writable);
}

// ---------------------------------------------------------------------
// Batched datagram I/O (the `mmsg` extension)
// ---------------------------------------------------------------------

use polling::mmsg::{RecvRing, SendBatch};
use std::os::unix::io::AsRawFd;

#[test]
fn sendmmsg_batch_delivers_every_datagram() {
    let (a, b) = udp_pair();
    let to = b.local_addr().unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // One arena, three payloads of different lengths.
    let arena: Vec<u8> = (0u8..32).collect();
    let pkts = vec![(to, 0..4), (to, 4..5), (to, 5..32)];
    let mut batch = SendBatch::new(16);
    let sent = batch.send(a.as_raw_fd(), &arena, &pkts).expect("sendmmsg");
    assert_eq!(sent, 3);

    let mut buf = [0u8; 64];
    for range in [0..4, 4..5, 5..32] {
        let (n, from) = b.recv_from(&mut buf).expect("recv");
        assert_eq!(&buf[..n], &arena[range]);
        assert_eq!(from, a.local_addr().unwrap());
    }
}

#[test]
fn sendmmsg_batch_of_one_and_empty_batch() {
    let (a, b) = udp_pair();
    let to = b.local_addr().unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut batch = SendBatch::new(4);

    assert_eq!(batch.send(a.as_raw_fd(), b"xy", &[]).expect("empty"), 0);
    let sent = batch
        .send(a.as_raw_fd(), b"xy", &[(to, 0..2)])
        .expect("single");
    assert_eq!(sent, 1);
    let mut buf = [0u8; 8];
    let (n, _) = b.recv_from(&mut buf).expect("recv");
    assert_eq!(&buf[..n], b"xy");
}

#[test]
fn sendmmsg_caps_at_table_size_and_reports_the_tail() {
    let (a, b) = udp_pair();
    let to = b.local_addr().unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let arena = [7u8; 6];
    let pkts: Vec<_> = (0..6).map(|i| (to, i..i + 1)).collect();
    let mut batch = SendBatch::new(4);
    assert_eq!(batch.max_len(), 4);
    // Only the first max_len entries go out; the caller resubmits the rest.
    let sent = batch.send(a.as_raw_fd(), &arena, &pkts).expect("send");
    assert_eq!(sent, 4);
    let sent = batch
        .send(a.as_raw_fd(), &arena, &pkts[4..])
        .expect("send tail");
    assert_eq!(sent, 2);
    let mut buf = [0u8; 8];
    for _ in 0..6 {
        b.recv_from(&mut buf).expect("recv");
    }
}

#[test]
fn recvmmsg_burst_fills_ring_with_sources_and_payloads() {
    let (a, b) = udp_pair();
    let dst = a.local_addr().unwrap();
    for i in 0u8..5 {
        b.send_to(&[i; 3], dst).expect("send");
    }
    // Loopback delivery is asynchronous; poll until all five arrived.
    let mut ring = RecvRing::new(8, 64);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut n = 0;
    while n < 5 {
        assert!(Instant::now() < deadline, "datagrams never arrived");
        match ring.recv(a.as_raw_fd()) {
            Ok(k) if k > 0 => n = k, // one burst: all or a prefix
            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert_eq!(n, 5);
    for i in 0..5 {
        let (from, payload) = ring.datagram(i).expect("datagram");
        assert_eq!(from, b.local_addr().unwrap());
        assert_eq!(payload, &[i as u8; 3]);
        assert!(!ring.truncated(i));
    }
    assert!(ring.datagram(5).is_none(), "past the filled count");
}

#[test]
fn recvmmsg_on_drained_socket_is_would_block() {
    let (a, _b) = udp_pair();
    a.set_nonblocking(true).unwrap();
    let mut ring = RecvRing::new(4, 64);
    let err = ring.recv(a.as_raw_fd()).expect_err("empty socket");
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
}

#[test]
fn recvmmsg_flags_truncated_datagrams() {
    let (a, b) = udp_pair();
    let dst = a.local_addr().unwrap();
    b.send_to(&[9u8; 40], dst).expect("send long");
    let mut ring = RecvRing::new(2, 8); // slot shorter than the datagram
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert!(Instant::now() < deadline, "datagram never arrived");
        match ring.recv(a.as_raw_fd()) {
            Ok(n) if n > 0 => break,
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert!(ring.truncated(0));
    let (_, payload) = ring.datagram(0).expect("head still readable");
    assert_eq!(payload, &[9u8; 8]);
}

#[test]
fn mmsg_syscalls_feed_the_stats_counters() {
    let (a, b) = udp_pair();
    let send0 = polling::stats::sendmmsg_calls();
    let recv0 = polling::stats::recvmmsg_calls();
    let total0 = polling::stats::syscalls();
    let mut batch = SendBatch::new(4);
    batch
        .send(a.as_raw_fd(), b"z", &[(b.local_addr().unwrap(), 0..1)])
        .expect("send");
    let mut ring = RecvRing::new(2, 16);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert!(Instant::now() < deadline, "datagram never arrived");
        match ring.recv(b.as_raw_fd()) {
            Ok(n) if n > 0 => break,
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert!(polling::stats::sendmmsg_calls() > send0);
    assert!(polling::stats::recvmmsg_calls() > recv0);
    assert!(polling::stats::syscalls() > total0);
}
