//! Offline shim for the `polling` crate: portable readiness polling
//! over `poll(2)` through minimal `extern "C"` declarations (the build
//! environment has no crates.io access, so the real crate cannot be
//! pulled; this mirrors the subset of its API the workspace uses, so
//! swapping in the upstream crate is a manifest-only change).
//!
//! Covered surface:
//!
//! * [`Poller`] — `new`, `add`, `modify`, `delete`, `wait`, `notify`;
//! * [`Event`] — `readable` / `writable` / `all` / `none` constructors
//!   plus the `key` / `readable` / `writable` fields;
//! * [`Events`] — the reusable buffer `wait` fills.
//!
//! Semantics follow upstream `polling`:
//!
//! * **Oneshot**: once an event for a source is delivered, that
//!   source's interest is cleared; re-arm it with [`Poller::modify`]
//!   before the next [`Poller::wait`]. The OS-level mechanism is
//!   level-triggered `poll(2)`, so a source that became ready while
//!   disarmed is still reported as soon as it is re-armed — readiness
//!   is never lost, only masked.
//! * **Spurious wakeups are allowed**: `wait` may return zero events
//!   (a [`Poller::notify`], a signal interrupting the syscall, or a
//!   source deleted between snapshot and report). Callers must treat
//!   readiness as a hint and be prepared for `WouldBlock`.
//! * **Error conditions** (`POLLERR`/`POLLHUP`/`POLLNVAL`) are
//!   reported as readable-and/or-writable per the registered interest,
//!   so a caller discovers the condition by attempting the I/O.
//!
//! Extension over upstream (used by the benchmark suite): the
//! [`stats`] module counts the syscalls the shim issues, so a
//! readiness-driven runtime can report syscalls per protocol cycle.

#![deny(missing_docs)]
#![cfg(unix)]

use std::collections::BTreeMap;
use std::io;
use std::os::raw::c_ulong;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Shim-global syscall counters (extension over upstream `polling`).
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static POLLS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static NOTIFIES: AtomicU64 = AtomicU64::new(0);
    pub(crate) static DRAINS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static SENDMMSGS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static RECVMMSGS: AtomicU64 = AtomicU64::new(0);

    /// Number of `poll(2)` syscalls issued by every [`crate::Poller`]
    /// in this process since start.
    pub fn polls() -> u64 {
        POLLS.load(Ordering::Relaxed)
    }

    /// Number of `sendmmsg(2)` syscalls issued by every
    /// [`crate::mmsg::SendBatch`] in this process since start.
    pub fn sendmmsg_calls() -> u64 {
        SENDMMSGS.load(Ordering::Relaxed)
    }

    /// Number of `recvmmsg(2)` syscalls issued by every
    /// [`crate::mmsg::RecvRing`] in this process since start.
    pub fn recvmmsg_calls() -> u64 {
        RECVMMSGS.load(Ordering::Relaxed)
    }

    /// Total syscalls issued by the shim itself: `poll(2)` waits,
    /// notify-pipe writes and drains, and batched datagram I/O
    /// (`sendmmsg(2)` / `recvmmsg(2)`). Socket I/O performed by the
    /// *caller* on ready sources is not counted.
    pub fn syscalls() -> u64 {
        POLLS.load(Ordering::Relaxed)
            + NOTIFIES.load(Ordering::Relaxed)
            + DRAINS.load(Ordering::Relaxed)
            + SENDMMSGS.load(Ordering::Relaxed)
            + RECVMMSGS.load(Ordering::Relaxed)
    }
}

/// The raw libc surface the shim stands on. Kept to the minimum the
/// implementation needs; all constants are Linux generic-ABI values
/// (`O_NONBLOCK` in particular differs on the BSDs), so refuse to
/// build anywhere else rather than misbehave silently.
mod sys {
    #[cfg(not(target_os = "linux"))]
    compile_error!("the polling shim's FFI constants assume the Linux ABI");
    use std::os::raw::{c_int, c_short, c_uint, c_ulong, c_void};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    pub const F_SETFD: c_int = 2;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const FD_CLOEXEC: c_int = 1;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const EINTR: i32 = 4;
    pub const EAGAIN: i32 = 11;
    pub const ENOSYS: i32 = 38;

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    pub const MSG_TRUNC: c_int = 0x20;
    pub const MSG_DONTWAIT: c_int = 0x40;

    pub const SOCK_STREAM: c_int = 1;
    pub const EINPROGRESS: i32 = 115;

    /// `struct iovec`: one gather/scatter segment.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub iov_base: *mut c_void,
        pub iov_len: usize,
    }

    /// `struct msghdr` (Linux layout; `repr(C)` reproduces the padding
    /// after `msg_namelen` and `msg_flags` on 64-bit targets).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MsgHdr {
        pub msg_name: *mut c_void,
        pub msg_namelen: c_uint,
        pub msg_iov: *mut IoVec,
        pub msg_iovlen: usize,
        pub msg_control: *mut c_void,
        pub msg_controllen: usize,
        pub msg_flags: c_int,
    }

    /// `struct mmsghdr`: one `msghdr` plus the kernel-reported byte
    /// count of the transferred datagram.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MmsgHdr {
        pub msg_hdr: MsgHdr,
        pub msg_len: c_uint,
    }

    // The workspace's entire raw-syscall surface. The static-analysis
    // pass (`cargo run -p xtask -- lint`) pins `extern "C"` to this
    // crate and these symbol names; extend its allowlist in
    // `crates/xtask/src/rules.rs` (and docs/ANALYSIS.md) when adding
    // a declaration here.
    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn sendmmsg(fd: c_int, msgvec: *mut MmsgHdr, vlen: c_uint, flags: c_int) -> c_int;
        pub fn recvmmsg(
            fd: c_int,
            msgvec: *mut MmsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void, // struct timespec *; always null here
        ) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    }
}

/// Interest in (or readiness of) a registered source, tagged with the
/// caller-chosen `key` that [`Poller::wait`] reports back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// Interest in (or presence of) read readiness.
    pub readable: bool,
    /// Interest in (or presence of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (the source stays registered but disarmed).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// A reusable buffer of events delivered by one [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Events {
        Events { inner: Vec::new() }
    }

    /// Iterates over the events of the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Drops all buffered events ([`Poller::wait`] does this itself).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last wait delivered no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[derive(Clone, Copy, Debug)]
struct Interest {
    key: usize,
    readable: bool,
    writable: bool,
}

/// A readiness poller over `poll(2)` with a self-pipe for wakeups.
///
/// Registration is keyed by file descriptor; `wait` snapshots the
/// interest set, issues one `poll(2)`, and reports ready sources as
/// [`Event`]s (clearing their interest — oneshot). [`Poller::notify`]
/// wakes a concurrent or future `wait` from any thread.
#[derive(Debug)]
pub struct Poller {
    interest: Mutex<BTreeMap<RawFd, Interest>>,
    notify_read: RawFd,
    notify_write: RawFd,
}

fn set_nonblocking_cloexec(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl(2) with F_SETFD/F_GETFL/F_SETFL takes no pointers;
    // an invalid `fd` yields EBADF, reported as an error below.
    unsafe {
        if sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC) < 0 {
            return Err(io::Error::last_os_error());
        }
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 || sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

impl Poller {
    /// Creates a poller (allocates the notification pipe).
    ///
    /// # Errors
    ///
    /// Fails if the pipe cannot be created or configured.
    pub fn new() -> io::Result<Poller> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live, writable array of exactly the two
        // c_ints pipe(2) fills.
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let [read_end, write_end] = fds;
        for fd in [read_end, write_end] {
            if let Err(e) = set_nonblocking_cloexec(fd) {
                // SAFETY: both fds came from the successful pipe(2)
                // call above and are owned by nobody else yet.
                unsafe {
                    sys::close(read_end);
                    sys::close(write_end);
                }
                return Err(e);
            }
        }
        Ok(Poller {
            interest: Mutex::new(BTreeMap::new()),
            notify_read: read_end,
            notify_write: write_end,
        })
    }

    /// Registers a source with an initial interest.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if the source is
    /// already registered.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut map = self.interest.lock().expect("poller lock poisoned");
        if map.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "source already registered",
            ));
        }
        map.insert(
            fd,
            Interest {
                key: interest.key,
                readable: interest.readable,
                writable: interest.writable,
            },
        );
        Ok(())
    }

    /// Replaces a registered source's interest (the oneshot re-arm).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the source was never
    /// added or was deleted.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut map = self.interest.lock().expect("poller lock poisoned");
        match map.get_mut(&fd) {
            Some(entry) => {
                *entry = Interest {
                    key: interest.key,
                    readable: interest.readable,
                    writable: interest.writable,
                };
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    /// Deregisters a source. Events for it are no longer delivered
    /// (even ones pending inside a concurrent `wait`).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the source was never
    /// added or was already deleted.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut map = self.interest.lock().expect("poller lock poisoned");
        match map.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    /// Blocks until at least one armed source is ready, a
    /// [`Poller::notify`] arrives, or `timeout` expires (`None` waits
    /// indefinitely). Fills `events` with ready sources and clears
    /// their interest (oneshot). Returns the number of events; `0`
    /// means timeout or spurious wakeup.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures other than `EINTR` (which is
    /// reported as a spurious zero-event wakeup).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(8);
        fds.push(sys::PollFd {
            fd: self.notify_read,
            events: sys::POLLIN,
            revents: 0,
        });
        {
            let map = self.interest.lock().expect("poller lock poisoned");
            for (&fd, interest) in map.iter() {
                let mut mask = 0;
                if interest.readable {
                    mask |= sys::POLLIN;
                }
                if interest.writable {
                    mask |= sys::POLLOUT;
                }
                if mask != 0 {
                    fds.push(sys::PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                }
            }
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            // lint: allow(lossy_cast) — clamped to i32::MAX on the previous token
            Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
        };
        // SAFETY: `fds` is a live Vec of `fds.len()` PollFd entries,
        // mutably borrowed for the duration of the call; poll(2)
        // writes only within that range.
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        stats::POLLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(sys::EINTR) {
                return Ok(0); // signal: a legal spurious wakeup
            }
            return Err(err);
        }
        if fds[0].revents != 0 {
            self.drain_notifications();
        }
        let mut map = self.interest.lock().expect("poller lock poisoned");
        for pfd in &fds[1..] {
            if pfd.revents == 0 {
                continue;
            }
            // A source deleted (or re-registered) while poll ran is
            // simply not reported / reported against its current
            // interest; level-triggered poll re-reports real readiness
            // on the next wait, so nothing is lost.
            let Some(interest) = map.get_mut(&pfd.fd) else {
                continue;
            };
            let failed = pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            let readable = interest.readable && (pfd.revents & sys::POLLIN != 0 || failed);
            let writable = interest.writable && (pfd.revents & sys::POLLOUT != 0 || failed);
            if readable || writable {
                events.inner.push(Event {
                    key: interest.key,
                    readable,
                    writable,
                });
                interest.readable = false; // oneshot: disarm until modify
                interest.writable = false;
            }
        }
        Ok(events.len())
    }

    /// Wakes one concurrent or future [`Poller::wait`] from any thread.
    ///
    /// # Errors
    ///
    /// Propagates pipe write failures (a full pipe is *not* a failure:
    /// a wakeup is already pending).
    pub fn notify(&self) -> io::Result<()> {
        let byte = [1u8];
        stats::NOTIFIES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // SAFETY: `byte` is a live 1-byte buffer and `notify_write` is
        // the pipe fd this poller owns; write(2) reads exactly 1 byte.
        let rc = unsafe { sys::write(self.notify_write, byte.as_ptr().cast(), 1) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    fn drain_notifications(&self) {
        let mut sink = [0u8; 64];
        loop {
            stats::DRAINS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // SAFETY: `sink` is a live, writable buffer of the length
            // passed; `notify_read` is the pipe fd this poller owns.
            let rc = unsafe { sys::read(self.notify_read, sink.as_mut_ptr().cast(), sink.len()) };
            if rc <= 0 || (rc as usize) < sink.len() {
                break; // empty (EAGAIN), closed, or fully drained
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the poller exclusively owns both pipe fds; after
        // drop nothing can use them again.
        unsafe {
            sys::close(self.notify_read);
            sys::close(self.notify_write);
        }
    }
}

/// Batched UDP datagram I/O over `sendmmsg(2)` / `recvmmsg(2)`
/// (extension over upstream `polling`).
///
/// Both types are reusable *batch tables*: preallocated `mmsghdr` /
/// `iovec` / sockaddr arrays that one syscall transfers many datagrams
/// through. The pointer tables are rebuilt from the current buffer
/// addresses on every call, so the types are safe to move between
/// construction and use (nothing is self-referential across calls).
///
/// Kernels without the syscalls (pre-3.0, or seccomp-filtered) surface
/// `ENOSYS` as [`io::ErrorKind::Unsupported`]; callers are expected to
/// fall back to single-shot `send_to` / `recv_from` on that error.
pub mod mmsg {
    use super::{stats, sys};
    use std::io;
    use std::os::raw::c_uint;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
    use std::ops::Range;
    use std::os::unix::io::RawFd;
    use std::ptr;
    use std::sync::atomic::Ordering;

    /// Bytes of the largest sockaddr the shim handles
    /// (`sockaddr_in6`, 28 bytes).
    const SOCKADDR_MAX: usize = 28;

    /// A raw sockaddr slot, aligned for in-place `sockaddr_in` /
    /// `sockaddr_in6` access (shared with [`crate::sock`]).
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub(crate) struct SockAddr {
        pub(crate) data: [u8; SOCKADDR_MAX],
        pub(crate) len: u32,
    }

    impl SockAddr {
        pub(crate) const ZERO: SockAddr = SockAddr {
            data: [0; SOCKADDR_MAX],
            len: 0,
        };

        /// Encodes `addr` into Linux `sockaddr_in` / `sockaddr_in6`
        /// wire layout (family native-endian, port big-endian).
        // lint: allow(panic_path) — all slice ranges are literal and within the SOCKADDR_MAX (28-byte) array; exercised by every send in the test suite
        pub(crate) fn encode(addr: SocketAddr) -> SockAddr {
            let mut s = SockAddr::ZERO;
            match addr {
                SocketAddr::V4(v4) => {
                    s.data[0..2].copy_from_slice(&sys::AF_INET.to_ne_bytes());
                    s.data[2..4].copy_from_slice(&v4.port().to_be_bytes());
                    s.data[4..8].copy_from_slice(&v4.ip().octets());
                    s.len = 16;
                }
                SocketAddr::V6(v6) => {
                    s.data[0..2].copy_from_slice(&sys::AF_INET6.to_ne_bytes());
                    s.data[2..4].copy_from_slice(&v6.port().to_be_bytes());
                    s.data[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                    s.data[8..24].copy_from_slice(&v6.ip().octets());
                    s.data[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                    s.len = 28;
                }
            }
            s
        }

        /// Decodes a kernel-filled sockaddr; `None` for families the
        /// shim does not speak (the caller drops the datagram).
        fn decode(&self, namelen: u32) -> Option<SocketAddr> {
            let family = u16::from_ne_bytes([self.data[0], self.data[1]]);
            let port = u16::from_be_bytes([self.data[2], self.data[3]]);
            if family == sys::AF_INET && namelen >= 8 {
                let octets: [u8; 4] = self.data[4..8].try_into().ok()?;
                Some(SocketAddr::new(IpAddr::V4(Ipv4Addr::from(octets)), port))
            } else if family == sys::AF_INET6 && namelen >= 28 {
                let octets: [u8; 16] = self.data[8..24].try_into().ok()?;
                Some(SocketAddr::new(IpAddr::V6(Ipv6Addr::from(octets)), port))
            } else {
                None
            }
        }
    }

    fn map_errno(err: io::Error) -> io::Error {
        match err.raw_os_error() {
            Some(sys::EAGAIN) => io::Error::new(io::ErrorKind::WouldBlock, err),
            Some(sys::ENOSYS) => io::Error::new(io::ErrorKind::Unsupported, err),
            _ => err,
        }
    }

    /// A reusable `sendmmsg(2)` batch table: many datagrams, each a
    /// contiguous slice of one caller-held arena, sent with one
    /// syscall.
    ///
    /// The arena and the `(destination, byte-range)` entries are passed
    /// per call; the table only holds the preallocated FFI arrays, so
    /// one `SendBatch` serves every flush of a socket's lifetime.
    pub struct SendBatch {
        addrs: Vec<SockAddr>,
        iovs: Vec<sys::IoVec>,
        hdrs: Vec<sys::MmsgHdr>,
        max: usize,
    }

    impl std::fmt::Debug for SendBatch {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SendBatch").field("max", &self.max).finish()
        }
    }

    // SAFETY: the raw pointer tables (`iovs`, `hdrs`) alias only the
    // struct's own buffers and are rebuilt from scratch on every call,
    // so moving the table between threads between calls is sound.
    unsafe impl Send for SendBatch {}

    impl SendBatch {
        /// A table that sends at most `max` datagrams per syscall
        /// (callers chunk longer batches).
        pub fn new(max: usize) -> SendBatch {
            let max = max.max(1);
            SendBatch {
                addrs: Vec::with_capacity(max),
                iovs: Vec::with_capacity(max),
                hdrs: Vec::with_capacity(max),
                max,
            }
        }

        /// Maximum datagrams one [`SendBatch::send`] transfers.
        pub fn max_len(&self) -> usize {
            self.max
        }

        /// Sends `pkts` (up to [`SendBatch::max_len`] of them) in one
        /// `sendmmsg(2)`; each entry is a destination plus the byte
        /// range of its payload inside `arena`. Returns how many
        /// datagrams the kernel accepted — the *tail* (`pkts[n..]`)
        /// remains unsent and should be retried or resubmitted.
        ///
        /// An empty `pkts` is a no-op returning `Ok(0)`.
        ///
        /// # Errors
        ///
        /// `WouldBlock` if the socket's send buffer is full before the
        /// first datagram, [`io::ErrorKind::Unsupported`] if the kernel
        /// lacks the syscall, otherwise the raw OS error. An error
        /// always means *zero* datagrams of this call were sent.
        ///
        /// # Panics
        ///
        /// Panics if a range reaches outside `arena`.
        // lint: allow(panic_path) — documented contract: ranges come from the driver's deferred batch, recorded against the very arena passed here; `pkts[..n]` is bounded by `n = min(len, max)` and the indexed loops stay below the lengths pushed just above
        pub fn send(
            &mut self,
            fd: RawFd,
            arena: &[u8],
            pkts: &[(SocketAddr, Range<usize>)],
        ) -> io::Result<usize> {
            if pkts.is_empty() {
                return Ok(0);
            }
            let n = pkts.len().min(self.max);
            self.addrs.clear();
            self.iovs.clear();
            self.hdrs.clear();
            for (to, range) in &pkts[..n] {
                self.addrs.push(SockAddr::encode(*to));
                self.iovs.push(sys::IoVec {
                    // sendmmsg never writes through iov_base; the cast
                    // to *mut is an FFI-signature formality.
                    iov_base: arena[range.clone()].as_ptr() as *mut _,
                    iov_len: range.len(),
                });
            }
            for i in 0..n {
                self.hdrs.push(sys::MmsgHdr {
                    msg_hdr: sys::MsgHdr {
                        msg_name: self.addrs[i].data.as_ptr() as *mut _,
                        msg_namelen: self.addrs[i].len,
                        msg_iov: &mut self.iovs[i],
                        msg_iovlen: 1,
                        msg_control: ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                });
            }
            stats::SENDMMSGS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `hdrs` holds exactly `n` entries whose name/iov
            // pointers were rebuilt just above from `self.addrs` /
            // `self.iovs` / the caller's arena, all of which outlive
            // the call; sendmmsg(2) only reads through them.
            let rc = unsafe {
                // lint: allow(lossy_cast) — n ≤ the table's max (caller-chunked), far below c_uint::MAX
                sys::sendmmsg(fd, self.hdrs.as_mut_ptr(), n as c_uint, sys::MSG_DONTWAIT)
            };
            if rc < 0 {
                return Err(map_errno(io::Error::last_os_error()));
            }
            Ok(rc as usize)
        }
    }

    /// A reusable `recvmmsg(2)` receive ring: a preallocated block of
    /// fixed-size buffers that one syscall fills with up to a burst of
    /// datagrams, exposed afterwards as borrowed `(source, payload)`
    /// slices — no per-datagram allocation or copy.
    pub struct RecvRing {
        bufs: Vec<u8>,
        addrs: Vec<SockAddr>,
        hdrs: Vec<sys::MmsgHdr>,
        iovs: Vec<sys::IoVec>,
        slots: usize,
        slot_len: usize,
        filled: usize,
    }

    impl std::fmt::Debug for RecvRing {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RecvRing")
                .field("slots", &self.slots)
                .field("slot_len", &self.slot_len)
                .field("filled", &self.filled)
                .finish()
        }
    }

    // SAFETY: same argument as [`SendBatch`] — no pointer survives
    // across calls, so the ring may move between threads between calls.
    unsafe impl Send for RecvRing {}

    impl RecvRing {
        /// A ring of `slots` buffers of `slot_len` bytes each (a
        /// datagram longer than `slot_len` is truncated and flagged —
        /// see [`RecvRing::truncated`]).
        pub fn new(slots: usize, slot_len: usize) -> RecvRing {
            let slots = slots.max(1);
            let slot_len = slot_len.max(1);
            RecvRing {
                bufs: vec![0u8; slots * slot_len],
                addrs: vec![SockAddr::ZERO; slots],
                hdrs: Vec::with_capacity(slots),
                iovs: Vec::with_capacity(slots),
                slots,
                slot_len,
                filled: 0,
            }
        }

        /// Number of buffer slots (the per-syscall burst bound).
        pub fn slots(&self) -> usize {
            self.slots
        }

        /// Receives up to [`RecvRing::slots`] datagrams in one
        /// `recvmmsg(2)`, replacing the previous burst. Returns how
        /// many slots were filled; read them back with
        /// [`RecvRing::datagram`].
        ///
        /// # Errors
        ///
        /// `WouldBlock` when the socket is drained,
        /// [`io::ErrorKind::Unsupported`] if the kernel lacks the
        /// syscall, otherwise the raw OS error.
        pub fn recv(&mut self, fd: RawFd) -> io::Result<usize> {
            self.filled = 0;
            self.hdrs.clear();
            self.iovs.clear();
            for i in 0..self.slots {
                self.addrs[i] = SockAddr::ZERO;
                self.iovs.push(sys::IoVec {
                    iov_base: self.bufs[i * self.slot_len..].as_mut_ptr() as *mut _,
                    iov_len: self.slot_len,
                });
            }
            for i in 0..self.slots {
                self.hdrs.push(sys::MmsgHdr {
                    msg_hdr: sys::MsgHdr {
                        msg_name: self.addrs[i].data.as_mut_ptr() as *mut _,
                        // lint: allow(lossy_cast) — constant 28, fits any sockaddr length field
                        msg_namelen: SOCKADDR_MAX as u32,
                        msg_iov: &mut self.iovs[i],
                        msg_iovlen: 1,
                        msg_control: ptr::null_mut(),
                        msg_controllen: 0,
                        msg_flags: 0,
                    },
                    msg_len: 0,
                });
            }
            stats::RECVMMSGS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `hdrs` holds exactly `slots` entries whose
            // name/iov pointers target `self.addrs` / `self.bufs`
            // slots that live (and stay unaliased) until the next
            // `recv` call; recvmmsg(2) writes only within the
            // advertised lengths.
            let rc = unsafe {
                sys::recvmmsg(
                    fd,
                    self.hdrs.as_mut_ptr(),
                    // lint: allow(lossy_cast) — slot count is a small bounded table size
                    self.slots as c_uint,
                    sys::MSG_DONTWAIT,
                    ptr::null_mut(),
                )
            };
            if rc < 0 {
                return Err(map_errno(io::Error::last_os_error()));
            }
            self.filled = rc as usize;
            Ok(self.filled)
        }

        /// The `i`-th datagram of the last burst as a borrowed payload
        /// slice plus its source address. `None` past the filled count
        /// or for a source family the shim does not speak.
        pub fn datagram(&self, i: usize) -> Option<(SocketAddr, &[u8])> {
            if i >= self.filled {
                return None;
            }
            let hdr = &self.hdrs[i];
            let from = self.addrs[i].decode(hdr.msg_hdr.msg_namelen)?;
            let len = (hdr.msg_len as usize).min(self.slot_len);
            let start = i * self.slot_len;
            Some((from, &self.bufs[start..start + len]))
        }

        /// Whether the `i`-th datagram of the last burst was longer
        /// than a slot and lost its tail (`MSG_TRUNC`).
        pub fn truncated(&self, i: usize) -> bool {
            i < self.filled && self.hdrs[i].msg_hdr.msg_flags & sys::MSG_TRUNC != 0
        }
    }
}

/// Nonblocking TCP connect initiation (extension over upstream
/// `polling`): the one piece of stream setup std does not expose
/// without blocking. Kept here so every raw syscall in the workspace
/// lives in this shim (the `swim-lint` `ffi` rule enforces that).
pub mod sock {
    use super::{set_nonblocking_cloexec, sys};
    use crate::mmsg::SockAddr;
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::raw::c_int;
    use std::os::unix::io::FromRawFd;

    /// Starts a nonblocking TCP connect to `to`. Returns the stream
    /// plus whether the connect already completed (loopback often
    /// does); if not, write readiness signals completion and
    /// [`TcpStream::take_error`] (`SO_ERROR`) reports the outcome.
    ///
    /// # Errors
    ///
    /// Fails if socket creation, nonblocking configuration, or the
    /// connect initiation itself fails with anything but
    /// `EINPROGRESS`.
    pub fn connect_stream(to: SocketAddr) -> io::Result<(TcpStream, bool)> {
        let family = match to {
            SocketAddr::V4(_) => c_int::from(sys::AF_INET),
            SocketAddr::V6(_) => c_int::from(sys::AF_INET6),
        };
        // SAFETY: socket(2) takes no pointers; any fd it returns is
        // owned here until handed to the TcpStream below.
        let fd = unsafe { sys::socket(family, sys::SOCK_STREAM, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        if let Err(err) = set_nonblocking_cloexec(fd) {
            // SAFETY: `fd` came from the successful socket(2) call
            // above and nothing else owns it.
            unsafe { sys::close(fd) };
            return Err(err);
        }
        let sa = SockAddr::encode(to);
        // SAFETY: `sa.data` is a live, properly aligned sockaddr
        // buffer of at least `sa.len` bytes (SockAddr::encode fills
        // the Linux sockaddr_in / sockaddr_in6 layout), and the
        // kernel only reads from it.
        let rc = unsafe { sys::connect(fd, sa.data.as_ptr().cast(), sa.len) };
        let connected = if rc == 0 {
            true
        } else {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(sys::EINPROGRESS) {
                false
            } else {
                // SAFETY: as above — `fd` is owned and unshared.
                unsafe { sys::close(fd) };
                return Err(err);
            }
        };
        // SAFETY: `fd` is a freshly created, successfully configured
        // socket owned by nobody else; the TcpStream takes ownership
        // (and closes it on drop).
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        Ok((stream, connected))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::{Read as _, Write as _};
        use std::net::TcpListener;

        #[test]
        fn connects_to_local_listener() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind listener");
            let addr = listener.local_addr().expect("listener addr");
            let (mut stream, _connected) = connect_stream(addr).expect("initiate connect");
            let (mut accepted, _) = listener.accept().expect("accept");
            accepted.write_all(b"ok").expect("write");
            stream.set_nonblocking(false).expect("blocking mode");
            let mut buf = [0u8; 2];
            stream.read_exact(&mut buf).expect("read");
            assert_eq!(&buf, b"ok");
        }

        #[test]
        fn connect_to_dead_port_fails_eventually() {
            // Bind-then-drop gives a port with (very likely) no
            // listener; the failure may surface at initiation or via
            // SO_ERROR after write readiness.
            let addr = {
                let sock = TcpListener::bind("127.0.0.1:0").expect("bind probe");
                sock.local_addr().expect("probe addr")
            };
            match connect_stream(addr) {
                Err(_) => {}
                Ok((stream, _)) => {
                    // Completion is async: poll take_error briefly.
                    for _ in 0..200 {
                        if stream.take_error().expect("take_error").is_some() {
                            return;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    // Refused connects on loopback resolve fast;
                    // reaching here without an error is acceptable
                    // only if the peer actually accepted (it cannot).
                    panic!("connect to dropped port neither failed nor errored");
                }
            }
        }
    }
}
