//! Offline shim for the `polling` crate: portable readiness polling
//! over `poll(2)` through minimal `extern "C"` declarations (the build
//! environment has no crates.io access, so the real crate cannot be
//! pulled; this mirrors the subset of its API the workspace uses, so
//! swapping in the upstream crate is a manifest-only change).
//!
//! Covered surface:
//!
//! * [`Poller`] — `new`, `add`, `modify`, `delete`, `wait`, `notify`;
//! * [`Event`] — `readable` / `writable` / `all` / `none` constructors
//!   plus the `key` / `readable` / `writable` fields;
//! * [`Events`] — the reusable buffer `wait` fills.
//!
//! Semantics follow upstream `polling`:
//!
//! * **Oneshot**: once an event for a source is delivered, that
//!   source's interest is cleared; re-arm it with [`Poller::modify`]
//!   before the next [`Poller::wait`]. The OS-level mechanism is
//!   level-triggered `poll(2)`, so a source that became ready while
//!   disarmed is still reported as soon as it is re-armed — readiness
//!   is never lost, only masked.
//! * **Spurious wakeups are allowed**: `wait` may return zero events
//!   (a [`Poller::notify`], a signal interrupting the syscall, or a
//!   source deleted between snapshot and report). Callers must treat
//!   readiness as a hint and be prepared for `WouldBlock`.
//! * **Error conditions** (`POLLERR`/`POLLHUP`/`POLLNVAL`) are
//!   reported as readable-and/or-writable per the registered interest,
//!   so a caller discovers the condition by attempting the I/O.
//!
//! Extension over upstream (used by the benchmark suite): the
//! [`stats`] module counts the syscalls the shim issues, so a
//! readiness-driven runtime can report syscalls per protocol cycle.

#![deny(missing_docs)]
#![cfg(unix)]

use std::collections::BTreeMap;
use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Shim-global syscall counters (extension over upstream `polling`).
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static POLLS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static NOTIFIES: AtomicU64 = AtomicU64::new(0);
    pub(crate) static DRAINS: AtomicU64 = AtomicU64::new(0);

    /// Number of `poll(2)` syscalls issued by every [`crate::Poller`]
    /// in this process since start.
    pub fn polls() -> u64 {
        POLLS.load(Ordering::Relaxed)
    }

    /// Total syscalls issued by the shim itself: `poll(2)` waits plus
    /// notify-pipe writes and drains. Socket I/O performed by the
    /// *caller* on ready sources is not counted.
    pub fn syscalls() -> u64 {
        POLLS.load(Ordering::Relaxed)
            + NOTIFIES.load(Ordering::Relaxed)
            + DRAINS.load(Ordering::Relaxed)
    }
}

/// The raw libc surface the shim stands on. Kept to the minimum the
/// implementation needs; all constants are Linux generic-ABI values
/// (`O_NONBLOCK` in particular differs on the BSDs), so refuse to
/// build anywhere else rather than misbehave silently.
mod sys {
    #[cfg(not(target_os = "linux"))]
    compile_error!("the polling shim's FFI constants assume the Linux ABI");
    use std::os::raw::{c_int, c_short, c_ulong, c_void};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    pub const F_SETFD: c_int = 2;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const FD_CLOEXEC: c_int = 1;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const EINTR: i32 = 4;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Interest in (or readiness of) a registered source, tagged with the
/// caller-chosen `key` that [`Poller::wait`] reports back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// Interest in (or presence of) read readiness.
    pub readable: bool,
    /// Interest in (or presence of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (the source stays registered but disarmed).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// A reusable buffer of events delivered by one [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Events {
        Events { inner: Vec::new() }
    }

    /// Iterates over the events of the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Drops all buffered events ([`Poller::wait`] does this itself).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last wait delivered no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[derive(Clone, Copy, Debug)]
struct Interest {
    key: usize,
    readable: bool,
    writable: bool,
}

/// A readiness poller over `poll(2)` with a self-pipe for wakeups.
///
/// Registration is keyed by file descriptor; `wait` snapshots the
/// interest set, issues one `poll(2)`, and reports ready sources as
/// [`Event`]s (clearing their interest — oneshot). [`Poller::notify`]
/// wakes a concurrent or future `wait` from any thread.
#[derive(Debug)]
pub struct Poller {
    interest: Mutex<BTreeMap<RawFd, Interest>>,
    notify_read: RawFd,
    notify_write: RawFd,
}

// The pipe fds are owned by the poller and the interest map is locked;
// the poller is usable from any thread, like upstream.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

fn set_nonblocking_cloexec(fd: RawFd) -> io::Result<()> {
    unsafe {
        if sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC) < 0 {
            return Err(io::Error::last_os_error());
        }
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 || sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

impl Poller {
    /// Creates a poller (allocates the notification pipe).
    ///
    /// # Errors
    ///
    /// Fails if the pipe cannot be created or configured.
    pub fn new() -> io::Result<Poller> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let [read_end, write_end] = fds;
        for fd in [read_end, write_end] {
            if let Err(e) = set_nonblocking_cloexec(fd) {
                unsafe {
                    sys::close(read_end);
                    sys::close(write_end);
                }
                return Err(e);
            }
        }
        Ok(Poller {
            interest: Mutex::new(BTreeMap::new()),
            notify_read: read_end,
            notify_write: write_end,
        })
    }

    /// Registers a source with an initial interest.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if the source is
    /// already registered.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut map = self.interest.lock().expect("poller lock poisoned");
        if map.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "source already registered",
            ));
        }
        map.insert(
            fd,
            Interest {
                key: interest.key,
                readable: interest.readable,
                writable: interest.writable,
            },
        );
        Ok(())
    }

    /// Replaces a registered source's interest (the oneshot re-arm).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the source was never
    /// added or was deleted.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut map = self.interest.lock().expect("poller lock poisoned");
        match map.get_mut(&fd) {
            Some(entry) => {
                *entry = Interest {
                    key: interest.key,
                    readable: interest.readable,
                    writable: interest.writable,
                };
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    /// Deregisters a source. Events for it are no longer delivered
    /// (even ones pending inside a concurrent `wait`).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the source was never
    /// added or was already deleted.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut map = self.interest.lock().expect("poller lock poisoned");
        match map.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            )),
        }
    }

    /// Blocks until at least one armed source is ready, a
    /// [`Poller::notify`] arrives, or `timeout` expires (`None` waits
    /// indefinitely). Fills `events` with ready sources and clears
    /// their interest (oneshot). Returns the number of events; `0`
    /// means timeout or spurious wakeup.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures other than `EINTR` (which is
    /// reported as a spurious zero-event wakeup).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(8);
        fds.push(sys::PollFd {
            fd: self.notify_read,
            events: sys::POLLIN,
            revents: 0,
        });
        {
            let map = self.interest.lock().expect("poller lock poisoned");
            for (&fd, interest) in map.iter() {
                let mut mask = 0;
                if interest.readable {
                    mask |= sys::POLLIN;
                }
                if interest.writable {
                    mask |= sys::POLLOUT;
                }
                if mask != 0 {
                    fds.push(sys::PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                }
            }
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
        };
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as _, timeout_ms) };
        stats::POLLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(sys::EINTR) {
                return Ok(0); // signal: a legal spurious wakeup
            }
            return Err(err);
        }
        if fds[0].revents != 0 {
            self.drain_notifications();
        }
        let mut map = self.interest.lock().expect("poller lock poisoned");
        for pfd in &fds[1..] {
            if pfd.revents == 0 {
                continue;
            }
            // A source deleted (or re-registered) while poll ran is
            // simply not reported / reported against its current
            // interest; level-triggered poll re-reports real readiness
            // on the next wait, so nothing is lost.
            let Some(interest) = map.get_mut(&pfd.fd) else {
                continue;
            };
            let failed = pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            let readable = interest.readable && (pfd.revents & sys::POLLIN != 0 || failed);
            let writable = interest.writable && (pfd.revents & sys::POLLOUT != 0 || failed);
            if readable || writable {
                events.inner.push(Event {
                    key: interest.key,
                    readable,
                    writable,
                });
                interest.readable = false; // oneshot: disarm until modify
                interest.writable = false;
            }
        }
        Ok(events.len())
    }

    /// Wakes one concurrent or future [`Poller::wait`] from any thread.
    ///
    /// # Errors
    ///
    /// Propagates pipe write failures (a full pipe is *not* a failure:
    /// a wakeup is already pending).
    pub fn notify(&self) -> io::Result<()> {
        let byte = [1u8];
        stats::NOTIFIES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let rc = unsafe { sys::write(self.notify_write, byte.as_ptr().cast(), 1) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    fn drain_notifications(&self) {
        let mut sink = [0u8; 64];
        loop {
            stats::DRAINS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let rc = unsafe { sys::read(self.notify_read, sink.as_mut_ptr().cast(), sink.len()) };
            if rc <= 0 || (rc as usize) < sink.len() {
                break; // empty (EAGAIN), closed, or fully drained
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.notify_read);
            sys::close(self.notify_write);
        }
    }
}
