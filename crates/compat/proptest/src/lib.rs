//! Offline shim for the `proptest` crate.
//!
//! Provides the strategy combinators, `proptest!` macro and
//! `prop_assert*` macros this workspace's property tests use. Cases are
//! generated from a deterministic per-test RNG (seeded from the test
//! name, overridable via `PROPTEST_SEED`), so failures are reproducible;
//! there is no shrinking — the failing case is printed verbatim instead.
//! `PROPTEST_CASES` overrides the per-test case count.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::ops::Range;

/// Runner configuration, accepted via `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a generator for one named test.
    pub fn for_test(test_name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or(0xC0FFEE),
            Err(_) => {
                // FNV-1a over the test name: stable across runs.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in test_name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            }
        };
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.random_range(0..n.max(1))
    }
}

/// Effective case count for a test (config, then env override).
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases)
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] for boxing.
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String strategies from a pattern of the form `[class]{min,max}` —
/// the small regex subset this workspace's tests use. The class accepts
/// literal characters and `a-z`-style ranges.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_pattern(self);
        let len = rng.0.random_range(min..=max);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?} (want \"[class]{{min,max}}\")"));
    let (class, quant) = inner;
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' && cs[i] <= cs[i + 2] {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty character class in {pattern:?}");
    let quant = quant
        .strip_prefix('{')
        .and_then(|q| q.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported quantifier in {pattern:?}"));
    let (min, max) = match quant.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = quant.trim().parse().unwrap();
            (n, n)
        }
    };
    (chars, min, max)
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, min..max)`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice between strategy alternatives with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a `proptest!` body; failure reports the case instead
/// of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), left
            ));
        }
    }};
}

/// Declares property tests: each `fn` runs its body against many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::effective_cases(&config);
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let case_desc = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let body = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let outcome = body();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:{}\n(set PROPTEST_SEED to reproduce a specific stream)",
                            stringify!($name), case, cases, msg, case_desc
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 3u8..9, v in collection::vec(0u32..5, 0..10)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 10);
            for e in &v {
                prop_assert!(*e < 5, "element {} out of range", e);
            }
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_maps(v in prop_oneof![Just(1u8), 2u8..4, Just(9u8)].prop_map(|x| x as u32)) {
            prop_assert!(v == 1 || v == 2 || v == 3 || v == 9);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| (Just(n), collection::vec(0u8..2, n..(n + 1))))) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_respected(_x in 0u8..10) {
            // Runs exactly 3 cases; nothing to assert beyond termination.
        }
    }
}
