//! Offline shim for the `criterion` crate.
//!
//! Provides `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `BenchmarkId` and
//! `BatchSize`, with a simple but honest measurement loop: warm-up,
//! then timed batches until a target measurement window is filled, and
//! a median-of-samples report in ns/iteration printed to stdout.
//!
//! Supported CLI arguments (after `--`): `--test` runs every benchmark
//! exactly once (CI smoke mode), `--measurement-time-ms N` adjusts the
//! per-benchmark window, a bare string filters benchmarks by substring,
//! and the flags cargo itself passes (`--bench`) are ignored.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched setup output is sized (API compatibility; the shim
/// treats all variants alike).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    measurement: Duration,
    /// (total elapsed, iterations) of the best (median) sample.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        // Warm-up and per-iteration estimate.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let first = warm_start.elapsed().max(Duration::from_nanos(1));
        let batch = (self.measurement.as_nanos() / 20 / first.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut samples: Vec<Duration> = Vec::new();
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || samples.is_empty() {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed());
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        self.result = Some((median, batch));
    }

    /// Measures `routine` over fresh state from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        let mut samples: Vec<Duration> = Vec::new();
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || samples.is_empty() {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            // Dropping the routine's output (e.g. a large returned
            // structure) is excluded from the measurement, matching
            // criterion's iter_batched contract.
            drop(std::hint::black_box(out));
            samples.push(elapsed);
            if samples.len() >= 5000 {
                break;
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        self.result = Some((median, 1));
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
            measurement: Duration::from_millis(600),
        };
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => c.test_mode = true,
                "--measurement-time-ms" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        c.measurement = Duration::from_millis(v);
                    }
                }
                s if s.starts_with('-') => {} // --bench and friends
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(_) if self.test_mode => println!("{name:<52} ok (test mode)"),
            Some((elapsed, iters)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<52} time: {:>12}/iter", human_time(ns));
            }
            None => println!("{name:<52} (no measurement)"),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample count hint (accepted for API compatibility; the shim's
    /// window-based loop ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement window hint.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running several benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}
