//! Offline shim for the `bytes` crate.
//!
//! Implements the subset the workspace uses: cheaply-cloneable
//! reference-counted [`Bytes`] with zero-copy [`Bytes::slice`], a
//! growable [`BytesMut`] builder, and the [`BufMut`] put-helpers
//! (big-endian integers + raw slices). The backing store is an
//! `Arc<[u8]>`, so clones and sub-slices never copy payload bytes.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning and slicing are O(1) and share the underlying allocation.
/// The backing store is an `Arc<Vec<u8>>` so that [`BytesMut::freeze`]
/// and `From<Vec<u8>>` move the allocation instead of copying it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<Vec<u8>>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes {
            data: None,
            start: 0,
            end: 0,
        }
    }

    /// A buffer copied from a static slice.
    ///
    /// (The real crate borrows; the shim copies once, which is
    /// equivalent for the small literals used in this workspace.)
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// A buffer copied from an arbitrary slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    // lint: allow(panic_path) — documented contract mirroring `bytes::Bytes::slice`; every wire-path caller derives the range from a `remaining()` check first
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        if lo == hi {
            // Empty sub-slice: don't retain the backing allocation.
            return Bytes::new();
        }
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Moves the vector's allocation behind the refcount — no copy.
    fn from(v: Vec<u8>) -> Bytes {
        if v.is_empty() {
            return Bytes::new();
        }
        Bytes {
            start: 0,
            end: v.len(),
            data: Some(Arc::new(v)),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer used to assemble encodings.
#[derive(Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Drops the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.vec.truncate(len);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.vec.extend_from_slice(other);
    }

    /// Converts into an immutable [`Bytes`] (moves the allocation; no
    /// copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut").field("len", &self.len()).finish()
    }
}

/// Append-style writers for the wire codec (big-endian integers).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_share_storage() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x0405_0607);
        m.put_u64(0x0809_0A0B_0C0D_0E0F);
        m.put_slice(b"xyz");
        let b = m.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(&b[0..3], &[1, 2, 3]);
        let s = b.slice(1..3);
        assert_eq!(s.as_ref(), &[2, 3]);
        let nested = s.slice(1..2);
        assert_eq!(nested.as_ref(), &[3]);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"meta");
        assert_eq!(a, Bytes::copy_from_slice(b"meta"));
        assert_eq!(a.to_vec(), b"meta".to_vec());
    }
}
