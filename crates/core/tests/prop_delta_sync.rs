//! Model-agreement property suite for delta anti-entropy.
//!
//! Two live `SwimNode`s are driven through a random churn script
//! (gossiped `alive`/`suspect`/`dead` facts about synthetic third
//! nodes, applied to either side) interleaved with scripted push-pull
//! exchanges in both orderings, including exchanges whose reply is
//! dropped in flight. The whole script is then replayed against the
//! full-state reference (`delta_sync = false`, i.e. today's `PushPull`
//! wire exchange) and, after a final fault-free convergence phase, each
//! node's membership table must be **byte-identical** between the delta
//! run and the full-state run — delta sync may change what travels on
//! the wire, never what anybody concludes.
//!
//! (The two *nodes* of one run are not required to be byte-identical to
//! each other: memberlist's dead→suspect downgrade is deliberately
//! asymmetric at equal incarnations, for full-state sync just as much
//! as for delta sync. The suite also pins that pairwise agreement on
//! the delta run matches pairwise agreement on the full run.)

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use lifeguard_core::config::Config;
use lifeguard_core::driver::OwnedOutput;
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{codec, Alive, Dead, Incarnation, Message, NodeAddr, Suspect};

fn a_addr() -> NodeAddr {
    NodeAddr::new([10, 0, 0, 1], 7946)
}

fn b_addr() -> NodeAddr {
    NodeAddr::new([10, 0, 0, 2], 7946)
}

/// Source address for injected churn gossip (outside the pair).
fn gossip_addr() -> NodeAddr {
    NodeAddr::new([10, 0, 9, 9], 7946)
}

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Gossip `alive(node-i, inc)` to one side.
    Alive { i: usize, inc: u64, to_a: bool },
    /// Gossip `suspect(node-i, inc)` to one side.
    Suspect { i: usize, inc: u64, to_a: bool },
    /// Gossip `dead(node-i, inc)` to one side.
    Dead { i: usize, inc: u64, to_a: bool },
    /// One push-pull exchange; `a_initiates` covers both orderings and
    /// `drop_reply` loses every message after the request leg.
    Exchange { a_initiates: bool, drop_reply: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..6u8, 0..6usize, 0..4u64, any::<bool>(), any::<bool>()).prop_map(
        |(kind, i, inc, flag, flag2)| match kind {
            0 => Op::Alive { i, inc, to_a: flag },
            1 => Op::Suspect { i, inc, to_a: flag },
            2 => Op::Dead { i, inc, to_a: flag },
            // Exchanges get extra weight so scripts interleave sync and
            // churn rather than churning first and syncing once.
            _ => Op::Exchange {
                a_initiates: flag,
                drop_reply: flag2,
            },
        },
    )
}

fn synth_addr(i: usize) -> NodeAddr {
    NodeAddr::new([10, 0, 1, i as u8], 7946)
}

fn feed_datagram(n: &mut SwimNode, msg: &Message, now: Time) {
    n.handle_input(
        Input::Datagram {
            from: gossip_addr(),
            payload: codec::encode_message(msg),
        },
        now,
    )
    .expect("well-formed gossip");
    while n.poll_output().is_some() {}
}

fn stream_out(n: &mut SwimNode) -> Vec<(NodeAddr, Message)> {
    let mut msgs = Vec::new();
    while let Some(o) = n.poll_output() {
        if let OwnedOutput::Stream { to, msg } = OwnedOutput::from(o) {
            msgs.push((to, msg));
        }
    }
    msgs
}

/// Runs one exchange initiated by `init` toward `resp`, ping-ponging
/// stream messages until quiet (the full-sync fallback takes three
/// legs: delta request → full request → full reply). With `drop_reply`
/// everything after the request leg is lost in flight.
fn exchange(
    init: &mut SwimNode,
    resp: &mut SwimNode,
    resp_name: &str,
    drop_reply: bool,
    now: Time,
) {
    init.handle_input(
        Input::Sync {
            with: resp_name.into(),
        },
        now,
    )
    .expect("sync is infallible");
    let mut inbox = stream_out(init);
    let mut to_responder = true;
    for _leg in 0..6 {
        if inbox.is_empty() {
            return;
        }
        let (sender_addr, receiver) = if to_responder {
            (init.addr(), &mut *resp)
        } else {
            (resp.addr(), &mut *init)
        };
        for (_to, msg) in std::mem::take(&mut inbox) {
            receiver
                .handle_input(
                    Input::Stream {
                        from: sender_addr,
                        msg,
                    },
                    now,
                )
                .expect("stream is infallible");
        }
        if drop_reply {
            // The request leg was delivered; every response leg is lost.
            while receiver.poll_output().is_some() {}
            return;
        }
        inbox = stream_out(receiver);
        to_responder = !to_responder;
    }
    panic!("exchange did not quiesce within 6 legs");
}

/// The byte-comparable essence of a membership table: every member's
/// push-pull wire encoding, sorted.
fn table_bytes(n: &SwimNode) -> Vec<Vec<u8>> {
    let mut rows: Vec<Vec<u8>> = n
        .members()
        .map(|m| {
            let st = m.to_push_state();
            let msg = Message::PushPull(lifeguard_proto::PushPull {
                join: false,
                reply: false,
                states: vec![st],
            });
            codec::encode_message(&msg).to_vec()
        })
        .collect();
    rows.sort();
    rows
}

/// Replays `script` on a fresh A/B pair and returns both final tables.
/// `delta` toggles incremental vs full-state (reference) anti-entropy;
/// everything else — seeds, inputs, timing — is identical.
fn run_script(script: &[Op], delta: bool) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut cfg = Config::lan();
    cfg.delta_sync = delta;
    let mut a = SwimNode::new("a".into(), a_addr(), cfg.clone(), 1);
    let mut b = SwimNode::new("b".into(), b_addr(), cfg, 2);
    a.start(Time::ZERO);
    b.start(Time::ZERO);
    // Each side learns the other at its true incarnation (0).
    let about_b = Message::Alive(Alive {
        incarnation: Incarnation::ZERO,
        node: "b".into(),
        addr: b_addr(),
        meta: Bytes::new(),
    });
    let about_a = Message::Alive(Alive {
        incarnation: Incarnation::ZERO,
        node: "a".into(),
        addr: a_addr(),
        meta: Bytes::new(),
    });
    feed_datagram(&mut a, &about_b, Time::ZERO);
    feed_datagram(&mut b, &about_a, Time::ZERO);

    let mut now = Time::from_secs(1);
    for op in script {
        now += Duration::from_secs(1);
        match *op {
            Op::Alive { i, inc, to_a } => {
                let msg = Message::Alive(Alive {
                    incarnation: Incarnation(inc),
                    node: format!("node-{i}").into(),
                    addr: synth_addr(i),
                    meta: Bytes::new(),
                });
                feed_datagram(if to_a { &mut a } else { &mut b }, &msg, now);
            }
            Op::Suspect { i, inc, to_a } => {
                let msg = Message::Suspect(Suspect {
                    incarnation: Incarnation(inc),
                    node: format!("node-{i}").into(),
                    from: "accuser".into(),
                });
                feed_datagram(if to_a { &mut a } else { &mut b }, &msg, now);
            }
            Op::Dead { i, inc, to_a } => {
                let msg = Message::Dead(Dead {
                    incarnation: Incarnation(inc),
                    node: format!("node-{i}").into(),
                    from: "accuser".into(),
                });
                feed_datagram(if to_a { &mut a } else { &mut b }, &msg, now);
            }
            Op::Exchange {
                a_initiates,
                drop_reply,
            } => {
                if a_initiates {
                    exchange(&mut a, &mut b, "b", drop_reply, now);
                } else {
                    exchange(&mut b, &mut a, "a", drop_reply, now);
                }
            }
        }
    }

    // Fault-free convergence phase: two exchanges per direction flush
    // every unacked watermark and reach the merge fixpoint.
    for _ in 0..2 {
        now += Duration::from_secs(1);
        exchange(&mut a, &mut b, "b", false, now);
        now += Duration::from_secs(1);
        exchange(&mut b, &mut a, "a", false, now);
    }
    (table_bytes(&a), table_bytes(&b))
}

proptest! {
    /// Delta anti-entropy concludes byte-for-byte what full-state
    /// anti-entropy concludes, for random churn scripts, both exchange
    /// orderings, and dropped replies.
    #[test]
    fn delta_sync_agrees_with_full_state_reference(
        script in proptest::collection::vec(op_strategy(), 1..32)
    ) {
        let (a_delta, b_delta) = run_script(&script, true);
        let (a_full, b_full) = run_script(&script, false);
        prop_assert_eq!(&a_delta, &a_full, "node A diverged from the full-state reference");
        prop_assert_eq!(&b_delta, &b_full, "node B diverged from the full-state reference");
        // Pairwise agreement must be preserved as well: whenever the
        // full-state runs agree across nodes, so do the delta runs.
        prop_assert_eq!(a_full == b_full, a_delta == b_delta);
    }
}

/// Deterministic pin: a script with churn on both sides and a dropped
/// reply converges to the exact same tables as full-state sync.
#[test]
fn dropped_reply_script_pins_equivalence() {
    let script = [
        Op::Alive { i: 0, inc: 1, to_a: true },
        Op::Alive { i: 1, inc: 1, to_a: false },
        Op::Exchange { a_initiates: true, drop_reply: true },
        Op::Suspect { i: 0, inc: 1, to_a: false },
        Op::Dead { i: 1, inc: 1, to_a: true },
        Op::Exchange { a_initiates: false, drop_reply: false },
        Op::Alive { i: 2, inc: 3, to_a: true },
        Op::Exchange { a_initiates: true, drop_reply: false },
    ];
    let (a_delta, b_delta) = run_script(&script, true);
    let (a_full, b_full) = run_script(&script, false);
    assert_eq!(a_delta, a_full);
    assert_eq!(b_delta, b_full);
    assert_eq!(a_full == b_full, a_delta == b_delta);
}
