//! Property tests for the sharded membership change log under sustained
//! churn.
//!
//! The change log backs delta anti-entropy (`changed_since`): each shard
//! keeps a lazily compacted slice of `(update_seq, slot)` entries, and
//! the merged feed must always return exactly the members changed after
//! a cursor, newest first. Two properties matter at scale:
//!
//! 1. **Correctness under churn is shard-invariant**: any interleaving
//!    of upserts, state flips, metadata updates and removals leaves
//!    every shard's invariants intact and yields the same `changed_since`
//!    feed at every shard count.
//! 2. **The log is O(members), not O(history)**: sustained churn — many
//!    updates per member — must not grow the log without bound. Lazy
//!    compaction keeps each shard's slice within a constant factor of
//!    its live membership, so a `changed_since` scan is proportional to
//!    actual change volume, never to the total number of stamps ever
//!    issued.

use proptest::prelude::*;

use lifeguard_core::member::Member;
use lifeguard_core::membership::Membership;
use lifeguard_core::time::Time;
use lifeguard_proto::{Incarnation, MemberState, NodeAddr, NodeName};

fn name(i: usize) -> NodeName {
    NodeName::from(format!("churn-{i}"))
}

fn member(i: usize, inc: u64) -> Member {
    Member::new(
        name(i),
        NodeAddr::new([10, 1, (i >> 8) as u8, i as u8], 7946),
        Incarnation(inc),
        Time::ZERO,
    )
}

/// One churn step against one membership table.
#[derive(Clone, Debug)]
enum Op {
    Upsert { node: usize, inc: u64 },
    Flip { node: usize, state: MemberState },
    Touch { node: usize },
    Remove { node: usize },
}

fn op_strategy(pool: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pool, 0u64..4).prop_map(|(node, inc)| Op::Upsert { node, inc }),
        (0..pool, prop_oneof![
            Just(MemberState::Alive),
            Just(MemberState::Suspect),
            Just(MemberState::Dead),
        ])
        .prop_map(|(node, state)| Op::Flip { node, state }),
        (0..pool).prop_map(|node| Op::Touch { node }),
        // Upserts outnumber removals three-to-one structurally (via the
        // variants above), keeping the table populated under churn.
        (0..pool).prop_map(|node| Op::Remove { node }),
    ]
}

fn apply(m: &mut Membership, op: &Op) {
    match op {
        Op::Upsert { node, inc } => {
            m.upsert(member(*node, *inc));
        }
        Op::Flip { node, state } => {
            m.set_state(&name(*node), *state, Time::from_secs(1));
        }
        Op::Touch { node } => {
            m.update(&name(*node), |mb| {
                mb.incarnation = Incarnation(mb.incarnation.0 + 1);
            });
        }
        Op::Remove { node } => {
            m.remove(&name(*node));
        }
    }
}

/// Upper bound on the retained change-log entries for one table: the
/// per-shard lazy compaction triggers once a slice exceeds
/// `max(64, 2 × shard members)`, so the whole table retains at most
/// `shards × 64 + 2 × members` entries no matter how much history the
/// churn generated. `changed_since(0)` visits at most one entry per
/// retained stamp, so its cost is bounded by the same expression.
fn log_bound(m: &Membership) -> usize {
    m.shard_count() * 64 + 2 * m.len()
}

proptest! {
    /// Sustained churn: correctness, shard-invariance and boundedness of
    /// the change log, at shard counts 1, 4 and 16.
    #[test]
    fn change_log_stays_correct_and_compact_under_churn(
        ops in proptest::collection::vec(op_strategy(48), 1..400),
        cursor_frac in 0.0f64..1.0,
    ) {
        let mut tables: Vec<Membership> =
            [1usize, 4, 16].iter().map(|&s| Membership::with_shards(s)).collect();
        for op in &ops {
            for m in &mut tables {
                apply(m, op);
            }
            // Invariants hold mid-churn, not just at the end.
            for m in &tables {
                m.check_invariants();
            }
        }

        let reference: Vec<(NodeName, u64)> = tables[0]
            .changed_since(0)
            .map(|mb| (mb.name.clone(), mb.updated_seq))
            .collect();

        for m in &tables {
            // Feed identical at every shard count.
            let feed: Vec<(NodeName, u64)> = m
                .changed_since(0)
                .map(|mb| (mb.name.clone(), mb.updated_seq))
                .collect();
            prop_assert_eq!(&feed, &reference);

            // Newest-first, one entry per member, covering everything.
            prop_assert!(feed.windows(2).all(|w| w[0].1 > w[1].1));
            prop_assert_eq!(feed.len(), m.len());

            // A mid-stream cursor returns exactly the strictly-newer slice.
            let cursor = (m.update_seq() as f64 * cursor_frac) as u64;
            let newer: Vec<u64> = m.changed_since(cursor).map(|mb| mb.updated_seq).collect();
            let expect: Vec<u64> = reference
                .iter()
                .map(|(_, seq)| *seq)
                .filter(|&seq| seq > cursor)
                .collect();
            prop_assert_eq!(newer, expect);
        }

        // Lazy compaction: retained log entries stay O(members) even
        // though the churn issued `update_seq()` stamps in total.
        for m in &tables {
            prop_assert!(
                m.retained_log_len() <= log_bound(m),
                "log grew past its compaction bound: {} > {} (members {}, shards {}, stamps {})",
                m.retained_log_len(),
                log_bound(m),
                m.len(),
                m.shard_count(),
                m.update_seq(),
            );
        }
    }
}

/// Deterministic worst case: hammer a tiny member set with far more
/// updates than the compaction threshold and check the log never grows
/// with history length.
#[test]
fn log_length_is_independent_of_history_length() {
    for shards in [1usize, 4, 16] {
        let mut m = Membership::with_shards(shards);
        for i in 0..8 {
            m.upsert(member(i, 0));
        }
        let mut after_short = 0;
        for round in 0..2000u64 {
            for i in 0..8 {
                m.update(&name(i), |mb| {
                    mb.incarnation = Incarnation(mb.incarnation.0 + 1);
                });
            }
            if round == 100 {
                after_short = m.retained_log_len();
            }
        }
        m.check_invariants();
        let after_long = m.retained_log_len();
        assert!(
            after_long <= after_short.max(log_bound(&m)),
            "shards={shards}: log kept growing with history ({after_short} -> {after_long})"
        );
        assert!(after_long <= log_bound(&m));
        // The feed still reflects exactly the live members.
        assert_eq!(m.changed_since(0).count(), 8);
    }
}
