//! Tests of the anomaly (blocked message I/O) semantics of `SwimNode`
//! (paper §V-D): logic and deadlines keep running, loops execute at most
//! one blocked iteration, and the stuck probe fails at unblock time.
//!
//! Driven entirely through the sans-I/O surface: `Input`s in,
//! `poll_output` drained after every input.

use std::time::Duration;

use bytes::Bytes;
use lifeguard_core::config::Config;
use lifeguard_core::driver::OwnedOutput;
use lifeguard_core::event::Event;
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{codec, compound, Ack, Alive, Incarnation, Message, NodeAddr, Suspect};

fn addr(i: u8) -> NodeAddr {
    NodeAddr::new([10, 0, 0, i], 7946)
}

fn new_node(cfg: Config) -> SwimNode {
    let mut n = SwimNode::new("local".into(), addr(1), cfg, 1);
    n.start(Time::ZERO);
    n
}

fn drain(n: &mut SwimNode) -> Vec<OwnedOutput> {
    let mut out = Vec::new();
    while let Some(o) = n.poll_output() {
        out.push(OwnedOutput::from(o));
    }
    out
}

fn feed(n: &mut SwimNode, from: NodeAddr, msg: Message, now: Time) -> Vec<OwnedOutput> {
    n.handle_input(
        Input::Datagram {
            from,
            payload: codec::encode_message(&msg),
        },
        now,
    )
    .expect("well-formed test message");
    drain(n)
}

fn tick(n: &mut SwimNode, now: Time) -> Vec<OwnedOutput> {
    n.handle_input(Input::Tick, now).expect("tick is infallible");
    drain(n)
}

fn set_blocked(n: &mut SwimNode, blocked: bool, now: Time) -> Vec<OwnedOutput> {
    n.handle_input(Input::IoBlocked { blocked }, now)
        .expect("io-blocked input is infallible");
    drain(n)
}

fn add_peer(n: &mut SwimNode, name: &str, i: u8, now: Time) {
    feed(
        n,
        addr(i),
        Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: name.into(),
            addr: addr(i),
            meta: Bytes::new(),
        }),
        now,
    );
}

fn run_until(n: &mut SwimNode, until: Time) -> Vec<OwnedOutput> {
    let mut out = Vec::new();
    while let Some(wake) = n.next_wake() {
        if wake > until {
            break;
        }
        out.extend(tick(n, wake));
    }
    out
}

fn count_pings(outputs: &[OwnedOutput]) -> usize {
    outputs
        .iter()
        .filter_map(|o| match o {
            OwnedOutput::Packet { payload, .. } => compound::decode_packet(payload).ok(),
            _ => None,
        })
        .flatten()
        .filter(|m| matches!(m, Message::Ping(_)))
        .count()
}

#[test]
fn blocked_probe_loop_sends_at_most_one_ping() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    // Let a couple of normal rounds pass (they fail, no acks — that's
    // fine, we only count pings here).
    run_until(&mut n, Time::from_secs(3));

    let t_block = Time::from_secs(3);
    set_blocked(&mut n, true, t_block);
    // Over 10 blocked seconds, exactly one probe-round ping may be
    // produced (the stuck one); a healthy loop would have sent ~10.
    let out = run_until(&mut n, t_block + Duration::from_secs(10));
    assert!(
        count_pings(&out) <= 1,
        "blocked probe loop sent {} pings",
        count_pings(&out)
    );
}

#[test]
fn stuck_probe_fails_and_suspects_at_unblock() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    // Drive until a probe ping is in flight, then block immediately —
    // this pins the "stuck mid-probe" shape regardless of the node's
    // randomized probe phase.
    let mut t = Time::from_secs(1);
    let mut probe_in_flight = false;
    while !probe_in_flight {
        let wake = n.next_wake().expect("probe timers armed");
        t = wake;
        probe_in_flight = count_pings(&tick(&mut n, wake)) > 0;
    }
    let t_block = t + Duration::from_millis(1);
    set_blocked(&mut n, true, t_block);
    let t_unblock = t_block + Duration::from_secs(8);
    run_until(&mut n, t_unblock);

    // No suspicion can have been raised while blocked (deadline
    // evaluation deferred)...
    assert_ne!(
        n.member(&"p".into()).unwrap().state,
        lifeguard_proto::MemberState::Suspect,
        "suspicion must not fire while the probe loop is stuck"
    );
    // ...but unblocking evaluates the stale deadlines: the stuck probe
    // fails and the target is suspected immediately.
    let out = set_blocked(&mut n, false, t_unblock);
    let suspected = out.iter().any(|o| {
        matches!(o, OwnedOutput::Event(Event::MemberSuspected { name, .. }) if name.as_str() == "p")
    });
    assert!(suspected, "stuck probe must fail and suspect at unblock");
}

#[test]
fn stale_ack_is_rejected_after_unblock() {
    let mut n = new_node(Config::lan().lifeguard());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    // Capture the ping seq of the next probe round.
    let mut ping_seq = None;
    let mut t = Time::from_secs(1);
    while ping_seq.is_none() {
        let wake = n.next_wake().unwrap();
        t = wake;
        for o in tick(&mut n, wake) {
            if let OwnedOutput::Packet { payload, .. } = o {
                for m in compound::decode_packet(&payload).unwrap() {
                    if let Message::Ping(p) = m {
                        ping_seq = Some(p.seq);
                    }
                }
            }
        }
    }
    // Block right after the ping went out; the ack "arrives" (is
    // queued by the runtime) but is only processed after unblock,
    // long past the round end.
    set_blocked(&mut n, true, t + Duration::from_millis(1));
    let t_unblock = t + Duration::from_secs(6);
    run_until(&mut n, t_unblock);
    let health_before = n.local_health();
    set_blocked(&mut n, false, t_unblock);
    feed(
        &mut n,
        addr(2),
        Message::Ack(Ack {
            seq: ping_seq.unwrap(),
        }),
        t_unblock + Duration::from_millis(1),
    );
    // The stale ack must not count as a successful probe (LHM must not
    // improve from it).
    assert!(
        n.local_health() >= health_before,
        "stale ack improved local health"
    );
}

#[test]
fn suspicion_expiry_fires_during_block() {
    // A suspicion raised *before* the block keeps its timer running and
    // declares the member dead mid-anomaly (the agent's logs record
    // failures it declared while slow — paper's FP accounting).
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    feed(
        &mut n,
        addr(3),
        Message::Suspect(Suspect {
            incarnation: Incarnation(1),
            node: "p".into(),
            from: "accuser".into(),
        }),
        Time::from_secs(2),
    );
    set_blocked(&mut n, true, Time::from_millis(2500));
    // SWIM timeout for n=2 live is 5 s; run well past it while blocked.
    let out = run_until(&mut n, Time::from_secs(12));
    let failed = out
        .iter()
        .any(|o| matches!(o, OwnedOutput::Event(e) if e.is_failure()));
    assert!(failed, "suspicion expiry must fire during the block");
}

#[test]
fn blocked_gossip_tick_runs_once() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    // Ensure there is something to gossip.
    assert!(n.pending_broadcasts() > 0);
    set_blocked(&mut n, true, Time::from_millis(1100));
    let out = run_until(&mut n, Time::from_secs(6));
    // Gossip ticks every 200 ms; blocked: only the first sends.
    let gossip_packets = out
        .iter()
        .filter(|o| matches!(o, OwnedOutput::Packet { .. }))
        .count();
    assert!(
        gossip_packets <= n.config().gossip_nodes + 1,
        "blocked gossip loop kept sending: {gossip_packets} packets"
    );
}

#[test]
fn unblock_refires_deferred_and_armed_timers_in_deadline_order() {
    // Regression: deferred timers used to be fired as an isolated batch
    // at unblock, so timers armed while blocked (gossip ticks, probe
    // rounds) — even ones due *before* the unblock instant — were left
    // for a later tick. The wheel re-injects the deferred timers at
    // their original deadlines and drains everything due, so the
    // catch-up output interleaves both in global deadline order.
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    // Drive until a probe ping is in flight, then block.
    let mut t = Time::from_secs(1);
    let mut probe_in_flight = false;
    while !probe_in_flight {
        let wake = n.next_wake().expect("probe timers armed");
        t = wake;
        probe_in_flight = count_pings(&tick(&mut n, wake)) > 0;
    }
    let t_block = t + Duration::from_millis(1);
    set_blocked(&mut n, true, t_block);
    // Tick through the probe timeout and round end: both deferred. The
    // gossip loop keeps re-arming itself (deadlines after the deferred
    // probe deadlines) but is stuck after its one blocked send.
    run_until(&mut n, t_block + Duration::from_secs(2));
    // Unblock well past everything, without any further ticks.
    let t_unblock = t_block + Duration::from_secs(8);
    let out = set_blocked(&mut n, false, t_unblock);

    // The deferred round end (deadline ~t+1 s) fails the probe and
    // suspects "p"...
    let suspected_at = out.iter().position(|o| {
        matches!(o, OwnedOutput::Event(Event::MemberSuspected { name, .. }) if name.as_str() == "p")
    });
    let suspected_at = suspected_at.expect("stuck probe must fail and suspect at unblock");
    // ...and the gossip tick armed while blocked (deadline ~t+2.2 s)
    // re-fires *after it, in the same catch-up*, spreading the freshly
    // queued suspect message. The old deferred-only refire produced no
    // such packet from the unblock input at all.
    let gossiped_suspect = out[suspected_at..].iter().any(|o| match o {
        OwnedOutput::Packet { payload, .. } => compound::decode_packet(payload)
            .unwrap()
            .iter()
            .any(|m| matches!(m, Message::Suspect(s) if s.node.as_str() == "p")),
        _ => false,
    });
    assert!(
        gossiped_suspect,
        "catch-up must interleave the armed gossip tick after the deferred probe failure"
    );
}

#[test]
fn deferred_refire_survives_coinciding_probe_deadlines() {
    // Edge timing: probe timeout == probe interval (the most extreme
    // shape Config::validate admits — truly inverted deadlines are now
    // rejected at construction), so the deferred timeout and round end
    // share one deadline. Both defer while blocked; at unblock they
    // re-fire in original order and the round end consumes the probe —
    // the re-injected sibling timer must be truly cancelled with it,
    // not reach its handler stale (which would trip the no-stale-fire
    // assertions in debug builds).
    let mut cfg = Config::lan();
    cfg.probe_timeout = cfg.probe_interval;
    let mut n = new_node(cfg);
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    let mut t = Time::from_secs(1);
    let mut probe_in_flight = false;
    while !probe_in_flight {
        let wake = n.next_wake().expect("probe timers armed");
        t = wake;
        probe_in_flight = count_pings(&tick(&mut n, wake)) > 0;
    }
    let t_block = t + Duration::from_millis(1);
    set_blocked(&mut n, true, t_block);
    // Past both the round end and the coinciding timeout (t+1 s).
    run_until(&mut n, t_block + Duration::from_secs(3));
    let out = set_blocked(&mut n, false, t_block + Duration::from_secs(8));
    assert!(
        out.iter().any(|o| {
            matches!(o, OwnedOutput::Event(Event::MemberSuspected { name, .. }) if name.as_str() == "p")
        }),
        "stuck probe must still fail and suspect at unblock"
    );
}

#[test]
fn unblock_is_idempotent_and_resets_loops() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    assert!(!n.is_io_blocked());
    set_blocked(&mut n, true, Time::from_secs(2));
    assert!(n.is_io_blocked());
    // Double-block is a no-op.
    assert!(set_blocked(&mut n, true, Time::from_secs(2)).is_empty());
    set_blocked(&mut n, false, Time::from_secs(4));
    assert!(!n.is_io_blocked());
    assert!(set_blocked(&mut n, false, Time::from_secs(4)).is_empty());
    // After unblocking, the loops resume: pings flow again.
    let out = run_until(&mut n, Time::from_secs(10));
    assert!(count_pings(&out) >= 2, "probe loop did not resume");
}
