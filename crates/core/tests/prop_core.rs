//! Property tests for the protocol core's data structures and
//! invariants.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use lifeguard_core::awareness::Awareness;
use lifeguard_core::broadcast::BroadcastQueue;
use lifeguard_core::config::Config;
use lifeguard_core::member::Member;
use lifeguard_core::membership::Membership;
use lifeguard_core::suspicion::{suspicion_timeout, Suspicion};
use lifeguard_core::time::Time;
use lifeguard_proto::compound::{decode_packet, CompoundBuilder};
use lifeguard_proto::{Alive, Incarnation, Message, NodeAddr, Suspect};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn alive_msg(node: &str, inc: u64) -> Message {
    Message::Alive(Alive {
        incarnation: Incarnation(inc),
        node: node.into(),
        addr: NodeAddr::new([10, 0, 0, 1], 7946),
        meta: Bytes::new(),
    })
}

proptest! {
    /// The LHM never leaves [0, S] under any delta sequence, and scaled
    /// durations are always base·(score+1).
    #[test]
    fn awareness_stays_in_bounds(
        max in 0u32..32,
        deltas in proptest::collection::vec(-4i32..=4, 0..200),
    ) {
        let mut a = Awareness::new(max);
        for d in deltas {
            let score = a.apply_delta(d);
            prop_assert!(score <= max);
            prop_assert_eq!(score, a.score());
            let scaled = a.scale(Duration::from_millis(100));
            prop_assert_eq!(scaled, Duration::from_millis(100) * (score + 1));
        }
    }

    /// The suspicion timeout is monotonically non-increasing in the
    /// number of confirmations and always clamped to [min, max].
    #[test]
    fn suspicion_timeout_monotone_and_clamped(
        k in 0u32..10,
        min_ms in 100u64..20_000,
        span_ms in 0u64..120_000,
    ) {
        let min = Duration::from_millis(min_ms);
        let max = Duration::from_millis(min_ms + span_ms);
        let mut prev = None;
        for c in 0..=(k + 3) {
            let t = suspicion_timeout(c, k, min, max);
            prop_assert!(t >= min.mul_f64(0.999), "below min: {t:?} < {min:?}");
            prop_assert!(t <= max.mul_f64(1.001), "above max: {t:?} > {max:?}");
            if let Some(p) = prev {
                prop_assert!(t <= p, "not monotone at c={c}");
            }
            prev = Some(t);
        }
        // Exactly min at c >= k.
        if k > 0 && max > min {
            let at_k = suspicion_timeout(k, k, min, max);
            prop_assert!((at_k.as_secs_f64() - min.as_secs_f64()).abs() < 1e-6);
        }
    }

    /// Confirmations from arbitrary name sequences never exceed K and
    /// the deadline never moves later.
    #[test]
    fn suspicion_confirmations_bounded(
        k in 0u32..6,
        names in proptest::collection::vec("[a-f]{1,2}", 0..40),
    ) {
        let min = Duration::from_secs(5);
        let max = Duration::from_secs(30);
        let mut s = Suspicion::new(Incarnation(1), "origin".into(), k, min, max, Time::ZERO);
        let mut regossiped = 0;
        let mut prev_deadline = s.deadline();
        for n in names {
            if s.confirm(n.as_str().into()) {
                regossiped += 1;
            }
            prop_assert!(s.confirmation_count() <= k);
            prop_assert!(s.deadline() <= prev_deadline);
            prev_deadline = s.deadline();
        }
        prop_assert!(regossiped <= k as usize);
    }

    /// The broadcast queue never holds two entries about the same member
    /// and drains completely under any fill pattern.
    #[test]
    fn broadcast_queue_invalidates_and_drains(
        ops in proptest::collection::vec((0u8..8, 0u64..5), 1..100),
        limit in 1u32..6,
    ) {
        let mut q = BroadcastQueue::new();
        let mut subjects = std::collections::HashSet::new();
        for (node, inc) in &ops {
            let name = format!("node-{node}");
            q.enqueue(alive_msg(&name, *inc));
            subjects.insert(name);
            prop_assert!(q.len() <= subjects.len());
        }
        // Drain: every fill makes progress until empty.
        let mut rounds = 0;
        while !q.is_empty() {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, limit, None);
            if let Some(p) = b.finish() {
                prop_assert!(!decode_packet(&p).unwrap().is_empty());
            }
            rounds += 1;
            prop_assert!(rounds < 10_000, "queue failed to drain");
        }
    }

    /// The suspicion min/max formulas respect their config relations for
    /// any cluster size.
    #[test]
    fn config_suspicion_bounds_relate(n in 1usize..10_000) {
        let swim = Config::lan();
        prop_assert_eq!(swim.suspicion_min(n), swim.suspicion_max(n));
        let lg = Config::lan().lifeguard();
        let min = lg.suspicion_min(n);
        let max = lg.suspicion_max(n);
        prop_assert!(max >= min);
        let ratio = max.as_secs_f64() / min.as_secs_f64();
        prop_assert!((ratio - 6.0).abs() < 1e-6);
        // Monotone in n.
        prop_assert!(lg.suspicion_min(n + 1) >= min);
    }

    /// Membership sampling returns distinct members matching the filter,
    /// never more than requested or available.
    #[test]
    fn membership_sample_is_sound(
        n in 0usize..64,
        k in 0usize..80,
        seed in any::<u64>(),
        banned in 0usize..64,
    ) {
        let mut table = Membership::new();
        for i in 0..n {
            table.upsert(Member::new(
                format!("node-{i}").into(),
                NodeAddr::new([10, 0, 0, i as u8], 7946),
                Incarnation(0),
                Time::ZERO,
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let banned_name = format!("node-{banned}");
        let picked = table.sample(k, &mut rng, |m| m.name.as_str() != banned_name);
        let eligible = n - usize::from(banned < n);
        prop_assert!(picked.len() <= k);
        prop_assert!(picked.len() <= eligible);
        if k >= eligible {
            prop_assert_eq!(picked.len(), eligible);
        }
        let mut names: Vec<_> = picked.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), picked.len(), "duplicates in sample");
    }
}

/// Incarnation-precedence model check: applying alive/suspect messages
/// about one member in any order converges to the same final state on
/// every node that saw all of them (eventual agreement modulo dead
/// declarations, which are sticky).
mod precedence {
    use super::*;
    use lifeguard_core::node::SwimNode;

    fn fresh_node(seed: u64) -> SwimNode {
        let mut node = SwimNode::new(
            "local".into(),
            NodeAddr::new([10, 0, 0, 99], 7946),
            Config::lan(),
            seed,
        );
        node.start(Time::ZERO);
        node
    }

    proptest! {
        /// For any interleaving of alive(inc) and suspect(inc) messages
        /// about one peer, the node ends with the record of the highest
        /// incarnation it saw, and an alive at incarnation i never
        /// overrides a suspect at incarnation >= i.
        #[test]
        fn alive_suspect_precedence(
            msgs in proptest::collection::vec((any::<bool>(), 0u64..6), 1..30),
        ) {
            let mut node = fresh_node(1);
            let from = NodeAddr::new([10, 0, 0, 2], 7946);
            // Register the subject first.
            node.handle_message_in(from, alive_msg("p", 0), Time::ZERO);

            let mut model_inc = 0u64;
            let mut model_suspect = false;
            for (i, (is_alive, inc)) in msgs.iter().enumerate() {
                let t = Time::from_millis(i as u64 + 1);
                if *is_alive {
                    node.handle_message_in(from, alive_msg("p", *inc), t);
                    if *inc > model_inc {
                        model_inc = *inc;
                        model_suspect = false;
                    }
                } else {
                    node.handle_message_in(
                        from,
                        Message::Suspect(Suspect {
                            incarnation: Incarnation(*inc),
                            node: "p".into(),
                            from: "accuser".into(),
                        }),
                        t,
                    );
                    if *inc >= model_inc && !model_suspect {
                        model_inc = *inc;
                        model_suspect = true;
                    } else if model_suspect && *inc > model_inc {
                        model_inc = *inc;
                    }
                }
            }
            let member = node.member(&"p".into()).expect("present");
            prop_assert_eq!(member.incarnation, Incarnation(model_inc));
            let is_suspect = member.state == lifeguard_proto::MemberState::Suspect;
            prop_assert_eq!(is_suspect, model_suspect);
        }
    }
}
