//! Property tests for the protocol core's data structures and
//! invariants.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use lifeguard_core::awareness::Awareness;
use lifeguard_core::broadcast::BroadcastQueue;
use lifeguard_core::config::Config;
use lifeguard_core::member::Member;
use lifeguard_core::membership::Membership;
use lifeguard_core::suspicion::{suspicion_timeout, Suspicion};
use lifeguard_core::time::Time;
use lifeguard_proto::compound::{decode_packet, CompoundBuilder};
use lifeguard_proto::{Alive, Incarnation, Message, NodeAddr, Suspect};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn alive_msg(node: &str, inc: u64) -> Message {
    Message::Alive(Alive {
        incarnation: Incarnation(inc),
        node: node.into(),
        addr: NodeAddr::new([10, 0, 0, 1], 7946),
        meta: Bytes::new(),
    })
}

proptest! {
    /// The LHM never leaves [0, S] under any delta sequence, and scaled
    /// durations are always base·(score+1).
    #[test]
    fn awareness_stays_in_bounds(
        max in 0u32..32,
        deltas in proptest::collection::vec(-4i32..=4, 0..200),
    ) {
        let mut a = Awareness::new(max);
        for d in deltas {
            let score = a.apply_delta(d);
            prop_assert!(score <= max);
            prop_assert_eq!(score, a.score());
            let scaled = a.scale(Duration::from_millis(100));
            prop_assert_eq!(scaled, Duration::from_millis(100) * (score + 1));
        }
    }

    /// The suspicion timeout is monotonically non-increasing in the
    /// number of confirmations and always clamped to [min, max].
    #[test]
    fn suspicion_timeout_monotone_and_clamped(
        k in 0u32..10,
        min_ms in 100u64..20_000,
        span_ms in 0u64..120_000,
    ) {
        let min = Duration::from_millis(min_ms);
        let max = Duration::from_millis(min_ms + span_ms);
        let mut prev = None;
        for c in 0..=(k + 3) {
            let t = suspicion_timeout(c, k, min, max);
            prop_assert!(t >= min.mul_f64(0.999), "below min: {t:?} < {min:?}");
            prop_assert!(t <= max.mul_f64(1.001), "above max: {t:?} > {max:?}");
            if let Some(p) = prev {
                prop_assert!(t <= p, "not monotone at c={c}");
            }
            prev = Some(t);
        }
        // Exactly min at c >= k.
        if k > 0 && max > min {
            let at_k = suspicion_timeout(k, k, min, max);
            prop_assert!((at_k.as_secs_f64() - min.as_secs_f64()).abs() < 1e-6);
        }
    }

    /// Confirmations from arbitrary name sequences never exceed K and
    /// the deadline never moves later.
    #[test]
    fn suspicion_confirmations_bounded(
        k in 0u32..6,
        names in proptest::collection::vec("[a-f]{1,2}", 0..40),
    ) {
        let min = Duration::from_secs(5);
        let max = Duration::from_secs(30);
        let mut s = Suspicion::new(Incarnation(1), "origin".into(), k, min, max, Time::ZERO);
        let mut regossiped = 0;
        let mut prev_deadline = s.deadline();
        for n in names {
            if s.confirm(n.as_str().into()) {
                regossiped += 1;
            }
            prop_assert!(s.confirmation_count() <= k);
            prop_assert!(s.deadline() <= prev_deadline);
            prev_deadline = s.deadline();
        }
        prop_assert!(regossiped <= k as usize);
    }

    /// The broadcast queue never holds two entries about the same member
    /// and drains completely under any fill pattern.
    #[test]
    fn broadcast_queue_invalidates_and_drains(
        ops in proptest::collection::vec((0u8..8, 0u64..5), 1..100),
        limit in 1u32..6,
    ) {
        let mut q = BroadcastQueue::new();
        let mut subjects = std::collections::HashSet::new();
        for (node, inc) in &ops {
            let name = format!("node-{node}");
            q.enqueue(alive_msg(&name, *inc));
            subjects.insert(name);
            prop_assert!(q.len() <= subjects.len());
        }
        // Drain: every fill makes progress until empty.
        let mut rounds = 0;
        while !q.is_empty() {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, limit, None);
            if let Some(p) = b.finish() {
                prop_assert!(!decode_packet(&p).unwrap().is_empty());
            }
            rounds += 1;
            prop_assert!(rounds < 10_000, "queue failed to drain");
        }
    }

    /// The suspicion min/max formulas respect their config relations for
    /// any cluster size.
    #[test]
    fn config_suspicion_bounds_relate(n in 1usize..10_000) {
        let swim = Config::lan();
        prop_assert_eq!(swim.suspicion_min(n), swim.suspicion_max(n));
        let lg = Config::lan().lifeguard();
        let min = lg.suspicion_min(n);
        let max = lg.suspicion_max(n);
        prop_assert!(max >= min);
        let ratio = max.as_secs_f64() / min.as_secs_f64();
        prop_assert!((ratio - 6.0).abs() < 1e-6);
        // Monotone in n.
        prop_assert!(lg.suspicion_min(n + 1) >= min);
    }

    /// Membership sampling returns distinct members matching the filter,
    /// never more than requested or available.
    #[test]
    fn membership_sample_is_sound(
        n in 0usize..64,
        k in 0usize..80,
        seed in any::<u64>(),
        banned in 0usize..64,
    ) {
        let mut table = Membership::new();
        for i in 0..n {
            table.upsert(Member::new(
                format!("node-{i}").into(),
                NodeAddr::new([10, 0, 0, i as u8], 7946),
                Incarnation(0),
                Time::ZERO,
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let banned_name = format!("node-{banned}");
        let picked = table.sample(k, &mut rng, |m| m.name.as_str() != banned_name);
        let eligible = n - usize::from(banned < n);
        prop_assert!(picked.len() <= k);
        prop_assert!(picked.len() <= eligible);
        if k >= eligible {
            prop_assert_eq!(picked.len(), eligible);
        }
        let mut names: Vec<_> = picked.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), picked.len(), "duplicates in sample");
    }
}

/// Model-agreement checks: the indexed `Membership` and the heap-based
/// `BroadcastQueue` must behave exactly like the naive designs they
/// replaced (full-scan counters; flat vector with sort-per-fill) under
/// arbitrary operation sequences.
mod model_agreement {
    use super::*;
    use lifeguard_core::membership::SamplePool;
    use lifeguard_proto::{MemberState, NodeName};
    use std::collections::BTreeMap;

    fn member(node: u8, inc: u64) -> Member {
        let mut m = Member::new(
            format!("node-{node}").into(),
            NodeAddr::new([10, 0, 0, node], 7946),
            Incarnation(inc),
            Time::ZERO,
        );
        m.meta = Bytes::new();
        m
    }

    fn state_of(code: u8) -> MemberState {
        match code % 4 {
            0 => MemberState::Alive,
            1 => MemberState::Suspect,
            2 => MemberState::Dead,
            _ => MemberState::Left,
        }
    }

    proptest! {
        /// Counters, pools and iteration of the indexed table always
        /// match a naive `BTreeMap` model driven by the same operations,
        /// and the internal invariants hold after every step.
        #[test]
        fn membership_matches_naive_model(
            ops in proptest::collection::vec((0u8..4, 0u8..24, 0u8..8, 0u64..5), 1..120),
        ) {
            let mut indexed = Membership::new();
            let mut model: BTreeMap<NodeName, Member> = BTreeMap::new();
            for (op, node, code, inc) in ops {
                let name: NodeName = format!("node-{node}").into();
                match op {
                    0 => {
                        let m = member(node, inc);
                        indexed.upsert(m.clone());
                        model.insert(name.clone(), m);
                    }
                    1 => {
                        let state = state_of(code);
                        let t = Time::from_secs(inc);
                        indexed.set_state(&name, state, t);
                        if let Some(m) = model.get_mut(&name) {
                            m.set_state(state, t);
                        }
                    }
                    2 => {
                        let a = indexed.remove(&name).map(|m| m.name.clone());
                        let b = model.remove(&name).map(|m| m.name.clone());
                        prop_assert_eq!(a, b);
                    }
                    _ => {
                        let got = indexed
                            .update(&name, |m| {
                                m.incarnation = Incarnation(inc);
                                m.set_state(state_of(code), Time::from_secs(inc));
                            })
                            .is_some();
                        if let Some(m) = model.get_mut(&name) {
                            m.incarnation = Incarnation(inc);
                            m.set_state(state_of(code), Time::from_secs(inc));
                            prop_assert!(got);
                        } else {
                            prop_assert!(!got);
                        }
                    }
                }
                // Counters must equal full recomputed scans of the model.
                prop_assert_eq!(indexed.len(), model.len());
                prop_assert_eq!(
                    indexed.live_count(),
                    model.values().filter(|m| m.is_live()).count()
                );
                prop_assert_eq!(
                    indexed.alive_count(),
                    model.values().filter(|m| m.state == MemberState::Alive).count()
                );
                indexed.check_invariants();
            }
            // Same final contents (order-independent).
            let mut a: Vec<(NodeName, u8, Incarnation)> = indexed
                .iter()
                .map(|m| (m.name.clone(), m.state.as_u8(), m.incarnation))
                .collect();
            a.sort();
            let b: Vec<(NodeName, u8, Incarnation)> = model
                .values()
                .map(|m| (m.name.clone(), m.state.as_u8(), m.incarnation))
                .collect();
            prop_assert_eq!(a, b);
        }

        /// Pool-restricted sampling only returns members of that pool,
        /// respects the filter, never duplicates, and returns exactly
        /// min(k, eligible) members.
        #[test]
        fn membership_pool_sampling_is_sound(
            states in proptest::collection::vec(0u8..4, 1..48),
            k in 0usize..60,
            seed in any::<u64>(),
            banned in 0u8..48,
        ) {
            let mut table = Membership::new();
            for (i, &code) in states.iter().enumerate() {
                let mut m = member(i as u8, 0);
                m.set_state(state_of(code), Time::from_secs(1));
                table.upsert(m);
            }
            let banned_name: NodeName = format!("node-{banned}").into();
            let mut rng = StdRng::seed_from_u64(seed);
            for (pool, want_live) in [
                (SamplePool::Live, Some(true)),
                (SamplePool::Gone, Some(false)),
                (SamplePool::All, None),
            ] {
                let picked = table.sample_pool(pool, k, &mut rng, |m| m.name != banned_name);
                let eligible = table
                    .iter()
                    .filter(|m| want_live.is_none_or(|w| m.is_live() == w))
                    .filter(|m| m.name != banned_name)
                    .count();
                prop_assert_eq!(picked.len(), k.min(eligible));
                if let Some(w) = want_live {
                    prop_assert!(picked.iter().all(|m| m.is_live() == w));
                }
                prop_assert!(picked.iter().all(|m| m.name != banned_name));
                let mut names: Vec<_> = picked.iter().map(|m| m.name.clone()).collect();
                names.sort();
                names.dedup();
                prop_assert_eq!(names.len(), picked.len(), "duplicates in pool sample");
            }
        }
    }

    /// The seed's broadcast queue design, kept as an executable
    /// reference model: flat vector, O(n) invalidation on enqueue, full
    /// sort per fill.
    #[derive(Default)]
    struct NaiveQueue {
        items: Vec<(NodeName, Message, Bytes, u32, u64)>,
        next_id: u64,
    }

    impl NaiveQueue {
        fn enqueue(&mut self, msg: Message) {
            let subject = msg.gossip_subject().cloned().unwrap();
            self.items.retain(|(s, ..)| s != &subject);
            let encoded = lifeguard_proto::codec::encode_message(&msg);
            let id = self.next_id;
            self.next_id += 1;
            self.items.push((subject, msg, encoded, 0, id));
        }

        fn queued_for(&self, subject: &NodeName) -> Option<&Message> {
            self.items
                .iter()
                .find(|(s, ..)| s == subject)
                .map(|(_, m, ..)| m)
        }

        fn fill(&mut self, builder: &mut CompoundBuilder, limit: u32, exclude: Option<&NodeName>) {
            let mut order: Vec<usize> = (0..self.items.len()).collect();
            order.sort_by_key(|&i| (self.items[i].3, u64::MAX - self.items[i].4));
            let mut used = Vec::new();
            for i in order {
                if exclude == Some(&self.items[i].0) {
                    continue;
                }
                if builder.remaining() < self.items[i].2.len() {
                    continue;
                }
                if builder.try_add(self.items[i].2.clone()) {
                    used.push(i);
                }
            }
            for &i in &used {
                self.items[i].3 += 1;
            }
            self.items.retain(|(.., t, _id)| {
                let _ = _id;
                *t < limit
            });
        }
    }

    proptest! {
        /// Under any interleaving of enqueues and fills (varying packet
        /// budgets, limits and exclusions), the heap-based queue emits
        /// the exact same packets as the naive sort-per-fill model and
        /// agrees on the queue contents afterwards.
        #[test]
        fn broadcast_queue_matches_naive_model(
            ops in proptest::collection::vec((0u8..5, 0u8..10, 0u64..4), 1..80),
            limit in 1u32..6,
        ) {
            let mut fast = BroadcastQueue::new();
            let mut naive = NaiveQueue::default();
            for (op, node, inc) in ops {
                match op {
                    0 | 1 => {
                        let msg = alive_msg(&format!("node-{node}"), inc);
                        fast.enqueue(msg.clone());
                        naive.enqueue(msg);
                    }
                    2 => {
                        let msg = Message::Suspect(Suspect {
                            incarnation: Incarnation(inc),
                            node: format!("node-{node}").into(),
                            from: "accuser".into(),
                        });
                        fast.enqueue(msg.clone());
                        naive.enqueue(msg);
                    }
                    op => {
                        // Budget 60 forces skip paths; 1400 drains freely.
                        let budget = if op == 3 { 60 } else { 1400 };
                        let exclude: Option<NodeName> =
                            (node % 3 == 0).then(|| format!("node-{}", node / 2).into());
                        let mut fb = CompoundBuilder::new(budget);
                        fast.fill(&mut fb, limit, exclude.as_ref());
                        let mut nb = CompoundBuilder::new(budget);
                        naive.fill(&mut nb, limit, exclude.as_ref());
                        let fp = fb.finish().map(|p| decode_packet(&p).unwrap());
                        let np = nb.finish().map(|p| decode_packet(&p).unwrap());
                        prop_assert_eq!(fp, np, "fill diverged from model");
                    }
                }
                prop_assert_eq!(fast.len(), naive.items.len());
                for node in 0..10u8 {
                    let name: NodeName = format!("node-{node}").into();
                    prop_assert_eq!(fast.queued_for(&name), naive.queued_for(&name));
                }
            }
        }
    }
}

/// Incarnation-precedence model check: applying alive/suspect messages
/// about one member in any order converges to the same final state on
/// every node that saw all of them (eventual agreement modulo dead
/// declarations, which are sticky).
mod precedence {
    use super::*;
    use lifeguard_core::node::{Input, SwimNode};
    use lifeguard_proto::codec;

    fn feed_node(node: &mut SwimNode, from: NodeAddr, msg: Message, now: Time) {
        node.handle_input(
            Input::Datagram {
                from,
                payload: codec::encode_message(&msg),
            },
            now,
        )
        .expect("well-formed test message");
        while node.poll_output().is_some() {}
    }

    fn fresh_node(seed: u64) -> SwimNode {
        let mut node = SwimNode::new(
            "local".into(),
            NodeAddr::new([10, 0, 0, 99], 7946),
            Config::lan(),
            seed,
        );
        node.start(Time::ZERO);
        node
    }

    proptest! {
        /// For any interleaving of alive(inc) and suspect(inc) messages
        /// about one peer, the node ends with the record of the highest
        /// incarnation it saw, and an alive at incarnation i never
        /// overrides a suspect at incarnation >= i.
        #[test]
        fn alive_suspect_precedence(
            msgs in proptest::collection::vec((any::<bool>(), 0u64..6), 1..30),
        ) {
            let mut node = fresh_node(1);
            let from = NodeAddr::new([10, 0, 0, 2], 7946);
            // Register the subject first.
            feed_node(&mut node, from, alive_msg("p", 0), Time::ZERO);

            let mut model_inc = 0u64;
            let mut model_suspect = false;
            for (i, (is_alive, inc)) in msgs.iter().enumerate() {
                let t = Time::from_millis(i as u64 + 1);
                if *is_alive {
                    feed_node(&mut node, from, alive_msg("p", *inc), t);
                    if *inc > model_inc {
                        model_inc = *inc;
                        model_suspect = false;
                    }
                } else {
                    feed_node(&mut node, 
                        from,
                        Message::Suspect(Suspect {
                            incarnation: Incarnation(*inc),
                            node: "p".into(),
                            from: "accuser".into(),
                        }),
                        t,
                    );
                    if *inc >= model_inc && !model_suspect {
                        model_inc = *inc;
                        model_suspect = true;
                    } else if model_suspect && *inc > model_inc {
                        model_inc = *inc;
                    }
                }
            }
            let member = node.member(&"p".into()).expect("present");
            prop_assert_eq!(member.incarnation, Incarnation(model_inc));
            let is_suspect = member.state == lifeguard_proto::MemberState::Suspect;
            prop_assert_eq!(is_suspect, model_suspect);
        }
    }
}
