//! Tests for node statistics, metadata updates and the config profiles.

use bytes::Bytes;
use lifeguard_core::config::{AwarenessDeltas, Config};
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{codec, Alive, Incarnation, Message, NodeAddr, Suspect};

fn addr(i: u8) -> NodeAddr {
    NodeAddr::new([10, 0, 0, i], 7946)
}

fn new_node(cfg: Config) -> SwimNode {
    let mut n = SwimNode::new("local".into(), addr(1), cfg, 1);
    n.start(Time::ZERO);
    n
}

fn drain(n: &mut SwimNode) {
    while n.poll_output().is_some() {}
}

fn feed(n: &mut SwimNode, from: NodeAddr, msg: Message, now: Time) {
    n.handle_input(
        Input::Datagram {
            from,
            payload: codec::encode_message(&msg),
        },
        now,
    )
    .expect("well-formed test message");
    drain(n);
}

fn add_peer(n: &mut SwimNode, name: &str, i: u8, now: Time) {
    feed(
        n,
        addr(i),
        Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: name.into(),
            addr: addr(i),
            meta: Bytes::new(),
        }),
        now,
    );
}

fn run_until(n: &mut SwimNode, until: Time) {
    while let Some(wake) = n.next_wake() {
        if wake > until {
            break;
        }
        n.handle_input(Input::Tick, wake).expect("tick is infallible");
        drain(n);
    }
}

#[test]
fn stats_track_probe_lifecycle() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    assert_eq!(n.stats(), lifeguard_core::NodeStats::default());
    // Unanswered probes: each round fails, fans out indirect probes
    // (none available with a single suspect peer, so indirect stays 0
    // until more peers exist), raises one suspicion, then declares.
    run_until(&mut n, Time::from_secs(20));
    let stats = n.stats();
    assert!(stats.probes_sent >= 1, "{stats:?}");
    assert!(stats.probes_failed >= 1, "{stats:?}");
    assert!(stats.suspicions_raised >= 1, "{stats:?}");
    assert!(stats.failures_declared >= 1, "{stats:?}");
    assert_eq!(stats.refutations, 0);
}

#[test]
fn stats_count_indirect_probes_and_refutations() {
    let mut n = new_node(Config::lan().lifeguard());
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        add_peer(&mut n, name, i as u8 + 2, Time::from_secs(1));
    }
    run_until(&mut n, Time::from_secs(4));
    assert!(
        n.stats().indirect_probes_sent >= 1,
        "failed probes with peers available must fan out: {:?}",
        n.stats()
    );
    let inc = n.incarnation();
    feed(
        &mut n,
        addr(2),
        Message::Suspect(Suspect {
            incarnation: inc,
            node: "local".into(),
            from: "a".into(),
        }),
        Time::from_secs(5),
    );
    assert_eq!(n.stats().refutations, 1);
}

#[test]
fn update_meta_bumps_incarnation_and_gossips() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    let inc_before = n.incarnation();
    n.handle_input(
        Input::UpdateMeta {
            meta: Bytes::from_static(b"v2"),
        },
        Time::from_secs(2),
    )
    .unwrap();
    drain(&mut n);
    assert!(n.incarnation() > inc_before);
    let queued = n.queued_broadcast_for(&"local".into());
    match queued {
        Some(Message::Alive(a)) => {
            assert_eq!(a.meta.as_ref(), b"v2");
            assert_eq!(a.incarnation, n.incarnation());
        }
        other => panic!("expected queued alive about self, got {other:?}"),
    }
    let me = n.member(&"local".into()).unwrap();
    assert_eq!(me.meta.as_ref(), b"v2");
}

#[test]
fn meta_update_propagates_to_peer_view() {
    // Peer applies the alive message carrying new meta.
    let mut observer = new_node(Config::lan());
    add_peer(&mut observer, "p", 2, Time::from_secs(1));
    feed(&mut observer, 
        addr(2),
        Message::Alive(Alive {
            incarnation: Incarnation(2),
            node: "p".into(),
            addr: addr(2),
            meta: Bytes::from_static(b"role=db"),
        }),
        Time::from_secs(2),
    );
    assert_eq!(
        observer.member(&"p".into()).unwrap().meta.as_ref(),
        b"role=db"
    );
}

#[test]
fn config_profiles_are_valid_and_ordered() {
    let lan = Config::lan();
    let wan = Config::wan();
    let local = Config::local();
    for cfg in [&lan, &wan, &local] {
        cfg.validate().expect("profile must validate");
    }
    assert!(wan.probe_interval > lan.probe_interval);
    assert!(wan.gossip_interval > lan.gossip_interval);
    assert!(local.probe_timeout < lan.probe_timeout);
    assert!(local.gossip_interval < lan.gossip_interval);
}

#[test]
fn custom_awareness_deltas_are_applied() {
    let mut cfg = Config::lan().lifeguard();
    cfg.awareness_deltas = AwarenessDeltas {
        probe_success: -1,
        probe_failed: 3,
        missed_nack: 1,
        refute: 5,
    };
    let mut n = new_node(cfg);
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    let inc = n.incarnation();
    feed(
        &mut n,
        addr(2),
        Message::Suspect(Suspect {
            incarnation: inc,
            node: "local".into(),
            from: "p".into(),
        }),
        Time::from_secs(2),
    );
    assert_eq!(n.local_health(), 5, "custom refute delta must apply");
}
