//! Behavioural tests of memberlist-layer features: push-pull replies,
//! dead-member retention/reaping, gossip-to-the-dead, reconnect, and
//! indirect-probe plumbing end to end across two nodes.

use std::time::Duration;

use bytes::Bytes;
use lifeguard_core::config::Config;
use lifeguard_core::driver::OwnedOutput;
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_core::time::Time;
use lifeguard_proto::{
    codec, compound, Alive, Dead, Incarnation, MemberState, Message, NodeAddr, PushPull, Suspect,
};

fn addr(i: u8) -> NodeAddr {
    NodeAddr::new([10, 0, 0, i], 7946)
}

fn new_node(cfg: Config) -> SwimNode {
    let mut n = SwimNode::new("local".into(), addr(1), cfg, 1);
    n.start(Time::ZERO);
    n
}

fn drain(n: &mut SwimNode) -> Vec<OwnedOutput> {
    let mut out = Vec::new();
    while let Some(o) = n.poll_output() {
        out.push(OwnedOutput::from(o));
    }
    out
}

fn feed(n: &mut SwimNode, from: NodeAddr, msg: Message, now: Time) -> Vec<OwnedOutput> {
    n.handle_input(
        Input::Datagram {
            from,
            payload: codec::encode_message(&msg),
        },
        now,
    )
    .expect("well-formed test message");
    drain(n)
}

fn feed_stream(n: &mut SwimNode, from: NodeAddr, msg: Message, now: Time) -> Vec<OwnedOutput> {
    n.handle_input(Input::Stream { from, msg }, now)
        .expect("stream input is infallible");
    drain(n)
}

fn tick(n: &mut SwimNode, now: Time) -> Vec<OwnedOutput> {
    n.handle_input(Input::Tick, now).expect("tick is infallible");
    drain(n)
}

fn add_peer(n: &mut SwimNode, name: &str, i: u8, now: Time) {
    feed(
        n,
        addr(i),
        Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: name.into(),
            addr: addr(i),
            meta: Bytes::new(),
        }),
        now,
    );
}

fn run_until(n: &mut SwimNode, until: Time) -> Vec<OwnedOutput> {
    let mut out = Vec::new();
    while let Some(wake) = n.next_wake() {
        if wake > until {
            break;
        }
        out.extend(tick(n, wake));
    }
    out
}

#[test]
fn push_pull_reply_contains_full_table_including_dead() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "alive-peer", 2, Time::from_secs(1));
    add_peer(&mut n, "dead-peer", 3, Time::from_secs(1));
    feed(&mut n, 
        addr(4),
        Message::Dead(Dead {
            incarnation: Incarnation(1),
            node: "dead-peer".into(),
            from: "accuser".into(),
        }),
        Time::from_secs(2),
    );
    let out = feed_stream(&mut n, 
        addr(9),
        Message::PushPull(PushPull {
            join: true,
            reply: false,
            states: vec![],
        }),
        Time::from_secs(3),
    );
    let reply = out
        .iter()
        .find_map(|o| match o {
            OwnedOutput::Stream {
                msg: Message::PushPull(pp),
                ..
            } if pp.reply => Some(pp),
            _ => None,
        })
        .expect("push-pull must be answered");
    let names: Vec<&str> = reply.states.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"local"));
    assert!(names.contains(&"alive-peer"));
    assert!(
        names.contains(&"dead-peer"),
        "dead members are retained and shared via push-pull"
    );
    let dead = reply
        .states
        .iter()
        .find(|s| s.name.as_str() == "dead-peer")
        .unwrap();
    assert_eq!(dead.state, MemberState::Dead);
}

#[test]
fn dead_members_are_reaped_after_retention() {
    let mut cfg = Config::lan();
    cfg.dead_reclaim = Duration::from_secs(10);
    let mut n = new_node(cfg);
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    feed(&mut n, 
        addr(3),
        Message::Dead(Dead {
            incarnation: Incarnation(1),
            node: "p".into(),
            from: "accuser".into(),
        }),
        Time::from_secs(2),
    );
    assert!(n.member(&"p".into()).is_some());
    // Reap timer runs every `dead_reclaim`; after the retention window
    // the record disappears.
    run_until(&mut n, Time::from_secs(31));
    assert!(
        n.member(&"p".into()).is_none(),
        "dead member must be reaped after retention"
    );
}

#[test]
fn gossip_reaches_recently_dead_members() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "dead-peer", 2, Time::from_secs(1));
    add_peer(&mut n, "other", 3, Time::from_secs(1));
    let t = Time::from_secs(2);
    feed(&mut n, 
        addr(3),
        Message::Dead(Dead {
            incarnation: Incarnation(1),
            node: "dead-peer".into(),
            from: "accuser".into(),
        }),
        t,
    );
    // The dead broadcast is in the queue; gossip ticks may target the
    // dead member itself for gossip_to_the_dead (30 s).
    let out = run_until(&mut n, t + Duration::from_secs(10));
    let gossiped_to_dead = out.iter().any(|o| match o {
        OwnedOutput::Packet { to, .. } => *to == addr(2),
        _ => false,
    });
    assert!(
        gossiped_to_dead,
        "gossip must keep flowing to recently dead members"
    );
}

#[test]
fn reconnect_push_pulls_a_dead_member() {
    let mut cfg = Config::lan();
    cfg.reconnect_interval = Some(Duration::from_secs(5));
    cfg.push_pull_interval = None; // isolate the reconnect path
    let mut n = new_node(cfg);
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    feed(&mut n, 
        addr(3),
        Message::Dead(Dead {
            incarnation: Incarnation(1),
            node: "p".into(),
            from: "accuser".into(),
        }),
        Time::from_secs(2),
    );
    let out = run_until(&mut n, Time::from_secs(20));
    let reconnects = out
        .iter()
        .filter(|o| {
            matches!(o, OwnedOutput::Stream { to, msg: Message::PushPull(pp) } if *to == addr(2) && !pp.reply)
        })
        .count();
    assert!(
        reconnects >= 1,
        "reconnect must push-pull the dead member (saw {reconnects})"
    );
}

/// Drives two real `SwimNode`s against each other (no simulator): an
/// indirect probe round-trip through a relay node, end to end.
#[test]
fn indirect_probe_roundtrip_between_nodes() {
    let now = Time::from_secs(1);
    let mut origin = SwimNode::new("origin".into(), addr(1), Config::lan().lifeguard(), 1);
    origin.start(Time::ZERO);
    let mut relay = SwimNode::new("relay".into(), addr(2), Config::lan().lifeguard(), 2);
    relay.start(Time::ZERO);
    let mut target = SwimNode::new("target".into(), addr(3), Config::lan().lifeguard(), 3);
    target.start(Time::ZERO);

    // Everyone knows everyone.
    for (n, others) in [
        (&mut origin, [("relay", 2u8), ("target", 3u8)]),
        (&mut relay, [("origin", 1), ("target", 3)]),
        (&mut target, [("origin", 1), ("relay", 2)]),
    ] {
        for (name, i) in others {
            add_peer(n, name, i, now);
        }
    }

    // Origin sends an indirect ping request to relay about target.
    let req = Message::IndirectPing(lifeguard_proto::IndirectPing {
        seq: lifeguard_proto::SeqNo(77),
        target: "target".into(),
        target_addr: addr(3),
        nack: true,
        source: "origin".into(),
        source_addr: addr(1),
    });
    let relay_out = feed(&mut relay, addr(1), req, now);

    // Relay pings target.
    let (to, packet) = relay_out
        .iter()
        .find_map(|o| match o {
            OwnedOutput::Packet { to, payload } => Some((*to, payload.clone())),
            _ => None,
        })
        .expect("relay must ping the target");
    assert_eq!(to, addr(3));

    // Target handles the ping and acks back to relay.
    let mut target_out = Vec::new();
    for msg in compound::decode_packet(&packet).unwrap() {
        target_out.extend(feed(&mut target, addr(2), msg, now + Duration::from_millis(1)));
    }
    let (to, packet) = target_out
        .iter()
        .find_map(|o| match o {
            OwnedOutput::Packet { to, payload } => Some((*to, payload.clone())),
            _ => None,
        })
        .expect("target must ack");
    assert_eq!(to, addr(2));

    // Relay forwards the ack to origin with the origin's sequence number.
    let mut relay_fwd = Vec::new();
    for msg in compound::decode_packet(&packet).unwrap() {
        relay_fwd.extend(feed(&mut relay, addr(3), msg, now + Duration::from_millis(2)));
    }
    let forwarded = relay_fwd
        .iter()
        .find_map(|o| match o {
            OwnedOutput::Packet { to, payload } => Some((*to, payload.clone())),
            _ => None,
        })
        .expect("relay must forward the ack");
    assert_eq!(forwarded.0, addr(1));
    let msgs = compound::decode_packet(&forwarded.1).unwrap();
    assert!(msgs
        .iter()
        .any(|m| matches!(m, Message::Ack(a) if a.seq == lifeguard_proto::SeqNo(77))));
}

/// A suspect about an unknown member is ignored; a dead about an
/// unknown member is ignored (no panic, no phantom records).
#[test]
fn gossip_about_unknown_members_is_ignored() {
    let mut n = new_node(Config::lan());
    let before = n.members().count();
    feed(&mut n, 
        addr(2),
        Message::Suspect(Suspect {
            incarnation: Incarnation(5),
            node: "ghost".into(),
            from: "accuser".into(),
        }),
        Time::from_secs(1),
    );
    feed(&mut n, 
        addr(2),
        Message::Dead(Dead {
            incarnation: Incarnation(5),
            node: "ghost".into(),
            from: "accuser".into(),
        }),
        Time::from_secs(1),
    );
    assert_eq!(n.members().count(), before);
    assert!(n.member(&"ghost".into()).is_none());
}

/// Left nodes do not probe, gossip or push-pull.
#[test]
fn left_node_goes_quiet() {
    let mut n = new_node(Config::lan());
    add_peer(&mut n, "p", 2, Time::from_secs(1));
    n.handle_input(Input::Leave, Time::from_secs(2)).unwrap();
    let leave_out = drain(&mut n);
    assert!(!leave_out.is_empty(), "leave gossips the departure");
    // After the leave flush, the node stays quiet: no pings.
    let out = run_until(&mut n, Time::from_secs(30));
    let pings = out
        .iter()
        .filter_map(|o| match o {
            OwnedOutput::Packet { payload, .. } => compound::decode_packet(payload).ok(),
            _ => None,
        })
        .flatten()
        .filter(|m| matches!(m, Message::Ping(_)))
        .count();
    assert_eq!(pings, 0, "a departed node must not probe");
}
