//! Model-agreement property tests for the hierarchical timer wheel: the
//! wheel is driven against a naive sorted-Vec reference model through
//! randomized schedule / cancel / reschedule / advance interleavings and
//! must agree on every fired timer, every next-deadline report and every
//! length — including same-instant ordering (insertion order), sub-tick
//! deadlines, and deadlines that wrap past wheel level boundaries
//! (level 0 spans ~65 ms, level 1 ~4.2 s, level 2 ~4.5 min).

use proptest::prelude::*;

use lifeguard_core::time::Time;
use lifeguard_core::timer_wheel::{TimerKey, TimerWheel};

/// The reference model: a flat vector of `(deadline µs, order, id)`.
/// Firing order is `(deadline, order)` — exactly the contract a
/// `BinaryHeap<(Time, u64)>` of lazily-invalidated entries provides,
/// minus the staleness: cancelled entries are really removed.
#[derive(Default)]
struct NaiveTimers {
    entries: Vec<(u64, u64, u32)>,
    order: u64,
}

impl NaiveTimers {
    fn schedule(&mut self, at: u64, id: u32) {
        self.entries.push((at, self.order, id));
        self.order += 1;
    }

    fn cancel(&mut self, id: u32) -> bool {
        match self.entries.iter().position(|&(_, _, i)| i == id) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    fn reschedule(&mut self, id: u32, at: u64) -> bool {
        // The wheel gives a rescheduled timer a fresh insertion order;
        // mirror that.
        if self.cancel(id) {
            self.schedule(at, id);
            true
        } else {
            false
        }
    }

    fn next_deadline(&self) -> Option<u64> {
        self.entries.iter().min_by_key(|&&(at, ord, _)| (at, ord)).map(|&(at, _, _)| at)
    }

    fn pop_due(&mut self, now: u64) -> Option<(u64, u32)> {
        let pos = self
            .entries
            .iter()
            .enumerate()
            .filter(|&(_, &(at, _, _))| at <= now)
            .min_by_key(|&(_, &(at, ord, _))| (at, ord))
            .map(|(pos, _)| pos)?;
        let (at, _, id) = self.entries.remove(pos);
        Some((at, id))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Turns a raw delay seed into a span that exercises every wheel level:
/// same-tick collisions, level-0 spans, level-1/2 cascades, and
/// far-future parking.
fn shaped_delay(kind: u8, raw: u64) -> u64 {
    match kind % 6 {
        0 => 0,                                  // same instant
        1 => raw % 1_024,                        // inside one tick
        2 => raw % 70_000,                       // around the level-0 span (~65 ms)
        3 => raw % 5_000_000,                    // around the level-1 span (~4.2 s)
        4 => raw % 300_000_000,                  // around the level-2 span (~4.5 min)
        _ => raw % 100_000_000_000,              // far future (~28 h): upper levels
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The wheel agrees with the sorted-Vec model on every operation.
    #[test]
    fn wheel_matches_naive_model(
        ops in proptest::collection::vec(
            (0u8..8, 0u8..6, any::<u64>(), 0u8..64),
            1..250,
        )
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut model = NaiveTimers::default();
        // Live handles: (id, key, deadline µs). Parallel to the model.
        let mut live: Vec<(u32, TimerKey, u64)> = Vec::new();
        let mut next_id: u32 = 0;
        let mut now: u64 = 0;

        for (op, kind, raw, pick) in ops {
            match op {
                // Schedule (weighted heaviest).
                0..=2 => {
                    let at = now + shaped_delay(kind, raw);
                    let id = next_id;
                    next_id += 1;
                    let key = wheel.schedule(Time::from_micros(at), id);
                    model.schedule(at, id);
                    live.push((id, key, at));
                    prop_assert_eq!(wheel.deadline_of(key), Some(Time::from_micros(at)));
                }
                // Cancel a live timer.
                3 => {
                    if live.is_empty() {
                        continue;
                    }
                    let pos = pick as usize % live.len();
                    let (id, key, _) = live.swap_remove(pos);
                    prop_assert_eq!(wheel.cancel(key), Some(id));
                    prop_assert!(model.cancel(id));
                    // A second cancel through the same key is inert.
                    prop_assert_eq!(wheel.cancel(key), None);
                }
                // Reschedule a live timer (both directions).
                4 => {
                    if live.is_empty() {
                        continue;
                    }
                    let pos = pick as usize % live.len();
                    let (id, key, _) = live[pos];
                    let at = now + shaped_delay(kind, raw);
                    let new_key = wheel.reschedule(key, Time::from_micros(at));
                    prop_assert!(new_key.is_some());
                    prop_assert!(model.reschedule(id, at));
                    // The old key died with the reschedule.
                    prop_assert_eq!(wheel.cancel(key), None);
                    live[pos] = (id, new_key.unwrap(), at);
                }
                // Cancel through a deliberately stale key.
                5 => {
                    if live.is_empty() {
                        continue;
                    }
                    let pos = pick as usize % live.len();
                    let (id, key, at) = live[pos];
                    let new_key = wheel.reschedule(key, Time::from_micros(at)).unwrap();
                    prop_assert!(model.reschedule(id, at));
                    live[pos] = (id, new_key, at);
                    prop_assert_eq!(wheel.cancel(key), None, "stale key must stay dead");
                }
                // Advance time and drain everything due, comparing fires
                // one by one.
                _ => {
                    now += shaped_delay(kind, raw);
                    let t = Time::from_micros(now);
                    loop {
                        let expected = model.pop_due(now);
                        let got = wheel.pop_due(t);
                        prop_assert_eq!(
                            got.map(|(at, id)| (at.as_micros(), id)),
                            expected,
                            "divergence at now={}", now
                        );
                        match expected {
                            Some((_, id)) => live.retain(|&(i, _, _)| i != id),
                            None => break,
                        }
                    }
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
            prop_assert_eq!(
                wheel.next_deadline().map(Time::as_micros),
                model.next_deadline()
            );
        }

        // Final full drain must agree to the last timer.
        loop {
            let expected = model.pop_due(u64::MAX);
            let got = wheel.pop_earliest();
            prop_assert_eq!(got.map(|(at, id)| (at.as_micros(), id)), expected);
            if expected.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Same-tick ordering: any interleaving of schedules onto the same
    /// few instants fires in exact insertion order per instant.
    #[test]
    fn same_tick_ordering_is_insertion_order(
        slots in proptest::collection::vec(0u8..4, 1..120)
    ) {
        let mut wheel = TimerWheel::new();
        let base = 5_000u64;
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for (i, s) in slots.iter().enumerate() {
            // Four deadlines inside two adjacent ticks (tick = 1024 µs).
            let at = base + [0u64, 500, 1_100, 1_600][*s as usize % 4];
            wheel.schedule(Time::from_micros(at), i);
            expected.push((at, i));
        }
        expected.sort_by_key(|&(at, i)| (at, i));
        let mut got = Vec::new();
        while let Some((at, i)) = wheel.pop_due(Time::from_micros(base + 2_000)) {
            got.push((at.as_micros(), i));
        }
        prop_assert_eq!(got, expected);
    }
}
