//! The Local Health Multiplier (LHM).
//!
//! Lifeguard's LHA-Probe component models the health of the *local*
//! failure detector as a saturating counter in `[0, S]` (paper §IV-A).
//! The counter moves on four events:
//!
//! | event | delta |
//! |---|---|
//! | successful probe (`ping`/`ping-req` acked) | −1 |
//! | failed probe | +1 |
//! | refuting a suspicion about ourselves | +1 |
//! | probe with missed `nack` | +1 |
//!
//! The probe interval and timeout are scaled by `LHM + 1`, so a member
//! that suspects itself of being slow both probes less aggressively and
//! waits longer before accusing others.

use std::time::Duration;

use crate::time::scale_duration;

/// Saturating local-health counter.
///
/// ```
/// use lifeguard_core::awareness::Awareness;
/// use std::time::Duration;
///
/// let mut lhm = Awareness::new(8);
/// lhm.apply_delta(3);
/// assert_eq!(lhm.score(), 3);
/// // Timeouts scale by (score + 1).
/// assert_eq!(lhm.scale(Duration::from_secs(1)), Duration::from_secs(4));
/// ```
#[derive(Clone, Debug)]
pub struct Awareness {
    score: u32,
    max: u32,
}

impl Awareness {
    /// Creates a healthy (score 0) counter saturating at `max` (the
    /// paper's `S`). With `max == 0` the counter is inert, which is how
    /// plain SWIM (LHA-Probe disabled) is expressed.
    pub fn new(max: u32) -> Self {
        Awareness { score: 0, max }
    }

    /// Current health score: 0 is maximally healthy.
    pub fn score(&self) -> u32 {
        self.score
    }

    /// The saturation limit `S`.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Whether the local node currently considers itself degraded.
    pub fn is_degraded(&self) -> bool {
        self.score > 0
    }

    /// Applies a health event delta, clamping to `[0, S]`. Returns the
    /// new score.
    pub fn apply_delta(&mut self, delta: i32) -> u32 {
        let next = self.score as i64 + delta as i64;
        self.score = next.clamp(0, self.max as i64) as u32;
        self.score
    }

    /// Scales a base duration by `score + 1`, per the paper:
    /// `ProbeInterval = BaseProbeInterval · (LHM + 1)`.
    pub fn scale(&self, base: Duration) -> Duration {
        scale_duration(base, (self.score + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy() {
        let a = Awareness::new(8);
        assert_eq!(a.score(), 0);
        assert!(!a.is_degraded());
        assert_eq!(a.max(), 8);
    }

    #[test]
    fn saturates_at_max() {
        let mut a = Awareness::new(8);
        for _ in 0..100 {
            a.apply_delta(1);
        }
        assert_eq!(a.score(), 8);
    }

    #[test]
    fn never_goes_below_zero() {
        let mut a = Awareness::new(8);
        a.apply_delta(-5);
        assert_eq!(a.score(), 0);
        a.apply_delta(2);
        a.apply_delta(-100);
        assert_eq!(a.score(), 0);
    }

    #[test]
    fn paper_scaling_extremes() {
        // S = 8 ⇒ interval backs off to 9 s and timeout to 4.5 s (§IV-A).
        let mut a = Awareness::new(8);
        a.apply_delta(8);
        assert_eq!(a.scale(Duration::from_secs(1)), Duration::from_secs(9));
        assert_eq!(
            a.scale(Duration::from_millis(500)),
            Duration::from_millis(4500)
        );
    }

    #[test]
    fn inert_when_max_is_zero() {
        let mut a = Awareness::new(0);
        a.apply_delta(5);
        assert_eq!(a.score(), 0);
        assert_eq!(a.scale(Duration::from_secs(1)), Duration::from_secs(1));
    }

    #[test]
    fn apply_delta_returns_new_score() {
        let mut a = Awareness::new(4);
        assert_eq!(a.apply_delta(2), 2);
        assert_eq!(a.apply_delta(-1), 1);
    }
}
