//! Per-member records.

use bytes::Bytes;
use lifeguard_proto::{Incarnation, MemberState, NodeAddr, NodeName, PushNodeState};

use crate::time::Time;

/// Everything the local node knows about one group member.
#[derive(Clone, Debug)]
pub struct Member {
    /// The member's unique name.
    pub name: NodeName,
    /// The member's last known address.
    pub addr: NodeAddr,
    /// The member's last known incarnation.
    pub incarnation: Incarnation,
    /// The member's state as believed locally.
    pub state: MemberState,
    /// When `state` last changed (local clock).
    pub state_change: Time,
    /// Opaque application metadata from the member's `alive` messages.
    pub meta: Bytes,
    /// Value of the owning [`Membership`](crate::membership::Membership)
    /// table's update sequence when this record last changed — the
    /// watermark delta push-pull filters on. Local bookkeeping only,
    /// never on the wire; stamped by the table, not by callers.
    pub updated_seq: u64,
}

impl Member {
    /// Creates a new alive member record.
    pub fn new(name: NodeName, addr: NodeAddr, incarnation: Incarnation, now: Time) -> Self {
        Member {
            name,
            addr,
            incarnation,
            state: MemberState::Alive,
            state_change: now,
            meta: Bytes::new(),
            updated_seq: 0,
        }
    }

    /// Transitions to `state` at `now`, recording the change time only if
    /// the state actually changed.
    pub fn set_state(&mut self, state: MemberState, now: Time) {
        if self.state != state {
            self.state = state;
            self.state_change = now;
        }
    }

    /// Whether the member participates in probing and gossip fan-out.
    pub fn is_live(&self) -> bool {
        self.state.is_live()
    }

    /// Converts to the push-pull wire representation.
    pub fn to_push_state(&self) -> PushNodeState {
        PushNodeState {
            name: self.name.clone(),
            addr: self.addr,
            incarnation: self.incarnation,
            state: self.state,
            meta: self.meta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member() -> Member {
        Member::new(
            "a".into(),
            NodeAddr::new([10, 0, 0, 1], 7946),
            Incarnation(3),
            Time::from_secs(1),
        )
    }

    #[test]
    fn new_member_is_alive() {
        let m = member();
        assert_eq!(m.state, MemberState::Alive);
        assert!(m.is_live());
        assert_eq!(m.state_change, Time::from_secs(1));
    }

    #[test]
    fn set_state_records_change_time_once() {
        let mut m = member();
        m.set_state(MemberState::Suspect, Time::from_secs(5));
        assert_eq!(m.state_change, Time::from_secs(5));
        // Same state again: change time untouched.
        m.set_state(MemberState::Suspect, Time::from_secs(9));
        assert_eq!(m.state_change, Time::from_secs(5));
        m.set_state(MemberState::Dead, Time::from_secs(9));
        assert_eq!(m.state_change, Time::from_secs(9));
        assert!(!m.is_live());
    }

    #[test]
    fn push_state_roundtrip_fields() {
        let m = member();
        let ps = m.to_push_state();
        assert_eq!(ps.name, m.name);
        assert_eq!(ps.addr, m.addr);
        assert_eq!(ps.incarnation, m.incarnation);
        assert_eq!(ps.state, m.state);
    }
}
