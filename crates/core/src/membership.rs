//! The local membership table.
//!
//! Stores one [`Member`] record per known node and provides the random
//! sampling primitives the protocol needs (indirect-probe helpers, gossip
//! fan-out targets). Incarnation-precedence *decisions* live in the node
//! state machine; this module only stores facts.

use std::collections::BTreeMap;

use lifeguard_proto::{MemberState, NodeName};
use rand::{Rng, RngExt};

use crate::member::Member;
use crate::time::Time;

/// The membership table of a single node.
///
/// The local node itself is stored in the table (as memberlist does), so
/// `n` counts include self.
#[derive(Clone, Debug, Default)]
pub struct Membership {
    members: BTreeMap<NodeName, Member>,
}

impl Membership {
    /// Creates an empty table.
    pub fn new() -> Self {
        Membership::default()
    }

    /// Number of known members in any state (including dead ones still
    /// retained).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of live (alive or suspect) members, the `n` used for
    /// suspicion timeouts and retransmit limits.
    pub fn live_count(&self) -> usize {
        self.members.values().filter(|m| m.is_live()).count()
    }

    /// Number of members currently believed alive (not suspect).
    pub fn alive_count(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.state == MemberState::Alive)
            .count()
    }

    /// Looks up a member by name.
    pub fn get(&self, name: &NodeName) -> Option<&Member> {
        self.members.get(name)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &NodeName) -> Option<&mut Member> {
        self.members.get_mut(name)
    }

    /// Inserts or replaces a member record. Returns the previous record.
    pub fn upsert(&mut self, member: Member) -> Option<Member> {
        self.members.insert(member.name.clone(), member)
    }

    /// Removes a member record entirely (dead-node reaping).
    pub fn remove(&mut self, name: &NodeName) -> Option<Member> {
        self.members.remove(name)
    }

    /// Iterates over all member records in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Member> {
        self.members.values()
    }

    /// Names of members that have been dead/left since before
    /// `reap_before` and can be forgotten.
    pub fn reapable(&self, reap_before: Time) -> Vec<NodeName> {
        self.members
            .values()
            .filter(|m| {
                matches!(m.state, MemberState::Dead | MemberState::Left)
                    && m.state_change < reap_before
            })
            .map(|m| m.name.clone())
            .collect()
    }

    /// Selects up to `k` distinct random members satisfying `filter`,
    /// using a partial Fisher–Yates shuffle for uniformity.
    ///
    /// The backing map iterates in name order, so selection is fully
    /// deterministic for a given RNG stream.
    pub fn sample<R: Rng>(
        &self,
        k: usize,
        rng: &mut R,
        mut filter: impl FnMut(&Member) -> bool,
    ) -> Vec<&Member> {
        let mut candidates: Vec<&Member> = self.members.values().filter(|m| filter(m)).collect();
        let n = candidates.len();
        let take = k.min(n);
        for i in 0..take {
            let j = rng.random_range(i..n);
            candidates.swap(i, j);
        }
        candidates.truncate(take);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::{Incarnation, NodeAddr};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn addr(i: u8) -> NodeAddr {
        NodeAddr::new([10, 0, 0, i], 7946)
    }

    fn table(n: u8) -> Membership {
        let mut t = Membership::new();
        for i in 0..n {
            t.upsert(Member::new(
                format!("node-{i}").into(),
                addr(i),
                Incarnation(0),
                Time::ZERO,
            ));
        }
        t
    }

    #[test]
    fn counts_track_states() {
        let mut t = table(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.live_count(), 5);
        assert_eq!(t.alive_count(), 5);

        t.get_mut(&"node-0".into())
            .unwrap()
            .set_state(MemberState::Suspect, Time::from_secs(1));
        assert_eq!(t.live_count(), 5);
        assert_eq!(t.alive_count(), 4);

        t.get_mut(&"node-1".into())
            .unwrap()
            .set_state(MemberState::Dead, Time::from_secs(1));
        assert_eq!(t.live_count(), 4);
        assert_eq!(t.len(), 5, "dead members are retained");
    }

    #[test]
    fn upsert_replaces_and_returns_previous() {
        let mut t = table(1);
        let prev = t.upsert(Member::new(
            "node-0".into(),
            addr(9),
            Incarnation(7),
            Time::ZERO,
        ));
        assert_eq!(prev.unwrap().incarnation, Incarnation(0));
        assert_eq!(t.get(&"node-0".into()).unwrap().incarnation, Incarnation(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sample_respects_filter_and_k() {
        let t = table(10);
        let mut rng = StdRng::seed_from_u64(42);
        let picked = t.sample(3, &mut rng, |m| m.name.as_str() != "node-0");
        assert_eq!(picked.len(), 3);
        assert!(picked.iter().all(|m| m.name.as_str() != "node-0"));
        // Distinct members.
        let mut names: Vec<_> = picked.iter().map(|m| m.name.clone()).collect();
        names.dedup();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn sample_with_k_larger_than_population() {
        let t = table(2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(10, &mut rng, |_| true).len(), 2);
        assert_eq!(t.sample(10, &mut rng, |_| false).len(), 0);
    }

    #[test]
    fn sample_is_deterministic_for_seed() {
        let t = table(20);
        let a: Vec<_> = t
            .sample(5, &mut StdRng::seed_from_u64(7), |_| true)
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let b: Vec<_> = t
            .sample(5, &mut StdRng::seed_from_u64(7), |_| true)
            .iter()
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let t = table(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = HashMap::new();
        for _ in 0..5000 {
            for m in t.sample(1, &mut rng, |_| true) {
                *hits.entry(m.name.clone()).or_insert(0u32) += 1;
            }
        }
        // Each of the 10 members should get ~500 of 5000 draws.
        for (name, count) in &hits {
            assert!(
                (350..650).contains(count),
                "{name} drawn {count} times, expected ~500"
            );
        }
    }

    #[test]
    fn reapable_finds_old_dead_members() {
        let mut t = table(3);
        t.get_mut(&"node-0".into())
            .unwrap()
            .set_state(MemberState::Dead, Time::from_secs(10));
        t.get_mut(&"node-1".into())
            .unwrap()
            .set_state(MemberState::Left, Time::from_secs(50));
        let reap = t.reapable(Time::from_secs(30));
        assert_eq!(reap, vec![NodeName::from("node-0")]);
        t.remove(&"node-0".into());
        assert_eq!(t.len(), 2);
    }
}
