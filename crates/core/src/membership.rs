//! The local membership table.
//!
//! Stores one [`Member`] record per known node and provides the random
//! sampling primitives the protocol needs (indirect-probe helpers, gossip
//! fan-out targets). Incarnation-precedence *decisions* live in the node
//! state machine; this module only stores facts.
//!
//! # Sharded layout
//!
//! Records live in S independent shards (default 1), each a slab
//! (`Vec<Option<Slot>>` + free list) addressed through a
//! `HashMap<NodeName, slot>` name index, so lookups are O(1) instead of
//! the seed's O(log n) `BTreeMap` walk. A member's shard is chosen by a
//! stable FNV-1a hash of its name, so at 100k members each shard's slab
//! and index stay small enough to be cache-friendly while the table as a
//! whole keeps one coherent view. Two **global** dense ref vectors
//! partition the table by liveness class — `live` (alive | suspect) and
//! `gone` (dead | left) — and an `alive` counter tracks the strictly
//! alive subset. That makes [`Membership::live_count`] /
//! [`Membership::alive_count`] O(1) (they were full O(n) scans, invoked
//! on every suspicion start and every transmit-limit computation), and
//! lets [`Membership::sample`] run a *lazy* partial Fisher–Yates over a
//! pool's dense positions: O(inspected) ≈ O(k) work and no O(n)
//! candidate `Vec` per call.
//!
//! # Shard-count invariance
//!
//! Sharding is an implementation detail: every observable order is
//! derived from the global pools, the global `update_seq`, or the name
//! index — never from shard layout — so the same operation sequence
//! produces identical results (samples, iteration, `changed_since`) at
//! any shard count. Concretely: the liveness pools are global (sampling
//! draws the same seeded stream regardless of S), [`Membership::iter`]
//! walks pool order, and [`Membership::changed_since`] k-way-merges the
//! per-shard change logs by the globally unique update seq. The
//! determinism matrix test in `tests/` pins this across S ∈ {1, 4, 16}.
//!
//! Because the pools are derived from member state, state changes must
//! go through the table ([`Membership::update`] or
//! [`Membership::set_state`]); there is deliberately no `get_mut`.

use std::collections::{HashMap, VecDeque};

use lifeguard_proto::{MemberState, NodeName};
use rand::{Rng, RngExt};

use crate::member::Member;
use crate::time::Time;

/// Which liveness pool a sampling call draws from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SamplePool {
    /// Alive and suspect members (failure-detector participants).
    Live,
    /// Dead and left members still retained in the table.
    Gone,
    /// Every known member.
    All,
}

/// Stable handle to one record: which shard, which slot within it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct MemberRef {
    shard: u32,
    slot: u32,
}

#[derive(Clone, Debug)]
struct Slot {
    member: Member,
    /// Position of this record's ref inside its (global) pool vector.
    pos: usize,
}

/// One cache-friendly slice of the table. All orders observable through
/// the public API come from the facade's global structures; a shard only
/// owns storage, its name index, and its slice of the change log.
#[derive(Clone, Debug, Default)]
struct Shard {
    // bounded: one slot per member routed here (dead members are reaped after the retention horizon), freed slots are recycled via `free`
    slots: Vec<Option<Slot>>,
    // bounded: ≤ |slots| — holds only currently-empty slot ids
    free: Vec<u32>,
    // bounded: one key per member routed here, removed on reap
    index: HashMap<NodeName, u32>,
    /// This shard's slice of the change log: `(seq, slot id)` in
    /// ascending-seq order (seqs come from the facade's global counter),
    /// one *live* entry per member of the shard. Stale entries are
    /// skipped on read and dropped by amortised compaction.
    // bounded: compaction in `stamp` keeps len ≤ max(64, 2 × shard member count)
    log: VecDeque<(u64, u32)>,
}

impl Shard {
    fn slot(&self, id: u32) -> Option<&Slot> {
        self.slots.get(id as usize)?.as_ref()
    }
}

/// The membership table of a single node.
///
/// The local node itself is stored in the table (as memberlist does), so
/// `n` counts include self.
#[derive(Clone, Debug)]
pub struct Membership {
    /// At least one shard, fixed at construction.
    // bounded: fixed shard count chosen at construction, never grows
    shards: Vec<Shard>,
    /// Dense refs of alive | suspect members, across all shards.
    // bounded: ≤ cluster size — one ref per live member
    live: Vec<MemberRef>,
    /// Dense refs of dead | left members, across all shards.
    // bounded: ≤ cluster size — one ref per retained dead/left member, drained by reaping
    gone: Vec<MemberRef>,
    /// Number of members in state `Alive` exactly.
    alive: usize,
    /// Total members across all shards (any state).
    members: usize,
    /// Monotonically increasing sequence, bumped once per observable
    /// record change ([`Membership::update_seq`]). Global across shards,
    /// so merged change-log order is a total order.
    update_seq: u64,
}

impl Default for Membership {
    fn default() -> Self {
        Membership::with_shards(1)
    }
}

impl Membership {
    /// Creates an empty single-shard table.
    pub fn new() -> Self {
        Membership::default()
    }

    /// Creates an empty table with `shards` shards (clamped to ≥ 1).
    /// The shard count is invisible to every observable behaviour — see
    /// the module docs — it only changes the memory layout.
    pub fn with_shards(shards: usize) -> Self {
        Membership {
            shards: vec![Shard::default(); shards.max(1)],
            live: Vec::new(),
            gone: Vec::new(),
            alive: 0,
            members: 0,
            update_seq: 0,
        }
    }

    /// The fixed shard count chosen at construction.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of known members in any state (including dead ones still
    /// retained). O(1).
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Number of live (alive or suspect) members, the `n` used for
    /// suspicion timeouts and retransmit limits. O(1).
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of members currently believed alive (not suspect). O(1).
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Looks up a member by name. O(1).
    pub fn get(&self, name: &NodeName) -> Option<&Member> {
        // lint: allow(panic_path) — `shard_of` yields `hash % shards.len()` (0 for one shard); `shards` is non-empty (clamped to >= 1) and never resized, so the index is in bounds
        let shard = &self.shards[self.shard_of(name)];
        let &id = shard.index.get(name)?;
        Some(&shard.slot(id)?.member)
    }

    /// The table's current update sequence: the stamp of the most
    /// recent record change. Strictly monotonic per observable change,
    /// never reused, local to this table instance. O(1).
    pub fn update_seq(&self) -> u64 {
        self.update_seq
    }

    /// Total change-log entries currently retained across all shards —
    /// the live cursor set plus stale entries not yet compacted away.
    /// Lazy per-shard compaction keeps this O(members) regardless of
    /// how many stamps churn has issued; property tests assert that
    /// bound. O(S).
    pub fn retained_log_len(&self) -> usize {
        self.shards.iter().map(|s| s.log.len()).sum()
    }

    /// Members whose record changed after `since` (in this table's own
    /// sequence space), newest first. O(S + changed): k-way-merges the
    /// per-shard change logs from their tails by the globally unique
    /// update seq, skipping superseded entries, so steady-state delta
    /// generation never touches the unchanged bulk of the table — and
    /// the merged order is identical at every shard count.
    ///
    /// `changed_since(0)` visits every member — a fresh watermark
    /// degenerates to a full-state exchange, which is what makes delta
    /// sync safe to bootstrap from nothing.
    pub fn changed_since(&self, since: u64) -> impl Iterator<Item = &Member> {
        ChangedSince::new(&self.shards, since)
    }

    /// Mutates the member named `name` through `f`, keeping the state
    /// counters and liveness pools consistent with whatever `f` changed.
    /// Returns `None` (without running `f`) if the member is unknown.
    ///
    /// This replaces the seed's `get_mut`: handing out `&mut Member`
    /// would let callers flip `state` behind the indexes' back.
    ///
    /// `f` must not change `member.name` — it is the index key. Use
    /// [`Membership::remove`] + [`Membership::upsert`] to rename.
    pub fn update<T>(&mut self, name: &NodeName, f: impl FnOnce(&mut Member) -> T) -> Option<T> {
        let si = self.shard_of(name);
        // lint: allow(panic_path) — `shard_of` yields `hash % shards.len()` (0 for one shard); `shards` is non-empty (clamped to >= 1) and never resized, so the index is in bounds
        let &id = self.shards[si].index.get(name)?;
        let r = MemberRef { shard: si as u32, slot: id };
        debug_invariant!(self.slot(r).is_some(), "membership index points at an empty slot");
        let slot = self.slot_mut(r)?;
        let before = slot.member.state;
        // Snapshot for change-stamping. The meta clone (a refcount
        // bump) keeps the old buffer alive across `f`, so an equal
        // pointer + length afterwards *proves* the buffer is unchanged
        // (`Bytes` is immutable and the allocator cannot have reused a
        // block that is still live). Only when the buffer genuinely
        // changed do we pay a content comparison — the borrowed alive
        // path reuses the stored buffer for unchanged metadata, so the
        // steady state stays on the pointer fast path.
        let before_key = (slot.member.state, slot.member.incarnation, slot.member.addr);
        let before_meta = slot.member.meta.clone();
        let out = f(&mut slot.member);
        let after = slot.member.state;
        let after_key = (slot.member.state, slot.member.incarnation, slot.member.addr);
        let after_meta = &slot.member.meta;
        let same_buffer = before_meta.len() == after_meta.len()
            && std::ptr::eq(before_meta.as_ref().as_ptr(), after_meta.as_ref().as_ptr());
        let meta_changed = !same_buffer && before_meta.as_ref() != after_meta.as_ref();
        debug_assert!(
            self.slot(r).is_some_and(|s| &s.member.name == name),
            "update() must not change the member's name (index key)"
        );
        self.reconcile(r, before, after);
        if before_key != after_key || meta_changed {
            self.stamp(r);
        }
        Some(out)
    }

    /// Transitions `name` to `state` at `now` (no-op timestamps for
    /// same-state transitions, per [`Member::set_state`]). Returns
    /// whether the member exists.
    pub fn set_state(&mut self, name: &NodeName, state: MemberState, now: Time) -> bool {
        self.update(name, |m| m.set_state(state, now)).is_some()
    }

    /// Inserts or replaces a member record. Returns the previous record.
    /// Always counts as a record change for [`Membership::changed_since`].
    pub fn upsert(&mut self, member: Member) -> Option<Member> {
        let si = self.shard_of(&member.name);
        // lint: allow(panic_path) — `shard_of` yields `hash % shards.len()` (0 for one shard); `shards` is non-empty (clamped to >= 1) and never resized, so the index is in bounds
        if let Some(id) = self.shards[si].index.get(&member.name).copied() {
            let r = MemberRef { shard: si as u32, slot: id };
            debug_invariant!(self.slot(r).is_some(), "membership index points at an empty slot");
            if let Some(slot) = self.slot_mut(r) {
                let before = slot.member.state;
                let after = member.state;
                let prev = std::mem::replace(&mut slot.member, member);
                self.reconcile(r, before, after);
                self.stamp(r);
                return Some(prev);
            }
            // Index pointed at an empty slot (table bug, unreachable in
            // debug builds): fall through to a fresh insert, which
            // overwrites the stale index entry and heals the table.
        }
        let name = member.name.clone();
        let state = member.state;
        // lint: allow(panic_path) — `shard_of` yields `hash % shards.len()` (0 for one shard); `shards` is non-empty (clamped to >= 1) and never resized, so the index is in bounds
        let shard = &mut self.shards[si];
        let id = match shard.free.pop() {
            Some(id) => {
                debug_invariant!((id as usize) < shard.slots.len(), "free-list id out of bounds");
                // lint: allow(panic_path) — free-list ids come from `remove`, which only ever pushes in-bounds slot ids
                shard.slots[id as usize] = Some(Slot { member, pos: 0 });
                id
            }
            None => {
                shard.slots.push(Some(Slot { member, pos: 0 }));
                (shard.slots.len() - 1) as u32
            }
        };
        shard.index.insert(name, id);
        self.members += 1;
        let r = MemberRef { shard: si as u32, slot: id };
        self.pool_push(r, state);
        if state == MemberState::Alive {
            self.alive += 1;
        }
        self.stamp(r);
        None
    }

    /// Removes a member record entirely (dead-node reaping). O(1).
    pub fn remove(&mut self, name: &NodeName) -> Option<Member> {
        let si = self.shard_of(name);
        // lint: allow(panic_path) — `shard_of` yields `hash % shards.len()` (0 for one shard); `shards` is non-empty (clamped to >= 1) and never resized, so the index is in bounds
        let id = self.shards[si].index.remove(name)?;
        self.members -= 1;
        let r = MemberRef { shard: si as u32, slot: id };
        debug_invariant!(self.slot(r).is_some(), "membership index points at an empty slot");
        let state = self.slot(r)?.member.state;
        self.pool_remove(r, state);
        if state == MemberState::Alive {
            self.alive -= 1;
        }
        // lint: allow(panic_path) — `shard_of` yields `hash % shards.len()` (0 for one shard); `shards` is non-empty (clamped to >= 1) and never resized, so the index is in bounds
        let shard = &mut self.shards[si];
        let slot = shard.slots.get_mut(id as usize)?.take()?;
        shard.free.push(id);
        Some(slot.member)
    }

    /// Iterates over all member records in pool order (live members
    /// first, then retained dead/left). The order is deterministic for a
    /// given operation history and — because the pools are global — the
    /// same at every shard count; it is otherwise unspecified.
    pub fn iter(&self) -> impl Iterator<Item = &Member> {
        self.live
            .iter()
            .chain(self.gone.iter())
            .filter_map(|&r| self.slot(r).map(|s| &s.member))
    }

    /// Members that have been dead/left since before `reap_before` and
    /// can be forgotten.
    ///
    /// Iterates the `gone` pool only, so the cost is O(retained dead),
    /// not O(n); collect the names before calling
    /// [`Membership::remove`].
    pub fn reapable(&self, reap_before: Time) -> impl Iterator<Item = &Member> {
        self.gone
            .iter()
            .filter_map(|&r| self.slot(r).map(|s| &s.member))
            .filter(move |m| m.state_change < reap_before)
    }

    /// Selects up to `k` distinct random members satisfying `filter`,
    /// uniformly among the members that satisfy it.
    ///
    /// Equivalent to a partial Fisher–Yates shuffle over the whole
    /// table, evaluated lazily: positions are materialised only as they
    /// are inspected, so the call does O(inspected) work — O(k) when the
    /// filter rejects few members — instead of filter-collecting all n
    /// members first.
    pub fn sample<R: Rng>(
        &self,
        k: usize,
        rng: &mut R,
        filter: impl FnMut(&Member) -> bool,
    ) -> Vec<&Member> {
        self.sample_pool(SamplePool::All, k, rng, filter)
    }

    /// [`Membership::sample`] restricted to one liveness pool, so
    /// callers that only want live (or only retained-dead) members never
    /// pay for the other class.
    pub fn sample_pool<R: Rng>(
        &self,
        pool: SamplePool,
        k: usize,
        rng: &mut R,
        filter: impl FnMut(&Member) -> bool,
    ) -> Vec<&Member> {
        let mut picked = Vec::new();
        self.sample_pool_with(pool, k, rng, filter, |m| picked.push(m));
        picked
    }

    /// Visitor form of [`Membership::sample_pool`]: each drawn member is
    /// passed to `visit` instead of being collected, so hot callers (the
    /// node's gossip/probe target selection) can copy the one field they
    /// need into a reusable buffer without allocating a `Vec<&Member>`
    /// per call.
    ///
    /// Draws are made against the **global** pool positions, so the RNG
    /// stream consumed — and therefore the members drawn — is identical
    /// at every shard count.
    pub fn sample_pool_with<'a, R: Rng>(
        &'a self,
        pool: SamplePool,
        k: usize,
        rng: &mut R,
        mut filter: impl FnMut(&Member) -> bool,
        mut visit: impl FnMut(&'a Member),
    ) {
        let n = match pool {
            SamplePool::Live => self.live.len(),
            SamplePool::Gone => self.gone.len(),
            SamplePool::All => self.live.len() + self.gone.len(),
        };
        if k == 0 || n == 0 {
            return;
        }
        // Lazy Fisher–Yates: `moved` records the positions whose value
        // differs from the identity permutation. Scanning a uniform
        // random permutation and keeping the first k filter-passing
        // members draws a uniform k-subset of the eligible members, in
        // uniform order — the same distribution as filtering first and
        // shuffling after, without building the O(n) candidate vector.
        let mut moved: HashMap<usize, usize> = HashMap::new();
        let mut picked = 0;
        let mut i = 0;
        while i < n && picked < k {
            let j = rng.random_range(i..n);
            let vj = moved.get(&j).copied().unwrap_or(j);
            let vi = moved.get(&i).copied().unwrap_or(i);
            moved.insert(j, vi);
            debug_invariant!(self.pool_member(pool, vj).is_some(), "pool position out of bounds");
            if let Some(member) = self.pool_member(pool, vj) {
                if filter(member) {
                    picked += 1;
                    visit(member);
                }
            }
            i += 1;
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The shard a member name routes to: a stable FNV-1a hash of the
    /// name bytes mod the shard count. Deliberately *not* the std
    /// `HashMap` hasher (randomised per-process) so the routing — and
    /// with it the per-shard memory layout — is reproducible run to run.
    fn shard_of(&self, name: &NodeName) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_str().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // lint: allow(panic_path) — `shards` is non-empty (clamped to >= 1) and never resized, so the divisor is never zero
        (h % self.shards.len() as u64) as usize
    }

    /// The occupied slot at `r`. The name indexes and the pool vectors
    /// only ever store refs of occupied slots, so a `None` here is a
    /// table bug — `debug_invariant!`-checked at each use site.
    fn slot(&self, r: MemberRef) -> Option<&Slot> {
        self.shards.get(r.shard as usize)?.slot(r.slot)
    }

    fn slot_mut(&mut self, r: MemberRef) -> Option<&mut Slot> {
        self.shards
            .get_mut(r.shard as usize)?
            .slots
            .get_mut(r.slot as usize)?
            .as_mut()
    }

    /// Assigns the next update-seq to the slot at `r` and logs the
    /// change in its shard's log slice. The log entry this supersedes
    /// (if any) becomes stale and is dropped lazily; per-shard
    /// compaction keeps each slice within 2× the shard's member count,
    /// so the amortised cost per change stays O(1).
    fn stamp(&mut self, r: MemberRef) {
        self.update_seq += 1;
        let seq = self.update_seq;
        debug_invariant!(self.slot(r).is_some(), "stamp() on an empty slot");
        if let Some(slot) = self.slot_mut(r) {
            slot.member.updated_seq = seq;
        }
        // lint: allow(panic_path) — `MemberRef::shard` is only ever written from `shard_of`, which stays below `shards.len()`; `shards` never resizes
        let shard = &mut self.shards[r.shard as usize];
        shard.log.push_back((seq, r.slot));
        if shard.log.len() > 64 && shard.log.len() > 2 * shard.index.len() {
            let slots = &shard.slots;
            shard.log.retain(|&(seq, id)| {
                slots
                    .get(id as usize)
                    .and_then(|s| s.as_ref())
                    .map(|s| s.member.updated_seq == seq)
                    .unwrap_or(false)
            });
        }
    }

    /// The member at virtual position `v` of a pool (All concatenates
    /// live then gone). `None` for an out-of-pool position.
    fn pool_member(&self, pool: SamplePool, v: usize) -> Option<&Member> {
        let r = match pool {
            SamplePool::Live => *self.live.get(v)?,
            SamplePool::Gone => *self.gone.get(v)?,
            SamplePool::All => {
                if v < self.live.len() {
                    *self.live.get(v)?
                } else {
                    *self.gone.get(v - self.live.len())?
                }
            }
        };
        Some(&self.slot(r)?.member)
    }

    /// Moves `r` between pools / adjusts counters after its state
    /// changed from `before` to `after`. O(1).
    fn reconcile(&mut self, r: MemberRef, before: MemberState, after: MemberState) {
        if before.is_live() != after.is_live() {
            self.pool_remove(r, before);
            self.pool_push(r, after);
        }
        match (before == MemberState::Alive, after == MemberState::Alive) {
            (false, true) => self.alive += 1,
            (true, false) => self.alive -= 1,
            _ => {}
        }
    }

    fn pool_push(&mut self, r: MemberRef, state: MemberState) {
        let pool = if state.is_live() {
            &mut self.live
        } else {
            &mut self.gone
        };
        pool.push(r);
        let pos = pool.len() - 1;
        debug_invariant!(self.slot(r).is_some(), "pool_push() on an empty slot");
        if let Some(slot) = self.slot_mut(r) {
            slot.pos = pos;
        }
    }

    fn pool_remove(&mut self, r: MemberRef, state: MemberState) {
        let Some(pos) = self.slot(r).map(|s| s.pos) else {
            debug_invariant!(false, "pool_remove() on an empty slot");
            return;
        };
        let pool = if state.is_live() {
            &mut self.live
        } else {
            &mut self.gone
        };
        debug_invariant!(pool.get(pos) == Some(&r), "pool position out of sync");
        if pos < pool.len() {
            // lint: allow(panic_path) — `pos < pool.len()` checked on the line above
            pool.swap_remove(pos);
        }
        if let Some(&swapped) = pool.get(pos) {
            if let Some(slot) = self.slot_mut(swapped) {
                slot.pos = pos;
            }
        }
    }

    /// Debug-only invariant check: counters, pools, and per-shard logs
    /// agree with a full recomputation (used by the property tests).
    /// Composes shard-wise: each shard's log slice is checked on its
    /// own, then the merged view is checked against the global counters.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let live_scan = self.iter().filter(|m| m.is_live()).count();
        let alive_scan = self
            .iter()
            .filter(|m| m.state == MemberState::Alive)
            .count();
        let gone_scan = self.iter().count() - live_scan;
        assert_eq!(self.live.len(), live_scan, "live pool out of sync");
        assert_eq!(self.gone.len(), gone_scan, "gone pool out of sync");
        assert_eq!(self.alive, alive_scan, "alive counter out of sync");
        let index_total: usize = self.shards.iter().map(|s| s.index.len()).sum();
        assert_eq!(index_total, live_scan + gone_scan, "indexes out of sync");
        assert_eq!(self.members, index_total, "member counter out of sync");
        for (si, shard) in self.shards.iter().enumerate() {
            for (name, &id) in &shard.index {
                assert_eq!(self.shard_of(name), si, "member routed to the wrong shard");
                let slot = shard.slot(id);
                assert!(slot.is_some(), "index points at an empty slot");
                let Some(slot) = slot else { continue };
                assert_eq!(&slot.member.name, name, "index points at wrong slot");
                let r = MemberRef { shard: si as u32, slot: id };
                let pool = if slot.member.state.is_live() {
                    &self.live
                } else {
                    &self.gone
                };
                assert_eq!(pool[slot.pos], r, "pool position out of sync");
            }
            // Per-shard change-log invariants: ascending seqs bounded by
            // the global counter, and exactly one live log entry per
            // member of the shard (so the merged `changed_since` is
            // complete at any watermark, including 0).
            let mut prev = 0;
            let mut live_entries = 0;
            for &(seq, id) in &shard.log {
                assert!(seq > prev, "log seqs must be strictly ascending");
                assert!(seq <= self.update_seq, "log seq beyond counter");
                prev = seq;
                if shard
                    .slot(id)
                    .map(|s| s.member.updated_seq == seq)
                    .unwrap_or(false)
                {
                    live_entries += 1;
                }
            }
            assert_eq!(
                live_entries,
                shard.index.len(),
                "each member must have exactly one live log entry in its shard"
            );
        }
        assert_eq!(
            self.changed_since(0).count(),
            index_total,
            "changed_since(0) must visit every member"
        );
        // The merged change feed must be strictly newest-first.
        let mut last = u64::MAX;
        for m in self.changed_since(0) {
            assert!(m.updated_seq < last, "merged change log out of order");
            last = m.updated_seq;
        }
    }
}

/// Newest-first k-way merge over the per-shard change logs.
///
/// Each cursor walks its shard's log slice from the tail; because every
/// entry carries a globally unique seq, picking the largest head seq at
/// each step yields the exact descending-seq order a single flat log
/// would have produced — the merged feed is shard-count-invariant.
/// A reverse cursor over one shard's log slice plus its current head
/// (`None` once the cursor has walked past `since`).
type LogCursor<'a> = (
    std::iter::Rev<std::collections::vec_deque::Iter<'a, (u64, u32)>>,
    Option<(u64, u32)>,
);

struct ChangedSince<'a> {
    shards: &'a [Shard],
    // bounded: one cursor per shard, sized once at construction
    heads: Vec<LogCursor<'a>>,
    since: u64,
}

impl<'a> ChangedSince<'a> {
    fn new(shards: &'a [Shard], since: u64) -> Self {
        let heads = shards
            .iter()
            .map(|s| {
                let mut it = s.log.iter().rev();
                let head = it.next().copied().filter(|&(seq, _)| seq > since);
                (it, head)
            })
            .collect();
        ChangedSince { shards, heads, since }
    }
}

impl<'a> Iterator for ChangedSince<'a> {
    type Item = &'a Member;

    fn next(&mut self) -> Option<&'a Member> {
        loop {
            // Pick the cursor holding the globally newest unvisited seq.
            let best = self
                .heads
                .iter()
                .enumerate()
                .filter_map(|(i, (_, head))| head.map(|(seq, id)| (seq, i, id)))
                .max()?;
            let (seq, si, id) = best;
            // lint: allow(panic_path) — `si` enumerates `self.heads` just above, so it is in bounds
            let (it, head) = &mut self.heads[si];
            *head = it.next().copied().filter(|&(s, _)| s > self.since);
            // lint: allow(panic_path) — `heads` was built with exactly one cursor per shard, so `si` is a valid shard index
            let Some(slot) = self.shards[si].slot(id) else {
                continue; // removed member: stale log entry
            };
            if slot.member.updated_seq == seq {
                return Some(&slot.member);
            }
            // Superseded entry (the member was re-stamped later): skip.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::{Incarnation, NodeAddr};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn addr(i: u8) -> NodeAddr {
        NodeAddr::new([10, 0, 0, i], 7946)
    }

    fn table_sharded(n: u8, shards: usize) -> Membership {
        let mut t = Membership::with_shards(shards);
        for i in 0..n {
            t.upsert(Member::new(
                format!("node-{i}").into(),
                addr(i),
                Incarnation(0),
                Time::ZERO,
            ));
        }
        t
    }

    fn table(n: u8) -> Membership {
        table_sharded(n, 1)
    }

    #[test]
    fn counts_track_states() {
        let mut t = table(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.live_count(), 5);
        assert_eq!(t.alive_count(), 5);

        t.set_state(&"node-0".into(), MemberState::Suspect, Time::from_secs(1));
        assert_eq!(t.live_count(), 5);
        assert_eq!(t.alive_count(), 4);

        t.set_state(&"node-1".into(), MemberState::Dead, Time::from_secs(1));
        assert_eq!(t.live_count(), 4);
        assert_eq!(t.len(), 5, "dead members are retained");
        t.check_invariants();
    }

    #[test]
    fn update_keeps_counters_in_sync() {
        let mut t = table(3);
        let out = t.update(&"node-2".into(), |m| {
            m.incarnation = Incarnation(9);
            m.set_state(MemberState::Suspect, Time::from_secs(2));
            m.incarnation
        });
        assert_eq!(out, Some(Incarnation(9)));
        assert_eq!(t.alive_count(), 2);
        assert_eq!(t.live_count(), 3);
        assert!(t.update(&"missing".into(), |_| ()).is_none());
        t.check_invariants();
    }

    #[test]
    fn upsert_replaces_and_returns_previous() {
        let mut t = table(1);
        let prev = t.upsert(Member::new(
            "node-0".into(),
            addr(9),
            Incarnation(7),
            Time::ZERO,
        ));
        assert_eq!(prev.unwrap().incarnation, Incarnation(0));
        assert_eq!(t.get(&"node-0".into()).unwrap().incarnation, Incarnation(7));
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn upsert_over_dead_member_restores_liveness_pools() {
        let mut t = table(2);
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(1));
        assert_eq!(t.live_count(), 1);
        t.upsert(Member::new(
            "node-0".into(),
            addr(0),
            Incarnation(2),
            Time::from_secs(2),
        ));
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.alive_count(), 2);
        t.check_invariants();
    }

    #[test]
    fn remove_recycles_slots() {
        let mut t = table(4);
        assert!(t.remove(&"node-1".into()).is_some());
        assert!(t.remove(&"node-1".into()).is_none());
        assert_eq!(t.len(), 3);
        t.upsert(Member::new(
            "node-9".into(),
            addr(9),
            Incarnation(0),
            Time::ZERO,
        ));
        assert_eq!(t.len(), 4);
        assert_eq!(t.live_count(), 4);
        t.check_invariants();
    }

    #[test]
    fn sample_respects_filter_and_k() {
        let t = table(10);
        let mut rng = StdRng::seed_from_u64(42);
        let picked = t.sample(3, &mut rng, |m| m.name.as_str() != "node-0");
        assert_eq!(picked.len(), 3);
        assert!(picked.iter().all(|m| m.name.as_str() != "node-0"));
        // Distinct members.
        let mut names: Vec<_> = picked.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn sample_with_k_larger_than_population() {
        let t = table(2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(10, &mut rng, |_| true).len(), 2);
        assert_eq!(t.sample(10, &mut rng, |_| false).len(), 0);
    }

    #[test]
    fn sample_is_deterministic_for_seed() {
        let t = table(20);
        let a: Vec<_> = t
            .sample(5, &mut StdRng::seed_from_u64(7), |_| true)
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let b: Vec<_> = t
            .sample(5, &mut StdRng::seed_from_u64(7), |_| true)
            .iter()
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let t = table(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = HashMap::new();
        for _ in 0..5000 {
            for m in t.sample(1, &mut rng, |_| true) {
                *hits.entry(m.name.clone()).or_insert(0u32) += 1;
            }
        }
        // Each of the 10 members should get ~500 of 5000 draws.
        for (name, count) in &hits {
            assert!(
                (350..650).contains(count),
                "{name} drawn {count} times, expected ~500"
            );
        }
    }

    #[test]
    fn sample_pool_separates_liveness_classes() {
        let mut t = table(6);
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(1));
        t.set_state(&"node-1".into(), MemberState::Left, Time::from_secs(1));
        t.set_state(&"node-2".into(), MemberState::Suspect, Time::from_secs(1));
        let mut rng = StdRng::seed_from_u64(5);
        let live = t.sample_pool(SamplePool::Live, 10, &mut rng, |_| true);
        assert_eq!(live.len(), 4);
        assert!(live.iter().all(|m| m.is_live()));
        let gone = t.sample_pool(SamplePool::Gone, 10, &mut rng, |_| true);
        assert_eq!(gone.len(), 2);
        assert!(gone.iter().all(|m| !m.is_live()));
        let all = t.sample_pool(SamplePool::All, 10, &mut rng, |_| true);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn changed_since_tracks_only_observable_changes() {
        let mut t = table(4);
        let base = t.update_seq();
        assert_eq!(t.changed_since(0).count(), 4, "inserts are changes");
        assert_eq!(t.changed_since(base).count(), 0);

        // A state change stamps exactly the touched member.
        t.set_state(&"node-1".into(), MemberState::Suspect, Time::from_secs(1));
        let changed: Vec<_> = t.changed_since(base).map(|m| m.name.clone()).collect();
        assert_eq!(changed, vec![NodeName::from("node-1")]);

        // A no-op update (nothing observable changed) does not stamp.
        let mid = t.update_seq();
        t.update(&"node-2".into(), |_m| {});
        t.set_state(&"node-1".into(), MemberState::Suspect, Time::from_secs(2));
        assert_eq!(t.update_seq(), mid);
        assert_eq!(t.changed_since(mid).count(), 0);

        // Incarnation and address changes stamp.
        t.update(&"node-2".into(), |m| m.incarnation = Incarnation(5));
        t.update(&"node-3".into(), |m| m.addr = addr(99));
        assert_eq!(t.changed_since(mid).count(), 2);

        // Re-touching a member keeps exactly one live entry for it.
        t.update(&"node-2".into(), |m| m.incarnation = Incarnation(6));
        assert_eq!(t.changed_since(mid).count(), 2);
        assert_eq!(t.changed_since(0).count(), 4);
        t.check_invariants();
    }

    #[test]
    fn changed_since_survives_removal_slot_reuse_and_compaction() {
        let mut t = table(8);
        // Churn hard enough to trigger compaction (log > 2 * members).
        for round in 0..40u64 {
            let i = (round % 8) as usize;
            let name = NodeName::from(format!("node-{i}"));
            if round % 11 == 3 {
                t.remove(&name);
                t.upsert(Member::new(name, addr(i as u8), Incarnation(round), Time::ZERO));
            } else {
                t.update(&name, |m| m.incarnation = Incarnation(100 + round));
            }
            t.check_invariants();
        }
        assert_eq!(t.changed_since(0).count(), 8);
        // The newest change is visible at the tightest watermark.
        let before = t.update_seq();
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(1));
        let changed: Vec<_> = t.changed_since(before).map(|m| m.name.clone()).collect();
        assert_eq!(changed, vec![NodeName::from("node-0")]);
    }

    #[test]
    fn reapable_finds_old_dead_members() {
        let mut t = table(3);
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(10));
        t.set_state(&"node-1".into(), MemberState::Left, Time::from_secs(50));
        let reap: Vec<NodeName> = t
            .reapable(Time::from_secs(30))
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(reap, vec![NodeName::from("node-0")]);
        t.remove(&"node-0".into());
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    // ---- shard-count invariance ---------------------------------------

    /// Drives the same operation script against tables at several shard
    /// counts and asserts every observable order agrees with the
    /// single-shard reference.
    fn assert_shard_invariant(script: impl Fn(&mut Membership)) {
        let mut reference = Membership::with_shards(1);
        script(&mut reference);
        reference.check_invariants();
        let snap = |t: &Membership, seed: u64| {
            let iter: Vec<NodeName> = t.iter().map(|m| m.name.clone()).collect();
            let changed: Vec<(NodeName, u64)> = t
                .changed_since(0)
                .map(|m| (m.name.clone(), m.updated_seq))
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let sampled: Vec<NodeName> = t
                .sample(5, &mut rng, |_| true)
                .iter()
                .map(|m| m.name.clone())
                .collect();
            let mut rng = StdRng::seed_from_u64(seed ^ 1);
            let live: Vec<NodeName> = t
                .sample_pool(SamplePool::Live, 3, &mut rng, |_| true)
                .iter()
                .map(|m| m.name.clone())
                .collect();
            (
                iter,
                changed,
                sampled,
                live,
                t.len(),
                t.live_count(),
                t.alive_count(),
                t.update_seq(),
            )
        };
        for shards in [4, 16] {
            let mut t = Membership::with_shards(shards);
            script(&mut t);
            t.check_invariants();
            assert_eq!(
                snap(&t, 99),
                snap(&reference, 99),
                "observable behaviour diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn sharding_is_observably_invisible_under_churn() {
        assert_shard_invariant(|t| {
            for i in 0..50u8 {
                t.upsert(Member::new(
                    format!("node-{i}").into(),
                    addr(i),
                    Incarnation(0),
                    Time::ZERO,
                ));
            }
            for round in 0..120u64 {
                let i = (round * 7 % 50) as usize;
                let name = NodeName::from(format!("node-{i}"));
                match round % 5 {
                    0 => {
                        t.set_state(&name, MemberState::Suspect, Time::from_secs(round));
                    }
                    1 => {
                        t.update(&name, |m| m.incarnation = Incarnation(round));
                    }
                    2 => {
                        t.set_state(&name, MemberState::Dead, Time::from_secs(round));
                    }
                    3 => {
                        t.remove(&name);
                        t.upsert(Member::new(
                            name,
                            addr(i as u8),
                            Incarnation(round),
                            Time::from_secs(round),
                        ));
                    }
                    _ => {
                        t.set_state(&name, MemberState::Alive, Time::from_secs(round));
                    }
                }
            }
        });
    }

    #[test]
    fn sharding_distributes_members() {
        let t = table_sharded(64, 4);
        assert_eq!(t.shard_count(), 4);
        let occupied = t.shards.iter().filter(|s| !s.index.is_empty()).count();
        assert!(occupied >= 3, "FNV routing left {occupied}/4 shards in use");
        t.check_invariants();
    }

    #[test]
    fn changed_since_merges_across_shards_newest_first() {
        let mut t = table_sharded(32, 8);
        let base = t.update_seq();
        for i in (0..32u8).rev() {
            t.update(&format!("node-{i}").into(), |m| {
                m.incarnation = Incarnation(u64::from(i) + 1)
            });
        }
        let feed: Vec<NodeName> = t.changed_since(base).map(|m| m.name.clone()).collect();
        let expect: Vec<NodeName> = (0..32u8).map(|i| format!("node-{i}").into()).collect();
        assert_eq!(feed, expect, "newest-first means last-touched first");
        t.check_invariants();
    }
}
