//! The local membership table.
//!
//! Stores one [`Member`] record per known node and provides the random
//! sampling primitives the protocol needs (indirect-probe helpers, gossip
//! fan-out targets). Incarnation-precedence *decisions* live in the node
//! state machine; this module only stores facts.
//!
//! # Indexed layout
//!
//! Records live in a slab (`Vec<Option<Slot>>` + free list) addressed
//! through a `HashMap<NodeName, slot>` name index, so lookups are O(1)
//! instead of the seed's O(log n) `BTreeMap` walk. Two dense id vectors
//! partition the table by liveness class — `live` (alive | suspect) and
//! `gone` (dead | left) — and an `alive` counter tracks the strictly
//! alive subset. That makes [`Membership::live_count`] /
//! [`Membership::alive_count`] O(1) (they were full O(n) scans, invoked
//! on every suspicion start and every transmit-limit computation), and
//! lets [`Membership::sample`] run a *lazy* partial Fisher–Yates over a
//! pool's dense ids: O(inspected) ≈ O(k) work and no O(n) candidate
//! `Vec` per call.
//!
//! Because the pools are derived from member state, state changes must
//! go through the table ([`Membership::update`] or
//! [`Membership::set_state`]); there is deliberately no `get_mut`.

use std::collections::{HashMap, VecDeque};

use lifeguard_proto::{MemberState, NodeName};
use rand::{Rng, RngExt};

use crate::member::Member;
use crate::time::Time;

/// Which liveness pool a sampling call draws from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SamplePool {
    /// Alive and suspect members (failure-detector participants).
    Live,
    /// Dead and left members still retained in the table.
    Gone,
    /// Every known member.
    All,
}

#[derive(Clone, Debug)]
struct Slot {
    member: Member,
    /// Position of this slot's id inside its pool vector.
    pos: usize,
}

/// The membership table of a single node.
///
/// The local node itself is stored in the table (as memberlist does), so
/// `n` counts include self.
#[derive(Clone, Debug, Default)]
pub struct Membership {
    // bounded: one slot per known member (dead members are reaped after the retention horizon), freed slots are recycled via `free`
    slots: Vec<Option<Slot>>,
    // bounded: ≤ |slots| — holds only currently-empty slot ids
    free: Vec<usize>,
    // bounded: one key per known member, removed on reap
    index: HashMap<NodeName, usize>,
    /// Dense slot ids of alive | suspect members.
    // bounded: ≤ cluster size — one id per live member
    live: Vec<usize>,
    /// Dense slot ids of dead | left members.
    // bounded: ≤ cluster size — one id per retained dead/left member, drained by reaping
    gone: Vec<usize>,
    /// Number of members in state `Alive` exactly.
    alive: usize,
    /// Monotonically increasing sequence, bumped once per observable
    /// record change ([`Membership::update_seq`]).
    update_seq: u64,
    /// Change log for [`Membership::changed_since`]: `(seq, slot id)`
    /// in ascending-seq order, one *live* entry per member (an entry is
    /// stale once its slot's record was re-stamped or removed; stale
    /// entries are skipped on read and dropped by amortised
    /// compaction). Keeps delta generation O(changed), not O(n).
    // bounded: compaction in `stamp` keeps len ≤ max(64, 2 × member count)
    log: VecDeque<(u64, usize)>,
}

impl Membership {
    /// Creates an empty table.
    pub fn new() -> Self {
        Membership::default()
    }

    /// Number of known members in any state (including dead ones still
    /// retained). O(1).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of live (alive or suspect) members, the `n` used for
    /// suspicion timeouts and retransmit limits. O(1).
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of members currently believed alive (not suspect). O(1).
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Looks up a member by name. O(1).
    pub fn get(&self, name: &NodeName) -> Option<&Member> {
        let &id = self.index.get(name)?;
        Some(&self.slot(id)?.member)
    }

    /// The table's current update sequence: the stamp of the most
    /// recent record change. Strictly monotonic per observable change,
    /// never reused, local to this table instance. O(1).
    pub fn update_seq(&self) -> u64 {
        self.update_seq
    }

    /// Members whose record changed after `since` (in this table's own
    /// sequence space), newest first. O(changed): walks the change log
    /// from its tail, skipping superseded entries, so steady-state
    /// delta generation never touches the unchanged bulk of the table.
    ///
    /// `changed_since(0)` visits every member — a fresh watermark
    /// degenerates to a full-state exchange, which is what makes delta
    /// sync safe to bootstrap from nothing.
    pub fn changed_since(&self, since: u64) -> impl Iterator<Item = &Member> {
        self.log
            .iter()
            .rev()
            .take_while(move |&&(seq, _)| seq > since)
            .filter_map(move |&(seq, id)| {
                let slot = self.slot(id)?;
                (slot.member.updated_seq == seq).then_some(&slot.member)
            })
    }

    /// Mutates the member named `name` through `f`, keeping the state
    /// counters and liveness pools consistent with whatever `f` changed.
    /// Returns `None` (without running `f`) if the member is unknown.
    ///
    /// This replaces the seed's `get_mut`: handing out `&mut Member`
    /// would let callers flip `state` behind the indexes' back.
    ///
    /// `f` must not change `member.name` — it is the index key. Use
    /// [`Membership::remove`] + [`Membership::upsert`] to rename.
    pub fn update<T>(&mut self, name: &NodeName, f: impl FnOnce(&mut Member) -> T) -> Option<T> {
        let &id = self.index.get(name)?;
        debug_invariant!(self.slot(id).is_some(), "membership index points at an empty slot");
        let slot = self.slot_mut(id)?;
        let before = slot.member.state;
        // Snapshot for change-stamping. The meta clone (a refcount
        // bump) keeps the old buffer alive across `f`, so an equal
        // pointer + length afterwards *proves* the buffer is unchanged
        // (`Bytes` is immutable and the allocator cannot have reused a
        // block that is still live). Only when the buffer genuinely
        // changed do we pay a content comparison — the borrowed alive
        // path reuses the stored buffer for unchanged metadata, so the
        // steady state stays on the pointer fast path.
        let before_key = (slot.member.state, slot.member.incarnation, slot.member.addr);
        let before_meta = slot.member.meta.clone();
        let out = f(&mut slot.member);
        let after = slot.member.state;
        let after_key = (slot.member.state, slot.member.incarnation, slot.member.addr);
        let after_meta = &slot.member.meta;
        let same_buffer = before_meta.len() == after_meta.len()
            && std::ptr::eq(before_meta.as_ref().as_ptr(), after_meta.as_ref().as_ptr());
        let meta_changed = !same_buffer && before_meta.as_ref() != after_meta.as_ref();
        debug_assert!(
            self.slot(id).is_some_and(|s| &s.member.name == name),
            "update() must not change the member's name (index key)"
        );
        self.reconcile(id, before, after);
        if before_key != after_key || meta_changed {
            self.stamp(id);
        }
        Some(out)
    }

    /// Transitions `name` to `state` at `now` (no-op timestamps for
    /// same-state transitions, per [`Member::set_state`]). Returns
    /// whether the member exists.
    pub fn set_state(&mut self, name: &NodeName, state: MemberState, now: Time) -> bool {
        self.update(name, |m| m.set_state(state, now)).is_some()
    }

    /// Inserts or replaces a member record. Returns the previous record.
    /// Always counts as a record change for [`Membership::changed_since`].
    pub fn upsert(&mut self, member: Member) -> Option<Member> {
        if let Some(id) = self.index.get(&member.name).copied() {
            debug_invariant!(self.slot(id).is_some(), "membership index points at an empty slot");
            if let Some(slot) = self.slot_mut(id) {
                let before = slot.member.state;
                let after = member.state;
                let prev = std::mem::replace(&mut slot.member, member);
                self.reconcile(id, before, after);
                self.stamp(id);
                return Some(prev);
            }
            // Index pointed at an empty slot (table bug, unreachable in
            // debug builds): fall through to a fresh insert, which
            // overwrites the stale index entry and heals the table.
        }
        let name = member.name.clone();
        let state = member.state;
        let id = match self.free.pop() {
            Some(id) => {
                debug_invariant!(id < self.slots.len(), "free-list id out of bounds");
                // lint: allow(panic_path) — free-list ids come from `remove`, which only ever pushes in-bounds slot ids
                self.slots[id] = Some(Slot { member, pos: 0 });
                id
            }
            None => {
                self.slots.push(Some(Slot { member, pos: 0 }));
                self.slots.len() - 1
            }
        };
        self.index.insert(name, id);
        self.pool_push(id, state);
        if state == MemberState::Alive {
            self.alive += 1;
        }
        self.stamp(id);
        None
    }

    /// Removes a member record entirely (dead-node reaping). O(1).
    pub fn remove(&mut self, name: &NodeName) -> Option<Member> {
        let id = self.index.remove(name)?;
        debug_invariant!(self.slot(id).is_some(), "membership index points at an empty slot");
        let state = self.slot(id)?.member.state;
        self.pool_remove(id, state);
        if state == MemberState::Alive {
            self.alive -= 1;
        }
        let slot = self.slots.get_mut(id)?.take()?;
        self.free.push(id);
        Some(slot.member)
    }

    /// Iterates over all member records in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Member> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| &s.member))
    }

    /// Members that have been dead/left since before `reap_before` and
    /// can be forgotten.
    ///
    /// Iterates the `gone` pool only, so the cost is O(retained dead),
    /// not O(n); collect the names before calling
    /// [`Membership::remove`].
    pub fn reapable(&self, reap_before: Time) -> impl Iterator<Item = &Member> {
        self.gone
            .iter()
            .filter_map(|&id| self.slot(id).map(|s| &s.member))
            .filter(move |m| m.state_change < reap_before)
    }

    /// Selects up to `k` distinct random members satisfying `filter`,
    /// uniformly among the members that satisfy it.
    ///
    /// Equivalent to a partial Fisher–Yates shuffle over the whole
    /// table, evaluated lazily: positions are materialised only as they
    /// are inspected, so the call does O(inspected) work — O(k) when the
    /// filter rejects few members — instead of filter-collecting all n
    /// members first.
    pub fn sample<R: Rng>(
        &self,
        k: usize,
        rng: &mut R,
        filter: impl FnMut(&Member) -> bool,
    ) -> Vec<&Member> {
        self.sample_pool(SamplePool::All, k, rng, filter)
    }

    /// [`Membership::sample`] restricted to one liveness pool, so
    /// callers that only want live (or only retained-dead) members never
    /// pay for the other class.
    pub fn sample_pool<R: Rng>(
        &self,
        pool: SamplePool,
        k: usize,
        rng: &mut R,
        filter: impl FnMut(&Member) -> bool,
    ) -> Vec<&Member> {
        let mut picked = Vec::new();
        self.sample_pool_with(pool, k, rng, filter, |m| picked.push(m));
        picked
    }

    /// Visitor form of [`Membership::sample_pool`]: each drawn member is
    /// passed to `visit` instead of being collected, so hot callers (the
    /// node's gossip/probe target selection) can copy the one field they
    /// need into a reusable buffer without allocating a `Vec<&Member>`
    /// per call.
    pub fn sample_pool_with<'a, R: Rng>(
        &'a self,
        pool: SamplePool,
        k: usize,
        rng: &mut R,
        mut filter: impl FnMut(&Member) -> bool,
        mut visit: impl FnMut(&'a Member),
    ) {
        let n = match pool {
            SamplePool::Live => self.live.len(),
            SamplePool::Gone => self.gone.len(),
            SamplePool::All => self.live.len() + self.gone.len(),
        };
        if k == 0 || n == 0 {
            return;
        }
        // Lazy Fisher–Yates: `moved` records the positions whose value
        // differs from the identity permutation. Scanning a uniform
        // random permutation and keeping the first k filter-passing
        // members draws a uniform k-subset of the eligible members, in
        // uniform order — the same distribution as filtering first and
        // shuffling after, without building the O(n) candidate vector.
        let mut moved: HashMap<usize, usize> = HashMap::new();
        let mut picked = 0;
        let mut i = 0;
        while i < n && picked < k {
            let j = rng.random_range(i..n);
            let vj = moved.get(&j).copied().unwrap_or(j);
            let vi = moved.get(&i).copied().unwrap_or(i);
            moved.insert(j, vi);
            debug_invariant!(self.pool_member(pool, vj).is_some(), "pool position out of bounds");
            if let Some(member) = self.pool_member(pool, vj) {
                if filter(member) {
                    picked += 1;
                    visit(member);
                }
            }
            i += 1;
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The occupied slot at `id`. The name index and the pool vectors
    /// only ever store ids of occupied slots, so a `None` here is a
    /// table bug — `debug_invariant!`-checked at each use site.
    fn slot(&self, id: usize) -> Option<&Slot> {
        self.slots.get(id)?.as_ref()
    }

    fn slot_mut(&mut self, id: usize) -> Option<&mut Slot> {
        self.slots.get_mut(id)?.as_mut()
    }

    /// Assigns the next update-seq to slot `id` and logs the change.
    /// The log entry this supersedes (if any) becomes stale and is
    /// dropped lazily; compaction keeps the log within 2× the member
    /// count, so the amortised cost per change stays O(1).
    fn stamp(&mut self, id: usize) {
        self.update_seq += 1;
        let seq = self.update_seq;
        debug_invariant!(self.slot(id).is_some(), "stamp() on an empty slot");
        if let Some(slot) = self.slot_mut(id) {
            slot.member.updated_seq = seq;
        }
        self.log.push_back((seq, id));
        if self.log.len() > 64 && self.log.len() > 2 * self.index.len() {
            let slots = &self.slots;
            self.log.retain(|&(seq, id)| {
                slots
                    .get(id)
                    .and_then(|s| s.as_ref())
                    .map(|s| s.member.updated_seq == seq)
                    .unwrap_or(false)
            });
        }
    }

    /// The member at virtual position `v` of a pool (All concatenates
    /// live then gone). `None` for an out-of-pool position.
    fn pool_member(&self, pool: SamplePool, v: usize) -> Option<&Member> {
        let id = match pool {
            SamplePool::Live => *self.live.get(v)?,
            SamplePool::Gone => *self.gone.get(v)?,
            SamplePool::All => {
                if v < self.live.len() {
                    *self.live.get(v)?
                } else {
                    *self.gone.get(v - self.live.len())?
                }
            }
        };
        Some(&self.slot(id)?.member)
    }

    /// Moves `id` between pools / adjusts counters after its state
    /// changed from `before` to `after`. O(1).
    fn reconcile(&mut self, id: usize, before: MemberState, after: MemberState) {
        if before.is_live() != after.is_live() {
            self.pool_remove(id, before);
            self.pool_push(id, after);
        }
        match (before == MemberState::Alive, after == MemberState::Alive) {
            (false, true) => self.alive += 1,
            (true, false) => self.alive -= 1,
            _ => {}
        }
    }

    fn pool_push(&mut self, id: usize, state: MemberState) {
        let pool = if state.is_live() {
            &mut self.live
        } else {
            &mut self.gone
        };
        pool.push(id);
        let pos = pool.len() - 1;
        debug_invariant!(self.slot(id).is_some(), "pool_push() on an empty slot");
        if let Some(slot) = self.slot_mut(id) {
            slot.pos = pos;
        }
    }

    fn pool_remove(&mut self, id: usize, state: MemberState) {
        let Some(pos) = self.slot(id).map(|s| s.pos) else {
            debug_invariant!(false, "pool_remove() on an empty slot");
            return;
        };
        let pool = if state.is_live() {
            &mut self.live
        } else {
            &mut self.gone
        };
        debug_invariant!(pool.get(pos) == Some(&id), "pool position out of sync");
        if pos < pool.len() {
            // lint: allow(panic_path) — `pos < pool.len()` checked on the line above
            pool.swap_remove(pos);
        }
        if let Some(&swapped) = pool.get(pos) {
            if let Some(slot) = self.slots.get_mut(swapped).and_then(|s| s.as_mut()) {
                slot.pos = pos;
            }
        }
    }

    /// Debug-only invariant check: counters and pools agree with a full
    /// recomputation (used by the property tests).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let live_scan = self.iter().filter(|m| m.is_live()).count();
        let alive_scan = self
            .iter()
            .filter(|m| m.state == MemberState::Alive)
            .count();
        let gone_scan = self.iter().count() - live_scan;
        assert_eq!(self.live.len(), live_scan, "live pool out of sync");
        assert_eq!(self.gone.len(), gone_scan, "gone pool out of sync");
        assert_eq!(self.alive, alive_scan, "alive counter out of sync");
        assert_eq!(self.index.len(), live_scan + gone_scan, "index out of sync");
        for (name, &id) in &self.index {
            let slot = self.slot(id);
            assert!(slot.is_some(), "index points at an empty slot");
            let Some(slot) = slot else { continue };
            assert_eq!(&slot.member.name, name, "index points at wrong slot");
            let pool = if slot.member.state.is_live() {
                &self.live
            } else {
                &self.gone
            };
            assert_eq!(pool[slot.pos], id, "pool position out of sync");
        }
        // Change-log invariants: ascending seqs bounded by the counter,
        // and exactly one live log entry per member (so `changed_since`
        // is complete at any watermark, including 0).
        let mut prev = 0;
        let mut live_entries = 0;
        for &(seq, id) in &self.log {
            assert!(seq > prev, "log seqs must be strictly ascending");
            assert!(seq <= self.update_seq, "log seq beyond counter");
            prev = seq;
            if self.slots[id]
                .as_ref()
                .map(|s| s.member.updated_seq == seq)
                .unwrap_or(false)
            {
                live_entries += 1;
            }
        }
        assert_eq!(
            live_entries,
            self.index.len(),
            "each member must have exactly one live log entry"
        );
        assert_eq!(
            self.changed_since(0).count(),
            self.index.len(),
            "changed_since(0) must visit every member"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::{Incarnation, NodeAddr};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn addr(i: u8) -> NodeAddr {
        NodeAddr::new([10, 0, 0, i], 7946)
    }

    fn table(n: u8) -> Membership {
        let mut t = Membership::new();
        for i in 0..n {
            t.upsert(Member::new(
                format!("node-{i}").into(),
                addr(i),
                Incarnation(0),
                Time::ZERO,
            ));
        }
        t
    }

    #[test]
    fn counts_track_states() {
        let mut t = table(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.live_count(), 5);
        assert_eq!(t.alive_count(), 5);

        t.set_state(&"node-0".into(), MemberState::Suspect, Time::from_secs(1));
        assert_eq!(t.live_count(), 5);
        assert_eq!(t.alive_count(), 4);

        t.set_state(&"node-1".into(), MemberState::Dead, Time::from_secs(1));
        assert_eq!(t.live_count(), 4);
        assert_eq!(t.len(), 5, "dead members are retained");
        t.check_invariants();
    }

    #[test]
    fn update_keeps_counters_in_sync() {
        let mut t = table(3);
        let out = t.update(&"node-2".into(), |m| {
            m.incarnation = Incarnation(9);
            m.set_state(MemberState::Suspect, Time::from_secs(2));
            m.incarnation
        });
        assert_eq!(out, Some(Incarnation(9)));
        assert_eq!(t.alive_count(), 2);
        assert_eq!(t.live_count(), 3);
        assert!(t.update(&"missing".into(), |_| ()).is_none());
        t.check_invariants();
    }

    #[test]
    fn upsert_replaces_and_returns_previous() {
        let mut t = table(1);
        let prev = t.upsert(Member::new(
            "node-0".into(),
            addr(9),
            Incarnation(7),
            Time::ZERO,
        ));
        assert_eq!(prev.unwrap().incarnation, Incarnation(0));
        assert_eq!(t.get(&"node-0".into()).unwrap().incarnation, Incarnation(7));
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn upsert_over_dead_member_restores_liveness_pools() {
        let mut t = table(2);
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(1));
        assert_eq!(t.live_count(), 1);
        t.upsert(Member::new(
            "node-0".into(),
            addr(0),
            Incarnation(2),
            Time::from_secs(2),
        ));
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.alive_count(), 2);
        t.check_invariants();
    }

    #[test]
    fn remove_recycles_slots() {
        let mut t = table(4);
        assert!(t.remove(&"node-1".into()).is_some());
        assert!(t.remove(&"node-1".into()).is_none());
        assert_eq!(t.len(), 3);
        t.upsert(Member::new(
            "node-9".into(),
            addr(9),
            Incarnation(0),
            Time::ZERO,
        ));
        assert_eq!(t.len(), 4);
        assert_eq!(t.live_count(), 4);
        t.check_invariants();
    }

    #[test]
    fn sample_respects_filter_and_k() {
        let t = table(10);
        let mut rng = StdRng::seed_from_u64(42);
        let picked = t.sample(3, &mut rng, |m| m.name.as_str() != "node-0");
        assert_eq!(picked.len(), 3);
        assert!(picked.iter().all(|m| m.name.as_str() != "node-0"));
        // Distinct members.
        let mut names: Vec<_> = picked.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn sample_with_k_larger_than_population() {
        let t = table(2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.sample(10, &mut rng, |_| true).len(), 2);
        assert_eq!(t.sample(10, &mut rng, |_| false).len(), 0);
    }

    #[test]
    fn sample_is_deterministic_for_seed() {
        let t = table(20);
        let a: Vec<_> = t
            .sample(5, &mut StdRng::seed_from_u64(7), |_| true)
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let b: Vec<_> = t
            .sample(5, &mut StdRng::seed_from_u64(7), |_| true)
            .iter()
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let t = table(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = HashMap::new();
        for _ in 0..5000 {
            for m in t.sample(1, &mut rng, |_| true) {
                *hits.entry(m.name.clone()).or_insert(0u32) += 1;
            }
        }
        // Each of the 10 members should get ~500 of 5000 draws.
        for (name, count) in &hits {
            assert!(
                (350..650).contains(count),
                "{name} drawn {count} times, expected ~500"
            );
        }
    }

    #[test]
    fn sample_pool_separates_liveness_classes() {
        let mut t = table(6);
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(1));
        t.set_state(&"node-1".into(), MemberState::Left, Time::from_secs(1));
        t.set_state(&"node-2".into(), MemberState::Suspect, Time::from_secs(1));
        let mut rng = StdRng::seed_from_u64(5);
        let live = t.sample_pool(SamplePool::Live, 10, &mut rng, |_| true);
        assert_eq!(live.len(), 4);
        assert!(live.iter().all(|m| m.is_live()));
        let gone = t.sample_pool(SamplePool::Gone, 10, &mut rng, |_| true);
        assert_eq!(gone.len(), 2);
        assert!(gone.iter().all(|m| !m.is_live()));
        let all = t.sample_pool(SamplePool::All, 10, &mut rng, |_| true);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn changed_since_tracks_only_observable_changes() {
        let mut t = table(4);
        let base = t.update_seq();
        assert_eq!(t.changed_since(0).count(), 4, "inserts are changes");
        assert_eq!(t.changed_since(base).count(), 0);

        // A state change stamps exactly the touched member.
        t.set_state(&"node-1".into(), MemberState::Suspect, Time::from_secs(1));
        let changed: Vec<_> = t.changed_since(base).map(|m| m.name.clone()).collect();
        assert_eq!(changed, vec![NodeName::from("node-1")]);

        // A no-op update (nothing observable changed) does not stamp.
        let mid = t.update_seq();
        t.update(&"node-2".into(), |_m| {});
        t.set_state(&"node-1".into(), MemberState::Suspect, Time::from_secs(2));
        assert_eq!(t.update_seq(), mid);
        assert_eq!(t.changed_since(mid).count(), 0);

        // Incarnation and address changes stamp.
        t.update(&"node-2".into(), |m| m.incarnation = Incarnation(5));
        t.update(&"node-3".into(), |m| m.addr = addr(99));
        assert_eq!(t.changed_since(mid).count(), 2);

        // Re-touching a member keeps exactly one live entry for it.
        t.update(&"node-2".into(), |m| m.incarnation = Incarnation(6));
        assert_eq!(t.changed_since(mid).count(), 2);
        assert_eq!(t.changed_since(0).count(), 4);
        t.check_invariants();
    }

    #[test]
    fn changed_since_survives_removal_slot_reuse_and_compaction() {
        let mut t = table(8);
        // Churn hard enough to trigger compaction (log > 2 * members).
        for round in 0..40u64 {
            let i = (round % 8) as usize;
            let name = NodeName::from(format!("node-{i}"));
            if round % 11 == 3 {
                t.remove(&name);
                t.upsert(Member::new(name, addr(i as u8), Incarnation(round), Time::ZERO));
            } else {
                t.update(&name, |m| m.incarnation = Incarnation(100 + round));
            }
            t.check_invariants();
        }
        assert_eq!(t.changed_since(0).count(), 8);
        // The newest change is visible at the tightest watermark.
        let before = t.update_seq();
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(1));
        let changed: Vec<_> = t.changed_since(before).map(|m| m.name.clone()).collect();
        assert_eq!(changed, vec![NodeName::from("node-0")]);
    }

    #[test]
    fn reapable_finds_old_dead_members() {
        let mut t = table(3);
        t.set_state(&"node-0".into(), MemberState::Dead, Time::from_secs(10));
        t.set_state(&"node-1".into(), MemberState::Left, Time::from_secs(50));
        let reap: Vec<NodeName> = t
            .reapable(Time::from_secs(30))
            .map(|m| m.name.clone())
            .collect();
        assert_eq!(reap, vec![NodeName::from("node-0")]);
        t.remove(&"node-0".into());
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }
}
