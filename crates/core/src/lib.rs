//! Sans-io implementation of the SWIM group-membership protocol with the
//! Lifeguard extensions (DSN 2018), in the style of HashiCorp
//! `memberlist`.
//!
//! The central type is [`node::SwimNode`], a pure state machine with one
//! poll-based driving surface: feed [`node::Input`]s through
//! `handle_input`, drain [`node::Output`] effects through `poll_output`.
//! Runtimes (simulator or real sockets) drive it through the shared
//! [`driver::Driver`] harness, which owns the input→poll→sink loop.
//!
//! # Protocol features
//!
//! * Randomized round-robin probe rounds with direct (`ping`) and
//!   indirect (`ping-req`) probes and a stream-transport fallback probe.
//! * The Suspicion subprotocol with incarnation numbers and refutation.
//! * Gossip dissemination piggybacked on failure-detector messages plus a
//!   dedicated gossip tick, via a transmit-limited broadcast queue.
//! * Anti-entropy push-pull full state sync.
//! * Dead-member retention and reaping.
//!
//! # Lifeguard extensions (individually toggleable)
//!
//! * **LHA-Probe** ([`awareness`]): the Local Health Multiplier scales
//!   probe interval/timeout; `nack` messages provide negative feedback.
//! * **LHA-Suspicion** ([`suspicion`]): suspicion timeouts start at `Max`
//!   and decay logarithmically to `Min` with independent confirmations,
//!   which are re-gossiped up to `K` times.
//! * **Buddy System** ([`broadcast`] + [`node`]): pings to a suspected
//!   member always carry the suspicion so refutation starts immediately.

/// Checks an internal invariant that is guaranteed by construction
/// (index entries point at occupied slots, a generation-checked timer
/// has a payload, …): panics in debug builds — so tests, fuzzing and
/// the deterministic simulator catch logic bugs at the violation site —
/// and compiles to a no-op in release builds, where every use site
/// pairs the check with a benign fallback path so a latent bug degrades
/// state instead of bringing the agent down.
///
/// The condition is only evaluated in debug builds, but it always
/// type-checks, so invariants cannot rot silently behind a `cfg`.
#[macro_export]
macro_rules! debug_invariant {
    ($cond:expr $(, $($arg:tt)+)?) => {
        if cfg!(debug_assertions) && !$cond {
            // lint: allow(panic) — debug-only: `cfg!(debug_assertions)` makes this arm unreachable in release builds
            panic!($($($arg)+)?)
        }
    };
}

pub mod accrual;
pub mod awareness;
pub mod broadcast;
pub mod config;
pub mod driver;
pub mod event;
pub mod member;
pub mod membership;
pub mod node;
pub mod probe_list;
pub mod suspicion;
pub mod time;
pub mod timer_wheel;

pub use config::{AwarenessDeltas, Config, ConfigError, LifeguardConfig};
pub use driver::{Driver, OwnedOutput, Sink};
pub use event::Event;
pub use node::{Input, NodeStats, Output, SwimNode};
pub use time::Time;
