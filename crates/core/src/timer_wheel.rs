//! Hierarchical timer wheel with generation-keyed cancellation.
//!
//! [`TimerWheel`] replaces the `BinaryHeap`-of-timers pattern everywhere
//! the workspace needs time-ordered firing: the protocol core's internal
//! timers ([`crate::node::SwimNode`]) and the simulator's event queue
//! both run on this structure, so the node and the runtime agree on
//! firing semantics to the microsecond.
//!
//! # Shape
//!
//! Four wheel levels of 64 slots each, with a level-0 granularity of
//! 1024 µs (~1 ms). A timer at distance `d` ticks from the wheel cursor
//! lives at the level whose slot width first covers `d`, so level 0
//! spans ~65 ms, level 1 ~4.2 s, level 2 ~4.5 min, and the top level
//! ~4.8 hours; anything farther waits in a small overflow list and
//! re-hashes as the cursor approaches. Buckets are intrusive
//! doubly-linked chains through one slab, so a whole wheel's index is
//! ~1 KB — cheap enough to give every node in a simulated cluster its
//! own. Exact microsecond deadlines are kept per timer — buckets only
//! index them — so firing order is the same `(deadline, insertion-seq)`
//! total order a heap of `(Time, u64)` keys produces, and
//! [`TimerWheel::next_deadline`] reports exact instants, never bucket
//! boundaries.
//!
//! # Costs
//!
//! * [`TimerWheel::schedule`] — O(1).
//! * [`TimerWheel::cancel`] / [`TimerWheel::reschedule`] — O(1): the
//!   handle's generation is bumped, so a cancelled timer can never fire
//!   ("stale fires are impossible by construction"), and the entry is
//!   unlinked from its bucket chain on the spot.
//! * [`TimerWheel::pop_due`] — O(levels + bucket) per fired timer, with
//!   empty stretches of time skipped entirely via per-level occupancy
//!   bitmaps: advancing over an idle hour costs nothing.
//!
//! # Handles
//!
//! [`schedule`](TimerWheel::schedule) returns a [`TimerKey`] — a
//! `(slot index, generation)` pair. Cancelling or rescheduling bumps the
//! slot's generation, so any retained copy of an old key becomes inert:
//! `cancel` on it returns `None` and it can never match a firing timer.
//! This is what lets callers delete fire-time staleness checks: a timer
//! that was logically cancelled is *gone*, not merely flagged.
//!
//! ```
//! use lifeguard_core::timer_wheel::TimerWheel;
//! use lifeguard_core::time::Time;
//!
//! let mut wheel = TimerWheel::new();
//! let a = wheel.schedule(Time::from_millis(5), "a");
//! let _b = wheel.schedule(Time::from_millis(3), "b");
//! wheel.cancel(a);
//! assert_eq!(wheel.next_deadline(), Some(Time::from_millis(3)));
//! assert_eq!(wheel.pop_due(Time::from_millis(10)), Some((Time::from_millis(3), "b")));
//! assert_eq!(wheel.pop_due(Time::from_millis(10)), None); // "a" was truly cancelled
//! ```

use crate::time::Time;

/// Level-0 tick width: 2^10 µs ≈ 1 ms.
const TICK_BITS: u32 = 10;
/// Slots per level: 2^6 = 64 (one occupancy word per level).
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Number of levels; the top level spans 2^(10+6·4) µs ≈ 4.8 hours.
/// Deadlines beyond that sit in the overflow list until the cursor
/// gets near enough to hash them into the wheel proper.
const LEVELS: usize = 4;

/// Handle to a scheduled timer: slot index plus the generation it was
/// issued at. Copyable and inert once the timer fires, is cancelled, or
/// is rescheduled (all of which bump the generation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerKey {
    idx: u32,
    gen: u32,
}

/// `Slot::level` sentinel for timers sitting in the sorted `pending`
/// batch rather than a wheel bucket.
const IN_PENDING: u8 = u8::MAX;
/// `Slot::level` sentinel for timers in the far-future overflow list.
const IN_OVERFLOW: u8 = u8::MAX - 1;
/// `Earliest::level` marker for a minimum found in the overflow list.
const OVERFLOW_LEVEL: usize = LEVELS;

/// A timer pulled out of its level-0 bucket into the sorted due batch.
/// `pending` is kept descending by `(deadline, seq)` so the global
/// minimum pops from the back in O(1).
#[derive(Clone, Copy)]
struct PendingEntry {
    deadline: Time,
    seq: u64,
    idx: u32,
    gen: u32,
}

/// One slab slot. `payload` is `None` while the slot is free; `gen`
/// increments every time the slot is consumed (fire/cancel/reschedule),
/// which is what invalidates outstanding [`TimerKey`]s and stale bucket
/// entries pointing at it.
struct Slot<T> {
    gen: u32,
    seq: u64,
    deadline: Time,
    payload: Option<T>,
    level: u8,
    bucket: u8,
    /// Intrusive doubly-linked chain through the slab while bucketed.
    next: u32,
    prev: u32,
}

/// Chain terminator / "no slot" marker.
const NIL: u32 = u32::MAX;

/// Reference from the overflow list into the slab. `gen` pins the
/// incarnation: a mismatch means the timer was cancelled/rescheduled and
/// the entry is garbage to be skipped.
#[derive(Clone, Copy)]
struct OverflowEntry {
    idx: u32,
    gen: u32,
}

/// One wheel level: just the chain heads — entries are intrusively
/// linked through the slab, so cancellation unlinks in O(1) and buckets
/// never hold stale entries. 256 bytes per level keeps a whole wheel's
/// index within a few cache lines (it matters: a simulated cluster owns
/// one wheel per node).
struct Level {
    heads: [u32; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level { heads: [NIL; SLOTS] }
    }
}

/// Location of the earliest live bucketed timer, as found by a scan.
#[derive(Clone, Copy)]
struct Earliest {
    level: usize,
    slot: usize,
    deadline: Time,
    seq: u64,
    idx: u32,
    gen: u32,
    /// Absolute tick at which the holding bucket's range starts.
    start_tick: u64,
}

/// A hierarchical timer wheel over payloads `T`. See the module docs.
pub struct TimerWheel<T> {
    // bounded: one slot per live timer (the node schedules O(1) timers per member and per in-flight probe), freed slots recycled via `free`
    slots: Vec<Slot<T>>,
    // bounded: ≤ |slots| — holds only currently-free slot indices
    free: Vec<u32>,
    levels: Box<[Level; LEVELS]>,
    /// Per-level occupancy bitmaps (bit `s` set iff `live[s] > 0`),
    /// flat so the all-levels-empty scan touches one cache line.
    occupied: [u64; LEVELS],
    /// The earliest level-0 bucket, drained and sorted (descending, so
    /// the minimum is last). Invariant: every live pending entry orders
    /// `(deadline, seq)`-before every live bucketed entry, so the back
    /// of this vector is the global minimum whenever it is non-empty.
    // bounded: holds one drained bucket at a time, ≤ live timer count
    pending: Vec<PendingEntry>,
    /// Timers farther out than the top level's span, in schedule order.
    /// Scanned exactly (it is almost always empty or tiny) and re-hashed
    /// wholesale once its minimum becomes the wheel's next timer.
    // bounded: ≤ live timer count, compacted when stale entries outnumber live ones
    overflow: Vec<OverflowEntry>,
    /// Live (non-stale) entries in `overflow`.
    overflow_live: usize,
    /// Memoized global minimum. Invariant: when the generation still
    /// matches its slot, this *is* the earliest live timer — kept by
    /// updating on cheaper-than-min inserts, clearing when its timer is
    /// cancelled/rescheduled, and refreshing on every pop — so
    /// [`TimerWheel::next_deadline`] is O(1) on the hot path.
    cached_min: Option<PendingEntry>,
    /// Current wheel tick. Invariant: no live timer's deadline tick is
    /// below the cursor, so per-level circular slot order is time order.
    cursor: u64,
    /// Monotonic insertion sequence — the deterministic same-instant
    /// tiebreak.
    seq: u64,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel with its cursor at [`Time::ZERO`].
    pub fn new() -> Self {
        TimerWheel {
            slots: Vec::new(),
            free: Vec::new(),
            levels: Box::new([(); LEVELS].map(|()| Level::new())),
            occupied: [0; LEVELS],
            pending: Vec::new(),
            overflow: Vec::new(),
            overflow_live: 0,
            cached_min: None,
            cursor: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Number of live (scheduled, uncancelled, unfired) timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` to fire at `at` (which may already be in the
    /// past — it then fires on the next [`TimerWheel::pop_due`]). O(1).
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    pub fn schedule(&mut self, at: Time, payload: T) -> TimerKey {
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.seq = seq;
                slot.deadline = at;
                slot.payload = Some(payload);
                idx
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    seq,
                    deadline: at,
                    payload: Some(payload),
                    level: 0,
                    bucket: 0,
                    next: NIL,
                    prev: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.len += 1;
        self.link(idx);
        self.note_insert(idx);
        TimerKey {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }

    /// Folds a just-linked timer into the memoized minimum.
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn note_insert(&mut self, idx: u32) {
        let slot = &self.slots[idx as usize];
        let beats_cache = match &self.cached_min {
            Some(m) => (slot.deadline, slot.seq) < (m.deadline, m.seq),
            // An unknown minimum stays unknown — unless this is the only
            // timer, which is trivially the minimum.
            None => self.len == 1,
        };
        if beats_cache {
            self.cached_min = Some(PendingEntry {
                deadline: slot.deadline,
                seq: slot.seq,
                idx,
                gen: slot.gen,
            });
        }
    }

    /// Cancels the timer behind `key`, returning its payload. O(1).
    ///
    /// Returns `None` if the key is stale — the timer already fired, was
    /// cancelled, or was rescheduled — in which case nothing changes.
    pub fn cancel(&mut self, key: TimerKey) -> Option<T> {
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen || slot.payload.is_none() {
            return None;
        }
        let payload = slot.payload.take();
        slot.gen = slot.gen.wrapping_add(1);
        match slot.level {
            // An IN_PENDING entry is dropped lazily when the batch
            // reaches it — the bumped generation makes it inert.
            IN_PENDING => {}
            IN_OVERFLOW => self.unlink_overflow(),
            _ => self.unlink_entry(key.idx),
        }
        self.free.push(key.idx);
        self.len -= 1;
        if self.cached_min.is_some_and(|m| m.idx == key.idx && m.gen == key.gen) {
            self.cached_min = None;
        }
        payload
    }

    /// Moves the timer behind `key` to deadline `at` without touching its
    /// payload, returning the replacement key. O(1).
    ///
    /// The old key (and any copy of it) is invalidated; the timer gets a
    /// fresh insertion sequence, so among timers sharing an exact
    /// deadline it fires as the newest. Returns `None` (and changes
    /// nothing) if the key is stale.
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    pub fn reschedule(&mut self, key: TimerKey, at: Time) -> Option<TimerKey> {
        let seq = self.seq;
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen || slot.payload.is_none() {
            return None;
        }
        self.seq += 1;
        slot.gen = slot.gen.wrapping_add(1);
        slot.seq = seq;
        slot.deadline = at;
        match slot.level {
            IN_PENDING => {}
            IN_OVERFLOW => self.unlink_overflow(),
            _ => self.unlink_entry(key.idx),
        }
        if self.cached_min.is_some_and(|m| m.idx == key.idx && m.gen == key.gen) {
            self.cached_min = None;
        }
        self.link(key.idx);
        self.note_insert(key.idx);
        Some(TimerKey {
            idx: key.idx,
            gen: self.slots[key.idx as usize].gen,
        })
    }

    /// The exact deadline behind `key`, or `None` if the key is stale.
    pub fn deadline_of(&self, key: TimerKey) -> Option<Time> {
        let slot = self.slots.get(key.idx as usize)?;
        if slot.gen != key.gen || slot.payload.is_none() {
            return None;
        }
        Some(slot.deadline)
    }

    /// The exact deadline of the earliest pending timer. O(1) while the
    /// memoized minimum is intact (the common case between pops).
    pub fn next_deadline(&self) -> Option<Time> {
        if let Some(m) = &self.cached_min {
            if self.slots[m.idx as usize].gen == m.gen {
                return Some(m.deadline);
            }
        }
        // A live entry in the sorted batch is the global minimum by the
        // pending invariant; otherwise fall back to the wheel proper.
        self.pending
            .iter()
            .rev()
            .find(|p| self.slots[p.idx as usize].gen == p.gen)
            .map(|p| p.deadline)
            .or_else(|| self.earliest_bucket().map(|e| e.deadline))
    }

    /// Removes and returns the earliest timer with `deadline <= now`,
    /// advancing the wheel. Returns `None` once nothing (more) is due.
    /// Timers come out in `(deadline, insertion-seq)` order.
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, T)> {
        // The memoized minimum makes the no-work case — most `tick`
        // calls of an idle node — a single comparison.
        if let Some(m) = &self.cached_min {
            if m.deadline > now && self.slots[m.idx as usize].gen == m.gen {
                return None;
            }
        }
        loop {
            // Serve from the sorted batch first: its back is the global
            // minimum, so each pop is O(1).
            while let Some(p) = self.pending.last().copied() {
                if self.slots[p.idx as usize].gen != p.gen {
                    self.pending.pop(); // cancelled or rescheduled away
                    continue;
                }
                if p.deadline > now {
                    self.cached_min = Some(p);
                    return None;
                }
                self.pending.pop();
                self.cursor = self.cursor.max(tick_of(p.deadline));
                let slot = &mut self.slots[p.idx as usize];
                slot.gen = slot.gen.wrapping_add(1);
                let Some(payload) = slot.payload.take() else {
                    // A matching generation with no payload would mean
                    // the slot was freed without a gen bump; skip the
                    // entry rather than double-freeing the slot.
                    debug_invariant!(false, "live timer has a payload");
                    continue;
                };
                self.free.push(p.idx);
                self.len -= 1;
                // Refresh the memoized minimum from the batch: skim off
                // dead entries so the new back is live.
                while let Some(q) = self.pending.last() {
                    if self.slots[q.idx as usize].gen == q.gen {
                        break;
                    }
                    self.pending.pop();
                }
                self.cached_min = self.pending.last().copied();
                return Some((p.deadline, payload));
            }
            let Some(e) = self.earliest_bucket() else {
                self.cached_min = None;
                return None;
            };
            if e.deadline > now {
                self.cached_min = Some(PendingEntry {
                    deadline: e.deadline,
                    seq: e.seq,
                    idx: e.idx,
                    gen: e.gen,
                });
                return None;
            }
            if e.level == OVERFLOW_LEVEL {
                // The far-future list holds the global minimum (the
                // wheel has spun close enough): hash it back in.
                self.cursor = self.cursor.max(tick_of(e.deadline));
                self.rehash_overflow();
                continue;
            }
            if e.level == 0 {
                // The minimum's bucket tick is a lower bound on every
                // live placement tick (see the cursor invariant), so the
                // cursor may jump straight to it.
                self.cursor = self.cursor.max(e.start_tick);
                // A coarser bucket whose range reaches back to this tick
                // may still hide timers that belong in (or before) it:
                // cascade those levels down before draining, or the
                // batch would step over them. The overflow list can hide
                // such timers the same way once the cursor nears it.
                if let Some((level, slot)) = self.covering_bucket(e.start_tick) {
                    self.cascade(level, slot);
                    continue;
                }
                if self.overflow.iter().any(|o| {
                    self.slots[o.idx as usize].gen == o.gen
                        && tick_of(self.slots[o.idx as usize].deadline) <= e.start_tick
                }) {
                    self.rehash_overflow();
                    continue;
                }
                // Drain the due bucket into the batch in one sort, so a
                // bucket of k timers costs O(k log k) total rather than
                // O(k) re-scans per pop.
                let mut idx = self.levels[0].heads[e.slot];
                self.levels[0].heads[e.slot] = NIL;
                self.occupied[0] &= !(1u64 << e.slot);
                while idx != NIL {
                    let slot = &mut self.slots[idx as usize];
                    let next = slot.next;
                    slot.level = IN_PENDING;
                    self.pending.push(PendingEntry {
                        deadline: slot.deadline,
                        seq: slot.seq,
                        idx,
                        gen: slot.gen,
                    });
                    idx = next;
                }
                self.pending
                    .sort_unstable_by_key(|p| std::cmp::Reverse((p.deadline, p.seq)));
                continue;
            }
            // The bucket holding the global minimum has been reached;
            // re-hash its live entries into finer levels (the minimum
            // itself lands at level 0 and surfaces on a later
            // iteration).
            self.cursor = self.cursor.max(tick_of(e.deadline));
            self.cascade(e.level, e.slot);
        }
    }

    /// Re-hashes every entry of one bucket relative to the current
    /// cursor.
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn cascade(&mut self, level: usize, slot: usize) {
        let mut idx = self.levels[level].heads[slot];
        self.levels[level].heads[slot] = NIL;
        self.occupied[level] &= !(1u64 << slot);
        while idx != NIL {
            let next = self.slots[idx as usize].next;
            self.link(idx);
            idx = next;
        }
    }

    /// The first level whose earliest occupied bucket starts at or
    /// before tick `b` — i.e. a coarser bucket whose range overlaps the
    /// level-0 bucket about to be drained. At most one bucket per level
    /// can qualify (anything entirely before `b` would hold entries
    /// below the cursor bound), so repeated cascading terminates.
    // lint: allow(panic_path) — `level` iterates the fixed `LEVELS` range and bucket indices are `& SLOT_MASK`-masked, so the fixed-size level/occupied/heads arrays cannot be indexed out of bounds
    fn covering_bucket(&self, b: u64) -> Option<(usize, usize)> {
        for level in 1..LEVELS {
            let occupied = self.occupied[level];
            if occupied == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let cur = ((self.cursor >> shift) & SLOT_MASK) as u32;
            let offset = occupied.rotate_right(cur).trailing_zeros();
            let slot = ((cur + offset) as u64 & SLOT_MASK) as usize;
            let start_tick = ((self.cursor >> shift) + offset as u64) << shift;
            if start_tick <= b {
                return Some((level, slot));
            }
        }
        None
    }

    /// [`TimerWheel::pop_due`] with no time bound: removes and returns
    /// the earliest pending timer (the discrete-event-queue operation).
    pub fn pop_earliest(&mut self) -> Option<(Time, T)> {
        self.pop_due(Time::from_micros(u64::MAX))
    }

    /// Truly removes a bucketed entry from its chain in O(1).
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn unlink_entry(&mut self, idx: u32) {
        let slot = &self.slots[idx as usize];
        let (level, bucket) = (slot.level as usize, slot.bucket as usize);
        let (prev, next) = (slot.prev, slot.next);
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.levels[level].heads[bucket] = next;
            if next == NIL {
                self.occupied[level] &= !(1u64 << bucket);
            }
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Links slab slot `idx` wherever it belongs: into the sorted batch
    /// when it orders before the batch's maximum (preserving the pending
    /// invariant), into a wheel bucket otherwise.
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn link(&mut self, idx: u32) {
        let slot = &self.slots[idx as usize];
        if let Some(p0) = self.pending.first() {
            if (slot.deadline, slot.seq) < (p0.deadline, p0.seq) {
                let entry = PendingEntry {
                    deadline: slot.deadline,
                    seq: slot.seq,
                    idx,
                    gen: slot.gen,
                };
                let pos = self.pending.partition_point(|p| {
                    (p.deadline, p.seq) > (entry.deadline, entry.seq)
                });
                self.pending.insert(pos, entry);
                self.slots[idx as usize].level = IN_PENDING;
                return;
            }
        }
        self.place(idx);
    }

    /// Links slab slot `idx` into the bucket its deadline hashes to,
    /// relative to the current cursor.
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn place(&mut self, idx: u32) {
        let slot = &self.slots[idx as usize];
        // A deadline already in the past hashes to the cursor's own
        // level-0 bucket so it surfaces on the next pop.
        let deadline_tick = tick_of(slot.deadline).max(self.cursor);
        let mut level = LEVELS - 1;
        for k in 0..LEVELS {
            let shift = LEVEL_BITS * k as u32;
            if (deadline_tick >> shift) - (self.cursor >> shift) < SLOTS as u64 {
                level = k;
                break;
            }
        }
        let shift = LEVEL_BITS * level as u32;
        if (deadline_tick >> shift) - (self.cursor >> shift) >= SLOTS as u64 {
            // Beyond even the top level's span: overflow. (A fake slot
            // would break the circular-order-is-time-order invariant.)
            let gen = self.slots[idx as usize].gen;
            self.slots[idx as usize].level = IN_OVERFLOW;
            self.overflow.push(OverflowEntry { idx, gen });
            self.overflow_live += 1;
            return;
        }
        let bucket = ((deadline_tick >> shift) & SLOT_MASK) as usize;
        let head = self.levels[level].heads[bucket];
        let slot = &mut self.slots[idx as usize];
        slot.level = level as u8;
        slot.bucket = bucket as u8;
        slot.prev = NIL;
        slot.next = head;
        if head != NIL {
            self.slots[head as usize].prev = idx;
        }
        self.levels[level].heads[bucket] = idx;
        self.occupied[level] |= 1u64 << bucket;
    }

    /// Drops one live overflow entry's accounting. The list is
    /// reclaimed when only stale entries remain and compacted once they
    /// outnumber the live ones, so cancel-heavy far-future churn cannot
    /// grow it (or its scans) without bound.
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn unlink_overflow(&mut self) {
        self.overflow_live -= 1;
        if self.overflow_live == 0 {
            self.overflow.clear();
        } else if self.overflow.len() >= 8 && self.overflow.len() >= self.overflow_live * 2 {
            let slots = &self.slots;
            self.overflow
                .retain(|e| slots[e.idx as usize].gen == e.gen);
        }
    }

    /// Re-hashes every live overflow entry relative to the current
    /// cursor (the minimum lands in the wheel proper; still-far entries
    /// return to the overflow list).
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn rehash_overflow(&mut self) {
        let entries = std::mem::take(&mut self.overflow);
        self.overflow_live = 0;
        for entry in entries {
            if self.slots[entry.idx as usize].gen == entry.gen {
                self.link(entry.idx);
            }
        }
    }

    /// Finds the live *bucketed* timer with the smallest
    /// `(deadline, seq)` (the sorted batch is tracked separately).
    ///
    /// Per level, the first occupied slot in circular order from the
    /// cursor holds that level's minimum (every live entry sits within
    /// one revolution ahead of the cursor at its level); the global
    /// minimum is the best of the per-level minima. O(levels + first
    /// bucket's length per level).
    // lint: allow(panic_path) — slab indices come from the wheel's own free list, chain links, or pending/overflow entries; `slots` never shrinks, so every stored index stays in bounds
    fn earliest_bucket(&self) -> Option<Earliest> {
        let mut best: Option<Earliest> = None;
        for (level, lvl) in self.levels.iter().enumerate() {
            let occupied = self.occupied[level];
            if occupied == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let cur = ((self.cursor >> shift) & SLOT_MASK) as u32;
            let offset = occupied.rotate_right(cur).trailing_zeros();
            let slot = ((cur + offset) as u64 & SLOT_MASK) as usize;
            let start_tick = ((self.cursor >> shift) + offset as u64) << shift;
            if let Some(b) = &best {
                // At levels ≥ 1 every entry's deadline tick is at or
                // past its bucket's start tick, so a bucket starting
                // after the best candidate cannot beat it — this skips
                // scanning the (large) coarse buckets almost always.
                if level > 0 && start_tick > tick_of(b.deadline) {
                    continue;
                }
            }
            let mut idx = lvl.heads[slot];
            while idx != NIL {
                let s = &self.slots[idx as usize];
                if best
                    .map(|b| (s.deadline, s.seq) < (b.deadline, b.seq))
                    .unwrap_or(true)
                {
                    best = Some(Earliest {
                        level,
                        slot,
                        deadline: s.deadline,
                        seq: s.seq,
                        idx,
                        gen: s.gen,
                        start_tick,
                    });
                }
                idx = s.next;
            }
        }
        // The far-future overflow list competes by exact deadline too
        // (it is almost always empty).
        for entry in &self.overflow {
            let s = &self.slots[entry.idx as usize];
            if s.gen != entry.gen {
                continue;
            }
            if best
                .map(|b| (s.deadline, s.seq) < (b.deadline, b.seq))
                .unwrap_or(true)
            {
                best = Some(Earliest {
                    level: OVERFLOW_LEVEL,
                    slot: 0,
                    deadline: s.deadline,
                    seq: s.seq,
                    idx: entry.idx,
                    gen: entry.gen,
                    start_tick: tick_of(s.deadline),
                });
            }
        }
        best
    }
}

fn tick_of(t: Time) -> u64 {
    t.as_micros() >> TICK_BITS
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len)
            .field("next", &self.next_deadline())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn drain_until<T>(w: &mut TimerWheel<T>, now: Time) -> Vec<(Time, T)> {
        let mut out = Vec::new();
        while let Some(fired) = w.pop_due(now) {
            out.push(fired);
        }
        out
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule(Time::from_millis(30), "c");
        w.schedule(Time::from_millis(10), "a");
        w.schedule(Time::from_millis(20), "b");
        let fired = drain_until(&mut w, Time::from_secs(1));
        assert_eq!(
            fired,
            vec![
                (Time::from_millis(10), "a"),
                (Time::from_millis(20), "b"),
                (Time::from_millis(30), "c"),
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_fires_in_insertion_order() {
        let mut w = TimerWheel::new();
        let t = Time::from_millis(7);
        for i in 0..100 {
            w.schedule(t, i);
        }
        let fired = drain_until(&mut w, t);
        assert_eq!(fired.len(), 100);
        for (i, (at, v)) in fired.iter().enumerate() {
            assert_eq!(*at, t);
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn sub_tick_deadlines_stay_exact() {
        // Two timers inside the same 1024 µs bucket must fire at their
        // exact µs deadlines, in order.
        let mut w = TimerWheel::new();
        let a = Time::from_micros(500);
        let b = Time::from_micros(700);
        w.schedule(b, "b");
        w.schedule(a, "a");
        assert_eq!(w.next_deadline(), Some(a));
        assert_eq!(w.pop_due(Time::from_micros(499)), None);
        assert_eq!(w.pop_due(a), Some((a, "a")));
        assert_eq!(w.next_deadline(), Some(b));
        assert_eq!(w.pop_due(Time::from_micros(699)), None);
        assert_eq!(w.pop_due(Time::from_secs(1)), Some((b, "b")));
    }

    #[test]
    fn cancel_prevents_fire_and_is_one_shot() {
        let mut w = TimerWheel::new();
        let k = w.schedule(Time::from_millis(5), 1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.cancel(k), Some(1));
        assert_eq!(w.cancel(k), None, "second cancel must be a no-op");
        assert!(w.is_empty());
        assert_eq!(w.pop_due(Time::from_secs(10)), None);
    }

    #[test]
    fn stale_key_after_fire_is_inert() {
        let mut w = TimerWheel::new();
        let k = w.schedule(Time::from_millis(5), 1);
        assert_eq!(w.pop_due(Time::from_millis(5)), Some((Time::from_millis(5), 1)));
        assert_eq!(w.cancel(k), None);
        assert_eq!(w.reschedule(k, Time::from_secs(1)), None);
        assert_eq!(w.deadline_of(k), None);
        // The slab slot is reused for a new timer; the old key must not
        // alias it.
        let k2 = w.schedule(Time::from_millis(9), 2);
        assert_eq!(w.cancel(k), None);
        assert_eq!(w.deadline_of(k2), Some(Time::from_millis(9)));
    }

    #[test]
    fn reschedule_moves_deadline_both_ways() {
        let mut w = TimerWheel::new();
        let k = w.schedule(Time::from_secs(30), "x");
        // Pull a far (level ≥ 1) timer close, then push it out again.
        let k = w.reschedule(k, Time::from_millis(2)).unwrap();
        assert_eq!(w.next_deadline(), Some(Time::from_millis(2)));
        let k = w.reschedule(k, Time::from_secs(90)).unwrap();
        assert_eq!(w.next_deadline(), Some(Time::from_secs(90)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.cancel(k), Some("x"));
    }

    #[test]
    fn fires_across_level_boundaries() {
        // Deadlines straddling level-0 (~65 ms), level-1 (~4.2 s) and
        // level-2 (~4.5 min) spans cascade correctly and keep order.
        let mut w = TimerWheel::new();
        let deadlines = [
            Time::from_millis(1),
            Time::from_millis(64),
            Time::from_millis(70),
            Time::from_millis(4_500),
            Time::from_secs(270),
            Time::from_secs(3_600),
        ];
        for (i, &t) in deadlines.iter().enumerate().rev() {
            w.schedule(t, i);
        }
        let fired = drain_until(&mut w, Time::from_secs(4_000));
        let got: Vec<_> = fired.iter().map(|&(t, i)| (t, i)).collect();
        let want: Vec<_> = deadlines.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn far_future_beyond_top_level_parks_and_fires() {
        let mut w = TimerWheel::new();
        // ~900 days: beyond the top level span from cursor 0.
        let far = Time::ZERO + Duration::from_secs(900 * 24 * 3600);
        w.schedule(far, "far");
        w.schedule(Time::from_secs(1), "near");
        assert_eq!(w.next_deadline(), Some(Time::from_secs(1)));
        assert_eq!(w.pop_due(Time::from_secs(2)), Some((Time::from_secs(1), "near")));
        assert_eq!(w.pop_due(Time::from_secs(2)), None);
        assert_eq!(w.pop_earliest(), Some((far, "far")));
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let mut w = TimerWheel::new();
        // Advance the cursor well past t=1 ms...
        w.schedule(Time::from_secs(5), "later");
        assert!(w.pop_due(Time::from_secs(5)).is_some());
        // ...then schedule into the past: it must still come out first.
        w.schedule(Time::from_millis(1), "past");
        w.schedule(Time::from_secs(10), "future");
        assert_eq!(w.next_deadline(), Some(Time::from_millis(1)));
        assert_eq!(
            w.pop_due(Time::from_secs(6)),
            Some((Time::from_millis(1), "past"))
        );
        assert_eq!(w.pop_due(Time::from_secs(6)), None);
    }

    #[test]
    fn cancelled_bucket_is_reclaimed() {
        let mut w = TimerWheel::new();
        let keys: Vec<_> = (0..1000)
            .map(|i| w.schedule(Time::from_millis(5), i))
            .collect();
        for k in keys {
            assert!(w.cancel(k).is_some());
        }
        assert!(w.is_empty());
        assert_eq!(w.pop_due(Time::from_secs(1)), None);
        // Every cancel unlinked its entry on the spot: no chain remains
        // and no occupancy bit is left set.
        assert!(w.levels.iter().all(|l| l.heads.iter().all(|&h| h == NIL)));
        assert_eq!(w.occupied, [0; LEVELS]);
    }

    #[test]
    fn pop_earliest_is_a_fifo_for_equal_times() {
        let mut w = TimerWheel::new();
        w.schedule(Time::from_secs(2), "late");
        w.schedule(Time::from_secs(1), "early-1");
        w.schedule(Time::from_secs(1), "early-2");
        assert_eq!(w.pop_earliest().unwrap().1, "early-1");
        assert_eq!(w.pop_earliest().unwrap().1, "early-2");
        assert_eq!(w.pop_earliest().unwrap().1, "late");
        assert_eq!(w.pop_earliest(), None);
    }

    #[test]
    fn len_tracks_all_mutations() {
        let mut w = TimerWheel::new();
        assert!(w.is_empty());
        let a = w.schedule(Time::from_millis(1), 1);
        let b = w.schedule(Time::from_millis(2), 2);
        assert_eq!(w.len(), 2);
        w.cancel(a);
        assert_eq!(w.len(), 1);
        let b = w.reschedule(b, Time::from_millis(9)).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.deadline_of(b), Some(Time::from_millis(9)));
        w.pop_due(Time::from_secs(1));
        assert!(w.is_empty());
    }
}
