//! Local health applied to accrual failure detectors (paper §VII).
//!
//! The Lifeguard paper's related-work section observes that
//! heartbeat-based accrual detectors (Hayashibara et al., "The φ accrual
//! failure detector") share SWIM's blind spot: a *locally* slow monitor
//! reads late heartbeats as remote failures. §VII proposes applying the
//! local-health approach to other detector classes, noting that with
//! "multiple co-located heartbeat-based detectors (each receiving
//! messages from a different peer), it would be possible to evaluate
//! applying the Lifeguard heuristics".
//!
//! This module implements that exploration:
//!
//! * [`PhiAccrualDetector`] — a classic φ-accrual detector: it models
//!   heartbeat inter-arrival times with a normal distribution and
//!   reports the suspicion level `φ(t) = −log10(P(no heartbeat by t))`.
//! * [`LocalHealthAccrual`] — a set of co-located φ detectors sharing a
//!   Lifeguard-style saturating health counter: when *many* peers look
//!   late at once, the local monitor blames itself first — suppressing
//!   accusations for that evaluation and judging silences on a time
//!   axis compressed by `LHM + 1` — exactly as LHA-Probe stretches
//!   SWIM's timeouts.
//!
//! The `accrual_comparison` example and the integration tests show the
//! effect: under a local stall, the plain detector accuses most peers;
//! the local-health detector accuses none, while true failures are
//! still detected once the monitor is healthy again.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use lifeguard_proto::NodeName;

use crate::awareness::Awareness;
use crate::time::Time;

/// Default number of inter-arrival samples kept per peer.
pub const DEFAULT_WINDOW: usize = 100;

/// Minimum standard deviation, as a fraction of the mean, to keep φ
/// finite for metronome-regular heartbeats (Akka uses an absolute
/// 100 ms minimum; we take the max of both).
const MIN_STD_FRACTION: f64 = 0.25;
const MIN_STD_SECONDS: f64 = 0.1;

/// A φ-accrual failure detector for one monitored peer.
///
/// ```
/// use lifeguard_core::accrual::PhiAccrualDetector;
/// use lifeguard_core::time::Time;
/// use std::time::Duration;
///
/// let mut d = PhiAccrualDetector::new(100);
/// let mut t = Time::ZERO;
/// for _ in 0..20 {
///     t += Duration::from_millis(500);
///     d.heartbeat(t);
/// }
/// // Right after a heartbeat the suspicion is negligible...
/// assert!(d.phi(t + Duration::from_millis(100)) < 0.5);
/// // ...and it grows without bound as heartbeats stop.
/// assert!(d.phi(t + Duration::from_secs(5)) > 8.0);
/// ```
#[derive(Clone, Debug)]
pub struct PhiAccrualDetector {
    intervals: VecDeque<f64>,
    window: usize,
    last_heartbeat: Option<Time>,
}

impl PhiAccrualDetector {
    /// Creates a detector keeping up to `window` inter-arrival samples.
    pub fn new(window: usize) -> Self {
        PhiAccrualDetector {
            intervals: VecDeque::with_capacity(window.max(1)),
            window: window.max(1),
            last_heartbeat: None,
        }
    }

    /// Records a heartbeat arrival at `now`.
    pub fn heartbeat(&mut self, now: Time) {
        if let Some(last) = self.last_heartbeat {
            if now > last {
                if self.intervals.len() == self.window {
                    self.intervals.pop_front();
                }
                self.intervals.push_back((now - last).as_secs_f64());
            }
        }
        self.last_heartbeat = Some(now);
    }

    /// Number of samples collected so far.
    pub fn samples(&self) -> usize {
        self.intervals.len()
    }

    /// When the last heartbeat arrived.
    pub fn last_heartbeat(&self) -> Option<Time> {
        self.last_heartbeat
    }

    /// The suspicion level φ at time `now`: `−log10(1 − F(t_since))`
    /// where `F` is a normal CDF fitted to the observed inter-arrival
    /// times. Returns 0 until at least two samples exist.
    pub fn phi(&self, now: Time) -> f64 {
        let Some(last) = self.last_heartbeat else {
            return 0.0;
        };
        self.phi_for_elapsed(now.saturating_since(last))
    }

    /// φ for an explicit silence duration (used by the local-health
    /// wrapper to scale the time axis, exactly as LHA-Probe stretches
    /// SWIM's timeouts).
    pub fn phi_for_elapsed(&self, elapsed: Duration) -> f64 {
        if self.intervals.len() < 2 {
            return 0.0;
        }
        let elapsed = elapsed.as_secs_f64();
        let n = self.intervals.len() as f64;
        let mean = self.intervals.iter().sum::<f64>() / n;
        let var = self
            .intervals
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        let std = var
            .sqrt()
            .max(mean * MIN_STD_FRACTION)
            .max(MIN_STD_SECONDS);
        let p_later = normal_sf((elapsed - mean) / std);
        -p_later.max(1e-300).log10()
    }
}

/// Survival function of the standard normal distribution,
/// `P(X > z)`, via the Abramowitz–Stegun erfc approximation.
fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, max abs error 1.5e-7; extended to
    // negative x by symmetry.
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    let erf = if sign_negative { -erf } else { erf };
    1.0 - erf
}

/// Verdict for one peer from [`LocalHealthAccrual::check`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum AccrualVerdict {
    /// φ below the (scaled) threshold.
    Trusted {
        /// Current suspicion level.
        phi: f64,
    },
    /// φ reached the (scaled) threshold: the peer is accused.
    Suspect {
        /// Current suspicion level.
        phi: f64,
    },
}

impl AccrualVerdict {
    /// Whether the verdict accuses the peer.
    pub fn is_suspect(&self) -> bool {
        matches!(self, AccrualVerdict::Suspect { .. })
    }
}

/// A set of co-located φ detectors with Lifeguard-style local health.
///
/// The insight transplanted from LHA-Probe: when the φ of *many*
/// monitored peers crosses the threshold in the same evaluation, the
/// likeliest explanation is that the local monitor stalled. The shared
/// health counter rises on such evaluations (suppressing that round's
/// accusations) and decays when every peer is on time; while degraded,
/// peer silences are judged at `elapsed / (LHM + 1)`, mirroring the
/// paper's timeout scaling.
#[derive(Debug)]
pub struct LocalHealthAccrual {
    detectors: HashMap<NodeName, PhiAccrualDetector>,
    awareness: Awareness,
    phi_threshold: f64,
    window: usize,
}

impl LocalHealthAccrual {
    /// Creates the monitor with a base φ accusation threshold (a common
    /// choice is 8) and a health saturation limit `s` (paper: 8). With
    /// `s = 0` this degrades to a plain φ-accrual detector bank.
    pub fn new(phi_threshold: f64, s: u32) -> Self {
        LocalHealthAccrual {
            detectors: HashMap::new(),
            awareness: Awareness::new(s),
            phi_threshold,
            window: DEFAULT_WINDOW,
        }
    }

    /// Registers a peer to monitor.
    pub fn watch(&mut self, peer: NodeName) {
        self.detectors
            .entry(peer)
            .or_insert_with(|| PhiAccrualDetector::new(self.window));
    }

    /// Stops monitoring a peer.
    pub fn unwatch(&mut self, peer: &NodeName) {
        self.detectors.remove(peer);
    }

    /// Number of monitored peers.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether no peers are monitored.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// Records a heartbeat from `peer` at `now`.
    pub fn heartbeat(&mut self, peer: &NodeName, now: Time) {
        if let Some(d) = self.detectors.get_mut(peer) {
            d.heartbeat(now);
        }
    }

    /// The current local-health score (0 = healthy).
    pub fn local_health(&self) -> u32 {
        self.awareness.score()
    }

    /// The time-compression factor applied to peer silences while the
    /// local monitor is degraded (`LHM + 1`).
    pub fn health_factor(&self) -> u32 {
        self.awareness.score() + 1
    }

    /// Evaluates every monitored peer at `now`, updating local health
    /// first, and returns each peer's verdict.
    ///
    /// Local-health rules (the Lifeguard heuristics transplanted):
    ///
    /// * If more than half the informed peers are past the threshold
    ///   *simultaneously*, the likeliest cause is a local stall: health
    ///   +1, and accusations are **suppressed** for this evaluation
    ///   (process the backlog first). If no peer is late, health −1.
    /// * While degraded, each peer's silence is judged on a compressed
    ///   time axis: `elapsed / (LHM + 1)` — the accrual analogue of
    ///   LHA-Probe's timeout stretching.
    ///
    /// With saturation `s = 0` both rules are inert and this is a plain
    /// φ-accrual detector bank.
    pub fn check(&mut self, now: Time) -> Vec<(NodeName, AccrualVerdict)> {
        let mut informed = 0usize;
        let mut late = 0usize;
        for d in self.detectors.values() {
            if d.samples() >= 2 {
                informed += 1;
                if d.phi(now) >= self.phi_threshold {
                    late += 1;
                }
            }
        }
        let mut suppress = false;
        if informed > 0 {
            if late * 2 > informed {
                self.awareness.apply_delta(1);
                suppress = self.awareness.max() > 0;
            } else if late == 0 {
                self.awareness.apply_delta(-1);
            }
        }
        let factor = self.awareness.score() + 1;
        let mut verdicts: Vec<(NodeName, AccrualVerdict)> = self
            .detectors
            .iter()
            .map(|(name, d)| {
                let phi = match d.last_heartbeat() {
                    Some(last) => {
                        d.phi_for_elapsed(now.saturating_since(last) / factor)
                    }
                    None => 0.0,
                };
                let verdict = if !suppress && d.samples() >= 2 && phi >= self.phi_threshold {
                    AccrualVerdict::Suspect { phi }
                } else {
                    AccrualVerdict::Trusted { phi }
                };
                (name.clone(), verdict)
            })
            .collect();
        verdicts.sort_by(|a, b| a.0.cmp(&b.0));
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_regular(d: &mut PhiAccrualDetector, start: Time, period: Duration, n: usize) -> Time {
        let mut t = start;
        for _ in 0..n {
            t += period;
            d.heartbeat(t);
        }
        t
    }

    #[test]
    fn phi_is_low_right_after_heartbeat_and_grows() {
        let mut d = PhiAccrualDetector::new(50);
        let t = feed_regular(&mut d, Time::ZERO, Duration::from_millis(500), 30);
        assert!(d.phi(t + Duration::from_millis(50)) < 0.5);
        let one = d.phi(t + Duration::from_millis(900));
        let two = d.phi(t + Duration::from_secs(2));
        let five = d.phi(t + Duration::from_secs(5));
        assert!(one < two && two <= five, "{one} {two} {five}");
        assert!(five > 8.0);
    }

    #[test]
    fn phi_is_zero_without_enough_samples() {
        let mut d = PhiAccrualDetector::new(50);
        assert_eq!(d.phi(Time::from_secs(100)), 0.0);
        d.heartbeat(Time::from_secs(1));
        assert_eq!(d.phi(Time::from_secs(100)), 0.0);
        d.heartbeat(Time::from_secs(2));
        assert_eq!(d.samples(), 1);
        assert_eq!(d.phi(Time::from_secs(100)), 0.0);
        d.heartbeat(Time::from_secs(3));
        assert!(d.phi(Time::from_secs(100)) > 0.0);
    }

    #[test]
    fn jittery_heartbeats_raise_tolerance() {
        // A peer with 2x-variable intervals needs longer silence to
        // reach the same phi as a metronome peer.
        let mut regular = PhiAccrualDetector::new(50);
        let t1 = feed_regular(&mut regular, Time::ZERO, Duration::from_millis(500), 40);
        let mut jittery = PhiAccrualDetector::new(50);
        let mut t2 = Time::ZERO;
        for i in 0..40 {
            t2 += Duration::from_millis(if i % 2 == 0 { 250 } else { 750 });
            jittery.heartbeat(t2);
        }
        let probe = Duration::from_millis(1200);
        assert!(jittery.phi(t2 + probe) < regular.phi(t1 + probe));
    }

    #[test]
    fn window_is_bounded() {
        let mut d = PhiAccrualDetector::new(10);
        feed_regular(&mut d, Time::ZERO, Duration::from_millis(100), 100);
        assert_eq!(d.samples(), 10);
    }

    #[test]
    fn local_stall_is_blamed_on_self_not_peers() {
        let mut monitor = LocalHealthAccrual::new(3.0, 8);
        let peers: Vec<NodeName> = (0..10).map(|i| NodeName::from(format!("p{i}"))).collect();
        for p in &peers {
            monitor.watch(p.clone());
        }
        // 60 s of regular heartbeats from everyone.
        let mut t = Time::ZERO;
        for _ in 0..120 {
            t += Duration::from_millis(500);
            for p in &peers {
                monitor.heartbeat(p, t);
            }
            monitor.check(t);
        }
        assert_eq!(monitor.local_health(), 0);

        // The local monitor stalls 10 s: every peer looks late at once.
        let resume = t + Duration::from_secs(10);
        let verdicts = monitor.check(resume);
        let accused = verdicts.iter().filter(|(_, v)| v.is_suspect()).count();
        // Health rose, threshold scaled: far fewer accusations than the
        // plain detector would make (which would accuse all 10).
        assert!(monitor.local_health() >= 1);
        assert!(
            accused < 10,
            "local-health accrual accused {accused}/10 after a local stall"
        );

        // A second check during continued silence escalates health
        // further instead of accusing everyone.
        let verdicts = monitor.check(resume + Duration::from_secs(2));
        let accused2 = verdicts.iter().filter(|(_, v)| v.is_suspect()).count();
        assert!(monitor.local_health() >= 2);
        assert!(accused2 < 10);
    }

    #[test]
    fn true_single_failure_is_still_accused() {
        let mut monitor = LocalHealthAccrual::new(3.0, 8);
        let peers: Vec<NodeName> = (0..10).map(|i| NodeName::from(format!("p{i}"))).collect();
        for p in &peers {
            monitor.watch(p.clone());
        }
        let mut t = Time::ZERO;
        for _ in 0..120 {
            t += Duration::from_millis(500);
            for p in &peers {
                monitor.heartbeat(p, t);
            }
            monitor.check(t);
        }
        // Only p3 dies; the rest keep beating for 20 s.
        let dead = NodeName::from("p3");
        for _ in 0..40 {
            t += Duration::from_millis(500);
            for p in &peers {
                if *p != dead {
                    monitor.heartbeat(p, t);
                }
            }
        }
        let verdicts = monitor.check(t);
        assert_eq!(monitor.local_health(), 0, "one late peer is not local");
        let accused: Vec<_> = verdicts
            .iter()
            .filter(|(_, v)| v.is_suspect())
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(accused, vec![dead]);
    }

    #[test]
    fn plain_bank_with_s_zero_accuses_everyone_on_stall() {
        let mut monitor = LocalHealthAccrual::new(3.0, 0); // no local health
        let peers: Vec<NodeName> = (0..10).map(|i| NodeName::from(format!("p{i}"))).collect();
        for p in &peers {
            monitor.watch(p.clone());
        }
        let mut t = Time::ZERO;
        for _ in 0..120 {
            t += Duration::from_millis(500);
            for p in &peers {
                monitor.heartbeat(p, t);
            }
        }
        let verdicts = monitor.check(t + Duration::from_secs(10));
        let accused = verdicts.iter().filter(|(_, v)| v.is_suspect()).count();
        assert_eq!(accused, 10, "plain accrual blames every peer");
    }

    #[test]
    fn watch_unwatch_bookkeeping() {
        let mut monitor = LocalHealthAccrual::new(8.0, 8);
        assert!(monitor.is_empty());
        monitor.watch("a".into());
        monitor.watch("a".into());
        monitor.watch("b".into());
        assert_eq!(monitor.len(), 2);
        monitor.unwatch(&"a".into());
        assert_eq!(monitor.len(), 1);
    }

    #[test]
    fn erfc_matches_known_values() {
        // erfc(0) = 1, erfc(1) ≈ 0.1573, erfc(-1) ≈ 1.8427.
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-4);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-4);
        // Survival function symmetry.
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_sf(3.0) < 0.002);
        assert!(normal_sf(-3.0) > 0.998);
    }
}
