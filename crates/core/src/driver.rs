//! The shared sans-I/O driver harness.
//!
//! Every runtime — the deterministic simulator, the real UDP/TCP agent,
//! examples, tests — drives a [`SwimNode`]
//! through the same [`Driver`]: feed an [`Input`], and the driver drains
//! the node's output queue into a runtime-supplied [`Sink`] (transmit,
//! stream and event callbacks) before returning. This is the one place
//! the input→poll→dispatch loop exists; runtimes only decide *how* to
//! carry each effect out, never *when* to poll.
//!
//! ```
//! use lifeguard_core::config::Config;
//! use lifeguard_core::driver::{Driver, OwnedOutput};
//! use lifeguard_core::node::{Input, SwimNode};
//! use lifeguard_core::time::Time;
//! use lifeguard_proto::NodeAddr;
//!
//! let node = SwimNode::new(
//!     "node-0".into(),
//!     NodeAddr::new([10, 0, 0, 1], 7946),
//!     Config::lan().lifeguard(),
//!     42,
//! );
//! let mut driver = Driver::new(node);
//! let mut sink: Vec<OwnedOutput> = Vec::new(); // Vec<OwnedOutput> is a Sink
//! driver.start(Time::ZERO, &mut sink);
//! driver
//!     .handle(Input::Tick, Time::ZERO, &mut sink)
//!     .expect("tick is infallible");
//! assert!(sink.is_empty()); // nothing to send until peers exist
//! assert!(driver.next_wake().is_some());
//! ```

use bytes::Bytes;
use lifeguard_proto::{DecodeError, Message, NodeAddr};

use crate::event::Event;
use crate::node::{Input, Output, SwimNode};
use crate::time::Time;

/// Where a [`Driver`] dispatches the node's effects.
///
/// `transmit` receives the packet payload as a borrow of the node's
/// scratch buffer: a socket runtime can hand it straight to
/// `send_to` with zero copies; a runtime that must hold it (a simulated
/// in-flight packet, a paused node's outbox) copies it into an
/// [`OwnedOutput`].
pub trait Sink {
    /// Send one datagram.
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]);
    /// Send one message over the reliable stream transport.
    fn stream(&mut self, to: NodeAddr, msg: Message);
    /// Deliver one membership conclusion to the application.
    fn event(&mut self, event: Event);
}

/// An owned copy of an [`Output`], for sinks that must hold effects past
/// the poll that produced them.
#[derive(Clone, Debug)]
pub enum OwnedOutput {
    /// A datagram, with the payload copied out of the node's scratch.
    Packet {
        /// Destination address.
        to: NodeAddr,
        /// Encoded packet bytes (owned).
        payload: Bytes,
    },
    /// A reliable-stream message.
    Stream {
        /// Destination address.
        to: NodeAddr,
        /// The message to deliver reliably.
        msg: Message,
    },
    /// A membership conclusion.
    Event(Event),
}

impl From<Output<'_>> for OwnedOutput {
    fn from(o: Output<'_>) -> OwnedOutput {
        match o {
            Output::Packet { to, payload } => OwnedOutput::Packet {
                to,
                payload: Bytes::copy_from_slice(payload),
            },
            Output::Stream { to, msg } => OwnedOutput::Stream { to, msg },
            Output::Event(e) => OwnedOutput::Event(e),
        }
    }
}

/// `Vec<OwnedOutput>` collects every effect — the sink used by tests and
/// by runtimes that buffer effects (e.g. a paused simulated node).
impl Sink for Vec<OwnedOutput> {
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
        self.push(OwnedOutput::Packet {
            to,
            payload: Bytes::copy_from_slice(payload),
        });
    }

    fn stream(&mut self, to: NodeAddr, msg: Message) {
        self.push(OwnedOutput::Stream { to, msg });
    }

    fn event(&mut self, event: Event) {
        self.push(OwnedOutput::Event(event));
    }
}

/// Owns the dispatch loop around one [`SwimNode`]: every input is fed
/// through [`Driver::handle`], and the resulting outputs are drained to
/// a [`Sink`] in order before the call returns, so no effect is ever
/// left queued between inputs.
#[derive(Debug)]
pub struct Driver {
    node: SwimNode,
}

impl Driver {
    /// Wraps a node (started or not) in a driver.
    pub fn new(node: SwimNode) -> Driver {
        Driver { node }
    }

    /// Boots the node (see [`SwimNode::start`]) and drains any outputs.
    pub fn start(&mut self, now: Time, sink: &mut impl Sink) {
        self.node.start(now);
        self.drain(sink);
    }

    /// Feeds one input and dispatches every effect it produced to
    /// `sink`, in order.
    ///
    /// # Errors
    ///
    /// Propagates the [`DecodeError`] of a malformed
    /// [`Input::Datagram`]; the node's state is unchanged and nothing is
    /// dispatched in that case. Every other input is infallible.
    pub fn handle(
        &mut self,
        input: Input,
        now: Time,
        sink: &mut impl Sink,
    ) -> Result<(), DecodeError> {
        let res = self.node.handle_input(input, now);
        self.drain(sink);
        res
    }

    /// [`Driver::handle`] of an [`Input::Tick`]: fires all timers due at
    /// or before `now`. A no-op when nothing is due, so runtimes may
    /// call it on a coarse cadence.
    pub fn tick(&mut self, now: Time, sink: &mut impl Sink) {
        self.handle(Input::Tick, now, sink)
            .expect("tick is infallible");
    }

    /// [`Driver::handle`] of an [`Input::Join`]: the join sequence (a
    /// push-pull sync to each seed) goes out through `sink`.
    pub fn join(&mut self, seeds: Vec<NodeAddr>, now: Time, sink: &mut impl Sink) {
        self.handle(Input::Join { seeds }, now, sink)
            .expect("join is infallible");
    }

    /// [`Driver::handle`] of an [`Input::Leave`]: the leave sequence (a
    /// self-signed `dead` flushed to a few peers) goes out through
    /// `sink`.
    pub fn leave(&mut self, now: Time, sink: &mut impl Sink) {
        self.handle(Input::Leave, now, sink)
            .expect("leave is infallible");
    }

    /// When the runtime must next call [`Driver::tick`].
    pub fn next_wake(&self) -> Option<Time> {
        self.node.next_wake()
    }

    /// The wrapped node's exact next timer deadline (see
    /// [`SwimNode::next_deadline`]): what a readiness-driven runtime
    /// passes to its poller as the sleep bound, so timers fire on time
    /// without a fixed-interval tick thread.
    pub fn next_deadline(&self) -> Option<Time> {
        self.node.next_deadline()
    }

    /// Read access to the wrapped node.
    pub fn node(&self) -> &SwimNode {
        &self.node
    }

    /// Mutable access to the wrapped node, for non-driving calls
    /// (e.g. [`SwimNode::bootstrap_peers`]).
    pub fn node_mut(&mut self) -> &mut SwimNode {
        &mut self.node
    }

    /// Unwraps the node.
    pub fn into_node(self) -> SwimNode {
        self.node
    }

    fn drain(&mut self, sink: &mut impl Sink) {
        while let Some(output) = self.node.poll_output() {
            match output {
                Output::Packet { to, payload } => sink.transmit(to, payload),
                Output::Stream { to, msg } => sink.stream(to, msg),
                Output::Event(e) => sink.event(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use bytes::Bytes;
    use lifeguard_proto::{codec, Alive, Incarnation, NodeAddr};

    fn addr(i: u8) -> NodeAddr {
        NodeAddr::new([10, 0, 0, i], 7946)
    }

    fn driver() -> Driver {
        Driver::new(SwimNode::new("local".into(), addr(1), Config::lan(), 1))
    }

    #[test]
    fn driver_dispatches_in_order_and_drains_fully() {
        let mut d = driver();
        let mut sink: Vec<OwnedOutput> = Vec::new();
        d.start(Time::ZERO, &mut sink);
        assert!(sink.is_empty());

        // An alive message produces a join event (and nothing pending).
        let alive = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "p".into(),
            addr: addr(2),
            meta: Bytes::new(),
        });
        d.handle(
            Input::Datagram {
                from: addr(2),
                payload: codec::encode_message(&alive),
            },
            Time::from_secs(1),
            &mut sink,
        )
        .unwrap();
        assert!(sink
            .iter()
            .any(|o| matches!(o, OwnedOutput::Event(Event::MemberJoined { name }) if name.as_str() == "p")));
        assert!(!d.node().has_pending_output(), "handle must drain fully");
    }

    #[test]
    fn join_and_leave_sequence_through_sink() {
        let mut d = driver();
        let mut sink: Vec<OwnedOutput> = Vec::new();
        d.start(Time::ZERO, &mut sink);
        d.join(vec![addr(5)], Time::ZERO, &mut sink);
        assert!(matches!(
            sink.last(),
            Some(OwnedOutput::Stream { to, msg: Message::PushPull(pp) })
                if *to == addr(5) && pp.join && !pp.reply
        ));
        sink.clear();
        d.leave(Time::from_secs(1), &mut sink);
        assert!(d.node().has_left());
    }

    #[test]
    fn malformed_datagram_reports_error_and_dispatches_nothing() {
        let mut d = driver();
        let mut sink: Vec<OwnedOutput> = Vec::new();
        d.start(Time::ZERO, &mut sink);
        let res = d.handle(
            Input::Datagram {
                from: addr(2),
                payload: Bytes::copy_from_slice(&[250, 250]),
            },
            Time::ZERO,
            &mut sink,
        );
        assert!(res.is_err());
        assert!(sink.is_empty());
    }
}
