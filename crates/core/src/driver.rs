//! The shared sans-I/O driver harness.
//!
//! Every runtime — the deterministic simulator, the real UDP/TCP agent,
//! examples, tests — drives a [`SwimNode`]
//! through the same [`Driver`]: feed an [`Input`], and the driver drains
//! the node's output queue into a runtime-supplied [`Sink`] (transmit,
//! stream and event callbacks) before returning. This is the one place
//! the input→poll→dispatch loop exists; runtimes only decide *how* to
//! carry each effect out, never *when* to poll.
//!
//! ```
//! use lifeguard_core::config::Config;
//! use lifeguard_core::driver::{Driver, OwnedOutput};
//! use lifeguard_core::node::{Input, SwimNode};
//! use lifeguard_core::time::Time;
//! use lifeguard_proto::NodeAddr;
//!
//! let node = SwimNode::new(
//!     "node-0".into(),
//!     NodeAddr::new([10, 0, 0, 1], 7946),
//!     Config::lan().lifeguard(),
//!     42,
//! );
//! let mut driver = Driver::new(node);
//! let mut sink: Vec<OwnedOutput> = Vec::new(); // Vec<OwnedOutput> is a Sink
//! driver.start(Time::ZERO, &mut sink);
//! driver
//!     .handle(Input::Tick, Time::ZERO, &mut sink)
//!     .expect("tick is infallible");
//! assert!(sink.is_empty()); // nothing to send until peers exist
//! assert!(driver.next_wake().is_some());
//! ```

use bytes::Bytes;
use lifeguard_proto::{DecodeError, Message, NodeAddr};

use crate::event::Event;
use crate::node::{Input, Output, SwimNode};
use crate::time::Time;

/// Where a [`Driver`] dispatches the node's effects.
///
/// `transmit` receives the packet payload as a borrow of the node's
/// scratch buffer: a socket runtime can hand it straight to
/// `send_to` with zero copies; a runtime that must hold it (a simulated
/// in-flight packet, a paused node's outbox) copies it into an
/// [`OwnedOutput`].
pub trait Sink {
    /// Send one datagram.
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]);
    /// Send one message over the reliable stream transport.
    fn stream(&mut self, to: NodeAddr, msg: Message);
    /// Deliver one membership conclusion to the application.
    fn event(&mut self, event: Event);

    /// Send many datagrams whose payloads are byte ranges of one
    /// arena — the flush of the driver's deferred-packet batch (see
    /// [`Driver::flush_deferred`]). A runtime with a gather-send
    /// (`sendmmsg(2)`) overrides this to transfer the whole batch in
    /// one syscall; the default preserves single-shot behaviour by
    /// forwarding each entry to [`Sink::transmit`] in order.
    fn transmit_batch(&mut self, arena: &[u8], packets: &[(NodeAddr, std::ops::Range<usize>)]) {
        for (to, range) in packets {
            self.transmit(*to, &arena[range.clone()]);
        }
    }
}

/// An owned copy of an [`Output`], for sinks that must hold effects past
/// the poll that produced them.
#[derive(Clone, Debug)]
pub enum OwnedOutput {
    /// A datagram, with the payload copied out of the node's scratch.
    Packet {
        /// Destination address.
        to: NodeAddr,
        /// Encoded packet bytes (owned).
        payload: Bytes,
    },
    /// A reliable-stream message.
    Stream {
        /// Destination address.
        to: NodeAddr,
        /// The message to deliver reliably.
        msg: Message,
    },
    /// A membership conclusion.
    Event(Event),
}

impl From<Output<'_>> for OwnedOutput {
    fn from(o: Output<'_>) -> OwnedOutput {
        match o {
            Output::Packet { to, payload } => OwnedOutput::Packet {
                to,
                payload: Bytes::copy_from_slice(payload),
            },
            Output::Stream { to, msg } => OwnedOutput::Stream { to, msg },
            Output::Event(e) => OwnedOutput::Event(e),
        }
    }
}

/// `Vec<OwnedOutput>` collects every effect — the sink used by tests and
/// by runtimes that buffer effects (e.g. a paused simulated node).
impl Sink for Vec<OwnedOutput> {
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
        self.push(OwnedOutput::Packet {
            to,
            payload: Bytes::copy_from_slice(payload),
        });
    }

    fn stream(&mut self, to: NodeAddr, msg: Message) {
        self.push(OwnedOutput::Stream { to, msg });
    }

    fn event(&mut self, event: Event) {
        self.push(OwnedOutput::Event(event));
    }
}

/// Owns the dispatch loop around one [`SwimNode`]: every input is fed
/// through [`Driver::handle`], and the resulting outputs are drained to
/// a [`Sink`] in order before the call returns, so no effect is ever
/// left queued between inputs.
#[derive(Debug)]
pub struct Driver {
    node: SwimNode,
    /// Packets deferred by the batching entry points
    /// ([`Driver::handle_deferring`]), as ranges into the node's
    /// scratch arena, awaiting [`Driver::flush_deferred`].
    // bounded: the runtime flushes whenever `deferred_packets()` reaches its batch size, so the vec stabilises at one burst
    deferred: Vec<(NodeAddr, std::ops::Range<usize>)>,
}

impl Driver {
    /// Wraps a node (started or not) in a driver.
    pub fn new(node: SwimNode) -> Driver {
        Driver {
            node,
            deferred: Vec::new(),
        }
    }

    /// Boots the node (see [`SwimNode::start`]) and drains any outputs.
    pub fn start(&mut self, now: Time, sink: &mut impl Sink) {
        self.node.start(now);
        self.drain(sink);
    }

    /// Feeds one input and dispatches every effect it produced to
    /// `sink`, in order.
    ///
    /// # Errors
    ///
    /// Propagates the [`DecodeError`] of a malformed
    /// [`Input::Datagram`]; the node's state is unchanged and nothing is
    /// dispatched in that case. Every other input is infallible.
    pub fn handle(
        &mut self,
        input: Input,
        now: Time,
        sink: &mut impl Sink,
    ) -> Result<(), DecodeError> {
        let res = self.node.handle_input(input, now);
        self.drain(sink);
        res
    }

    /// [`Driver::handle`] of an [`Input::Tick`]: fires all timers due at
    /// or before `now`. A no-op when nothing is due, so runtimes may
    /// call it on a coarse cadence.
    pub fn tick(&mut self, now: Time, sink: &mut impl Sink) {
        let res = self.handle(Input::Tick, now, sink);
        debug_invariant!(res.is_ok(), "tick is infallible");
    }

    /// [`Driver::handle`] of an [`Input::Join`]: the join sequence (a
    /// push-pull sync to each seed) goes out through `sink`.
    pub fn join(&mut self, seeds: Vec<NodeAddr>, now: Time, sink: &mut impl Sink) {
        let res = self.handle(Input::Join { seeds }, now, sink);
        debug_invariant!(res.is_ok(), "join is infallible");
    }

    /// [`Driver::handle`] of an [`Input::Leave`]: the leave sequence (a
    /// self-signed `dead` flushed to a few peers) goes out through
    /// `sink`.
    pub fn leave(&mut self, now: Time, sink: &mut impl Sink) {
        let res = self.handle(Input::Leave, now, sink);
        debug_invariant!(res.is_ok(), "leave is infallible");
    }

    /// [`Driver::handle`] for a *batching* runtime: stream and event
    /// effects still dispatch to `sink` immediately and in order, but
    /// packet sends accumulate in the driver's deferred batch (byte
    /// ranges into the node's scratch arena, which is held — kept
    /// valid — across further deferring inputs). The runtime flushes
    /// the accumulated burst with [`Driver::flush_deferred`], turning
    /// many per-packet sends into one gather-send.
    ///
    /// # Errors
    ///
    /// As [`Driver::handle`].
    pub fn handle_deferring(
        &mut self,
        input: Input,
        now: Time,
        sink: &mut impl Sink,
    ) -> Result<(), DecodeError> {
        let res = self.node.handle_input(input, now);
        self.drain_deferring(sink);
        res
    }

    /// [`Driver::handle_deferring`] of one received datagram handed in
    /// as a borrowed slice (see [`SwimNode::handle_datagram_slice`]):
    /// the batched receive path, where payloads live in the runtime's
    /// receive ring and are never copied into an owned buffer.
    ///
    /// # Errors
    ///
    /// As [`Driver::handle`].
    pub fn handle_datagram_slice_deferring(
        &mut self,
        from: NodeAddr,
        payload: &[u8],
        now: Time,
        sink: &mut impl Sink,
    ) -> Result<(), DecodeError> {
        let res = self.node.handle_datagram_slice(from, payload, now);
        self.drain_deferring(sink);
        res
    }

    /// Number of packets currently deferred (the runtime flushes when
    /// this reaches its batch size, bounding arena growth mid-burst).
    pub fn deferred_packets(&self) -> usize {
        self.deferred.len()
    }

    /// Hands the deferred batch to [`Sink::transmit_batch`] and
    /// releases the arena hold. Always safe to call; a flush with
    /// nothing deferred just releases the hold so the node can reclaim
    /// its scratch space.
    pub fn flush_deferred(&mut self, sink: &mut impl Sink) {
        if !self.deferred.is_empty() {
            sink.transmit_batch(self.node.packet_arena(), &self.deferred);
            self.deferred.clear();
        }
        self.node.release_arena();
    }

    /// When the runtime must next call [`Driver::tick`].
    pub fn next_wake(&self) -> Option<Time> {
        self.node.next_wake()
    }

    /// The wrapped node's exact next timer deadline (see
    /// [`SwimNode::next_deadline`]): what a readiness-driven runtime
    /// passes to its poller as the sleep bound, so timers fire on time
    /// without a fixed-interval tick thread.
    pub fn next_deadline(&self) -> Option<Time> {
        self.node.next_deadline()
    }

    /// Read access to the wrapped node.
    pub fn node(&self) -> &SwimNode {
        &self.node
    }

    /// The wrapped node's metrics snapshot (see [`SwimNode::metrics`]):
    /// the protocol half of the observability plane, which runtimes
    /// combine with their own transport counters into a full
    /// `lifeguard_metrics::Snapshot`.
    pub fn metrics(&self) -> lifeguard_metrics::CoreSnapshot {
        self.node.metrics()
    }

    /// Mutable access to the wrapped node, for non-driving calls
    /// (e.g. [`SwimNode::bootstrap_peers`]).
    pub fn node_mut(&mut self) -> &mut SwimNode {
        &mut self.node
    }

    /// Unwraps the node.
    pub fn into_node(self) -> SwimNode {
        self.node
    }

    fn drain(&mut self, sink: &mut impl Sink) {
        while let Some(output) = self.node.poll_output() {
            match output {
                Output::Packet { to, payload } => sink.transmit(to, payload),
                Output::Stream { to, msg } => sink.stream(to, msg),
                Output::Event(e) => sink.event(e),
            }
        }
    }

    fn drain_deferring(&mut self, sink: &mut impl Sink) {
        self.node.drain_split(&mut self.deferred, |output| match output {
            Output::Stream { to, msg } => sink.stream(to, msg),
            Output::Event(e) => sink.event(e),
            Output::Packet { .. } => debug_invariant!(false, "drain_split routes packets to the batch"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use bytes::Bytes;
    use lifeguard_proto::{codec, Alive, Incarnation, NodeAddr};

    fn addr(i: u8) -> NodeAddr {
        NodeAddr::new([10, 0, 0, i], 7946)
    }

    fn driver() -> Driver {
        Driver::new(SwimNode::new("local".into(), addr(1), Config::lan(), 1))
    }

    #[test]
    fn driver_dispatches_in_order_and_drains_fully() {
        let mut d = driver();
        let mut sink: Vec<OwnedOutput> = Vec::new();
        d.start(Time::ZERO, &mut sink);
        assert!(sink.is_empty());

        // An alive message produces a join event (and nothing pending).
        let alive = Message::Alive(Alive {
            incarnation: Incarnation(1),
            node: "p".into(),
            addr: addr(2),
            meta: Bytes::new(),
        });
        d.handle(
            Input::Datagram {
                from: addr(2),
                payload: codec::encode_message(&alive),
            },
            Time::from_secs(1),
            &mut sink,
        )
        .unwrap();
        assert!(sink
            .iter()
            .any(|o| matches!(o, OwnedOutput::Event(Event::MemberJoined { name }) if name.as_str() == "p")));
        assert!(!d.node().has_pending_output(), "handle must drain fully");
    }

    #[test]
    fn join_and_leave_sequence_through_sink() {
        let mut d = driver();
        let mut sink: Vec<OwnedOutput> = Vec::new();
        d.start(Time::ZERO, &mut sink);
        d.join(vec![addr(5)], Time::ZERO, &mut sink);
        assert!(matches!(
            sink.last(),
            Some(OwnedOutput::Stream { to, msg: Message::PushPull(pp) })
                if *to == addr(5) && pp.join && !pp.reply
        ));
        sink.clear();
        d.leave(Time::from_secs(1), &mut sink);
        assert!(d.node().has_left());
    }

    /// A sink that records how flushes arrive: which packets came
    /// through `transmit_batch` (and in what groups) vs single-shot
    /// `transmit`.
    #[derive(Default)]
    struct BatchRecorder {
        effects: Vec<OwnedOutput>,
        batches: Vec<usize>,
        singles: usize,
    }

    impl Sink for BatchRecorder {
        fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
            self.singles += 1;
            self.effects.push(OwnedOutput::Packet {
                to,
                payload: Bytes::copy_from_slice(payload),
            });
        }

        fn stream(&mut self, to: NodeAddr, msg: Message) {
            self.effects.push(OwnedOutput::Stream { to, msg });
        }

        fn event(&mut self, event: Event) {
            self.effects.push(OwnedOutput::Event(event));
        }

        fn transmit_batch(&mut self, arena: &[u8], packets: &[(NodeAddr, std::ops::Range<usize>)]) {
            self.batches.push(packets.len());
            for (to, range) in packets {
                self.effects.push(OwnedOutput::Packet {
                    to: *to,
                    payload: Bytes::copy_from_slice(&arena[range.clone()]),
                });
            }
        }
    }

    fn alive_datagram(name: &str, i: u8) -> Input {
        Input::Datagram {
            from: addr(i),
            payload: codec::encode_message(&Message::Alive(Alive {
                incarnation: Incarnation(1),
                node: name.into(),
                addr: addr(i),
                meta: Bytes::new(),
            })),
        }
    }

    /// Drives a node to the point where a tick produces packets: two
    /// live peers, then enough time for a probe round.
    fn packet_producing_driver() -> Driver {
        let mut d = driver();
        let mut sink: Vec<OwnedOutput> = Vec::new();
        d.start(Time::ZERO, &mut sink);
        d.handle(alive_datagram("p1", 2), Time::from_millis(10), &mut sink)
            .unwrap();
        d.handle(alive_datagram("p2", 3), Time::from_millis(20), &mut sink)
            .unwrap();
        d
    }

    #[test]
    fn deferring_handle_batches_packets_and_flush_matches_single_shot() {
        // Two identical drivers; one drained single-shot, one deferred.
        let mut plain = packet_producing_driver();
        let mut batched = packet_producing_driver();

        let mut plain_sink = BatchRecorder::default();
        let mut batch_sink = BatchRecorder::default();
        let t = Time::from_secs(2);
        plain.tick(t, &mut plain_sink);
        batched
            .handle_deferring(Input::Tick, t, &mut batch_sink)
            .unwrap();
        assert!(plain_sink.singles > 0, "the tick must produce packets");
        assert_eq!(batch_sink.singles, 0, "nothing sent before the flush");
        assert_eq!(
            batched.deferred_packets(),
            plain_sink.singles,
            "every packet of the burst is deferred"
        );

        batched.flush_deferred(&mut batch_sink);
        assert_eq!(batched.deferred_packets(), 0);
        assert_eq!(batch_sink.batches.iter().sum::<usize>(), plain_sink.singles);

        // Payload-for-payload identical effects, order preserved.
        let payloads = |s: &BatchRecorder| -> Vec<(NodeAddr, Bytes)> {
            s.effects
                .iter()
                .filter_map(|o| match o {
                    OwnedOutput::Packet { to, payload } => Some((*to, payload.clone())),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(payloads(&plain_sink), payloads(&batch_sink));
    }

    #[test]
    fn deferred_ranges_survive_inputs_between_drive_and_flush() {
        let mut d = packet_producing_driver();
        let mut sink = BatchRecorder::default();
        d.handle_deferring(Input::Tick, Time::from_secs(2), &mut sink)
            .unwrap();
        let first_burst = d.deferred_packets();
        assert!(first_burst > 0);
        // More inputs while the batch is held: the arena accumulates
        // instead of being reclaimed, so earlier ranges stay valid.
        d.handle_deferring(alive_datagram("p3", 4), Time::from_secs(2), &mut sink)
            .unwrap();
        d.handle_deferring(Input::Tick, Time::from_secs(4), &mut sink)
            .unwrap();
        assert!(d.deferred_packets() >= first_burst);
        d.flush_deferred(&mut sink);
        for o in &sink.effects {
            if let OwnedOutput::Packet { payload, .. } = o {
                assert!(!payload.is_empty(), "no range may dangle or go stale");
            }
        }
        // After the flush released the hold, the next drained input
        // reclaims the arena.
        d.handle(Input::Tick, Time::from_secs(6), &mut sink).unwrap();
        assert!(!d.node().has_pending_output());
    }

    #[test]
    fn flush_with_nothing_deferred_is_a_no_op_release() {
        let mut d = driver();
        let mut sink = BatchRecorder::default();
        d.start(Time::ZERO, &mut sink);
        d.flush_deferred(&mut sink);
        assert!(sink.batches.is_empty());
        assert_eq!(sink.singles, 0);
    }

    #[test]
    fn malformed_datagram_reports_error_and_dispatches_nothing() {
        let mut d = driver();
        let mut sink: Vec<OwnedOutput> = Vec::new();
        d.start(Time::ZERO, &mut sink);
        let res = d.handle(
            Input::Datagram {
                from: addr(2),
                payload: Bytes::copy_from_slice(&[250, 250]),
            },
            Time::ZERO,
            &mut sink,
        );
        assert!(res.is_err());
        assert!(sink.is_empty());
    }
}
