//! Round-robin probe target selection.
//!
//! SWIM's refinement over pure random probing: each member walks its
//! member list in round-robin order so worst-case first-detection time is
//! bounded, but the list order is random and *new members are inserted at
//! random positions*, so the expected detection time matches the random
//! scheme (paper §III-A).

use lifeguard_proto::NodeName;
use rand::{Rng, RngExt};

use crate::membership::Membership;

/// The local node's probe rotation.
#[derive(Clone, Debug, Default)]
pub struct ProbeList {
    // bounded: ≤ cluster size live names plus stale ones, compacted lazily when stale entries are skipped during selection
    order: Vec<NodeName>,
    next: usize,
}

impl ProbeList {
    /// Creates an empty rotation.
    pub fn new() -> Self {
        ProbeList::default()
    }

    /// Number of names in the rotation (live and stale entries alike;
    /// stale entries are skipped lazily during [`ProbeList::next_target`]).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the rotation is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Inserts a newly discovered member at a random position, per SWIM.
    /// Positions at or before the cursor are shifted so the new member is
    /// visited within the current sweep where possible.
    pub fn insert<R: Rng>(&mut self, name: NodeName, rng: &mut R) {
        let pos = rng.random_range(0..=self.order.len());
        self.order.insert(pos, name);
        if pos < self.next {
            self.next += 1;
        }
    }

    /// Bulk insertion for cluster bootstrap: appends all names and
    /// reshuffles once (O(total)), instead of one O(n) positional insert
    /// per member. Restarts the sweep.
    pub fn extend_shuffled<R: Rng>(
        &mut self,
        names: impl IntoIterator<Item = NodeName>,
        rng: &mut R,
    ) {
        self.order.extend(names);
        self.reshuffle(rng);
    }

    /// Picks the next probe target: advances round-robin, skipping
    /// entries for which `eligible` is false and dropping entries no
    /// longer in `membership`. Reshuffles at the end of each sweep.
    ///
    /// Returns `None` when no eligible member exists.
    // lint: allow(panic_path) — `idx = self.next` is re-checked against `order.len()` at the top of every iteration, and `order.remove(idx)` / `order[idx]` only run on that validated index
    pub fn next_target<R: Rng>(
        &mut self,
        membership: &Membership,
        rng: &mut R,
        mut eligible: impl FnMut(&NodeName) -> bool,
    ) -> Option<NodeName> {
        // One full sweep plus one reshuffle is enough to visit every
        // candidate; two sweeps bounds the loop even with removals.
        let mut inspected = 0;
        let limit = self.order.len().saturating_mul(2).max(1);
        while inspected < limit {
            if self.order.is_empty() {
                return None;
            }
            if self.next >= self.order.len() {
                self.reshuffle(rng);
                continue;
            }
            let idx = self.next;
            if membership.get(&self.order[idx]).is_none() {
                // Member was reaped: drop from rotation without advancing.
                self.order.remove(idx);
                inspected += 1;
                continue;
            }
            self.next += 1;
            inspected += 1;
            if eligible(&self.order[idx]) {
                // Clone (an `Arc` bump) only for the selected target.
                return Some(self.order[idx].clone());
            }
        }
        None
    }

    /// Fisher–Yates reshuffle, restarting the sweep.
    fn reshuffle<R: Rng>(&mut self, rng: &mut R) {
        let n = self.order.len();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            self.order.swap(i, j);
        }
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::Member;
    use crate::time::Time;
    use lifeguard_proto::{Incarnation, NodeAddr};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn setup(n: usize) -> (Membership, ProbeList, StdRng) {
        let mut membership = Membership::new();
        let mut list = ProbeList::new();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..n {
            let name = NodeName::from(format!("node-{i}"));
            membership.upsert(Member::new(
                name.clone(),
                NodeAddr::new([10, 0, 0, i as u8], 1),
                Incarnation(0),
                Time::ZERO,
            ));
            list.insert(name, &mut rng);
        }
        (membership, list, rng)
    }

    #[test]
    fn visits_every_member_each_sweep() {
        let (membership, mut list, mut rng) = setup(8);
        for sweep in 0..5 {
            let mut seen = Vec::new();
            for _ in 0..8 {
                seen.push(list.next_target(&membership, &mut rng, |_| true).unwrap());
            }
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), 8, "sweep {sweep} revisited a member");
        }
    }

    #[test]
    fn skips_ineligible_members() {
        let (membership, mut list, mut rng) = setup(4);
        for _ in 0..20 {
            let t = list
                .next_target(&membership, &mut rng, |n| n.as_str() != "node-2")
                .unwrap();
            assert_ne!(t.as_str(), "node-2");
        }
    }

    #[test]
    fn returns_none_when_nothing_eligible() {
        let (membership, mut list, mut rng) = setup(4);
        assert!(list.next_target(&membership, &mut rng, |_| false).is_none());
        let (_, mut empty, mut rng2) = setup(0);
        let empty_membership = Membership::new();
        assert!(empty
            .next_target(&empty_membership, &mut rng2, |_| true)
            .is_none());
    }

    #[test]
    fn drops_members_removed_from_membership() {
        let (mut membership, mut list, mut rng) = setup(4);
        membership.remove(&"node-1".into());
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(
                list.next_target(&membership, &mut rng, |_| true)
                    .unwrap()
                    .as_str()
                    .to_owned(),
            );
        }
        assert!(!seen.contains(&"node-1".to_owned()));
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn insertion_positions_are_spread_randomly() {
        // Insert a marker node into many fresh lists and check its
        // position is not always the same (random insertion per SWIM).
        let mut positions = HashMap::new();
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut list = ProbeList::new();
            for i in 0..9 {
                list.insert(format!("node-{i}").into(), &mut rng);
            }
            list.insert("marker".into(), &mut rng);
            let pos = list
                .order
                .iter()
                .position(|n| n.as_str() == "marker")
                .unwrap();
            *positions.entry(pos).or_insert(0) += 1;
        }
        assert!(
            positions.len() > 3,
            "marker always inserted at the same few positions: {positions:?}"
        );
    }

    #[test]
    fn worst_case_first_visit_is_bounded() {
        // Round-robin guarantees any member is probed within one sweep
        // after the current one (SWIM's bounded-detection refinement).
        let (membership, mut list, mut rng) = setup(16);
        for _ in 0..3 {
            let mut gap = 0;
            let mut found = false;
            for _ in 0..32 {
                gap += 1;
                let t = list.next_target(&membership, &mut rng, |_| true).unwrap();
                if t.as_str() == "node-7" {
                    found = true;
                    break;
                }
            }
            assert!(found, "node-7 not visited within two sweeps (gap {gap})");
        }
    }
}
