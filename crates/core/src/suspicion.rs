//! Suspicion timers (LHA-Suspicion).
//!
//! A suspicion starts with a timeout of `Max` and decays toward `Min` as
//! *independent* suspicions about the same member arrive (paper §IV-B):
//!
//! ```text
//! SuspicionTimeout = max(Min, Max − (Max − Min)·log(C + 1)/log(K + 1))
//! ```
//!
//! where `C` is the number of independent confirmations processed and `K`
//! is the number required to reach `Min`. With `K = 0` (plain SWIM) the
//! timeout is fixed at `Min` (`Min == Max` in that configuration).

use std::collections::HashSet;
use std::time::Duration;

use lifeguard_proto::{Incarnation, NodeName};

use crate::time::Time;

/// State of one active suspicion held by the local node.
#[derive(Clone, Debug)]
pub struct Suspicion {
    /// Incarnation of the member the suspicion applies to.
    incarnation: Incarnation,
    /// Distinct members whose suspicions we have processed (the original
    /// accuser counts as the first).
    // bounded: `confirm` stops inserting once k+1 confirmers are recorded (further names no longer change the timeout)
    confirmers: HashSet<NodeName>,
    k: u32,
    min: Duration,
    max: Duration,
    start: Time,
}

impl Suspicion {
    /// Starts a suspicion raised by `from` at time `now`.
    ///
    /// `k` is the number of *further* independent suspicions needed to
    /// drive the timeout to `min`; `from` itself is recorded but does not
    /// count toward `k` (it is confirmation number zero).
    pub fn new(
        incarnation: Incarnation,
        from: NodeName,
        k: u32,
        min: Duration,
        max: Duration,
        now: Time,
    ) -> Self {
        let mut confirmers = HashSet::new();
        confirmers.insert(from);
        Suspicion {
            incarnation,
            confirmers,
            k,
            min,
            max,
            start: now,
        }
    }

    /// The incarnation under suspicion.
    pub fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    /// Number of independent confirmations processed so far, *excluding*
    /// the original accuser (the paper's `C`).
    pub fn confirmation_count(&self) -> u32 {
        (self.confirmers.len() as u32).saturating_sub(1)
    }

    /// When the suspicion started.
    pub fn started_at(&self) -> Time {
        self.start
    }

    /// Records an independent suspicion from `from`.
    ///
    /// Returns `true` when this is a *new* confirmer and the re-gossip
    /// budget (`K`) has not been exhausted — the caller should then
    /// re-gossip the suspect message (paper §IV-B: "the first K
    /// independent suspicions received about the same member are
    /// re-gossiped").
    pub fn confirm(&mut self, from: NodeName) -> bool {
        if self.confirmation_count() >= self.k {
            return false;
        }
        self.confirmers.insert(from)
    }

    /// Raises the tracked incarnation (a fresh suspect message about a
    /// higher incarnation restarts precedence but keeps the timer).
    pub fn observe_incarnation(&mut self, incarnation: Incarnation) {
        if incarnation > self.incarnation {
            self.incarnation = incarnation;
        }
    }

    /// The current timeout duration given the confirmations so far.
    pub fn timeout(&self) -> Duration {
        suspicion_timeout(self.confirmation_count(), self.k, self.min, self.max)
    }

    /// The absolute deadline at which the suspicion becomes a failure
    /// declaration.
    pub fn deadline(&self) -> Time {
        self.start + self.timeout()
    }
}

/// The paper's timeout formula for `c` confirmations out of `k`, clamped
/// to `[min, max]`.
///
/// ```
/// use lifeguard_core::suspicion::suspicion_timeout;
/// use std::time::Duration;
///
/// let min = Duration::from_secs(10);
/// let max = Duration::from_secs(60);
/// assert_eq!(suspicion_timeout(0, 3, min, max), max);
/// assert_eq!(suspicion_timeout(3, 3, min, max), min);
/// assert!(suspicion_timeout(1, 3, min, max) < max);
/// ```
pub fn suspicion_timeout(c: u32, k: u32, min: Duration, max: Duration) -> Duration {
    if k == 0 || min >= max {
        return min;
    }
    let frac = ((c as f64) + 1.0).ln() / ((k as f64) + 1.0).ln();
    let span = max.as_secs_f64() - min.as_secs_f64();
    let t = max.as_secs_f64() - span * frac;
    let clamped = t.max(min.as_secs_f64());
    Duration::from_secs_f64(clamped)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN: Duration = Duration::from_secs(10);
    const MAX: Duration = Duration::from_secs(60);

    #[test]
    fn timeout_starts_at_max_and_ends_at_min() {
        assert_eq!(suspicion_timeout(0, 3, MIN, MAX), MAX);
        assert_eq!(suspicion_timeout(3, 3, MIN, MAX), MIN);
        // Beyond k clamps to min.
        assert_eq!(suspicion_timeout(10, 3, MIN, MAX), MIN);
    }

    #[test]
    fn timeout_decays_logarithmically() {
        // Each successive confirmation shrinks the timeout by less.
        let t0 = suspicion_timeout(0, 3, MIN, MAX);
        let t1 = suspicion_timeout(1, 3, MIN, MAX);
        let t2 = suspicion_timeout(2, 3, MIN, MAX);
        let t3 = suspicion_timeout(3, 3, MIN, MAX);
        let d1 = t0 - t1;
        let d2 = t1 - t2;
        let d3 = t2 - t3;
        assert!(d1 > d2, "{d1:?} vs {d2:?}");
        assert!(d2 > d3, "{d2:?} vs {d3:?}");
    }

    #[test]
    fn timeout_hand_computed_value() {
        // C=1, K=3: max - (max-min)·ln(2)/ln(4) = 60 - 50·0.5 = 35 s.
        let t = suspicion_timeout(1, 3, MIN, MAX);
        assert!((t.as_secs_f64() - 35.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn k_zero_means_fixed_min() {
        assert_eq!(suspicion_timeout(0, 0, MIN, MAX), MIN);
        assert_eq!(suspicion_timeout(5, 0, MIN, MAX), MIN);
    }

    #[test]
    fn degenerate_min_equals_max() {
        assert_eq!(suspicion_timeout(0, 3, MIN, MIN), MIN);
    }

    #[test]
    fn confirm_counts_distinct_members_only() {
        let mut s = Suspicion::new(Incarnation(1), "a".into(), 3, MIN, MAX, Time::ZERO);
        assert_eq!(s.confirmation_count(), 0);
        // Original accuser never counts as a confirmation.
        assert!(!s.confirm("a".into()));
        assert_eq!(s.confirmation_count(), 0);

        assert!(s.confirm("b".into()));
        assert!(!s.confirm("b".into()), "duplicate must not re-gossip");
        assert_eq!(s.confirmation_count(), 1);

        assert!(s.confirm("c".into()));
        assert!(s.confirm("d".into()));
        assert_eq!(s.confirmation_count(), 3);
        // Budget exhausted.
        assert!(!s.confirm("e".into()));
        assert_eq!(s.confirmation_count(), 3);
    }

    #[test]
    fn deadline_moves_earlier_with_confirmations() {
        let mut s = Suspicion::new(Incarnation(1), "a".into(), 3, MIN, MAX, Time::from_secs(100));
        let d0 = s.deadline();
        s.confirm("b".into());
        let d1 = s.deadline();
        assert!(d1 < d0);
        s.confirm("c".into());
        s.confirm("d".into());
        assert_eq!(s.deadline(), Time::from_secs(110)); // start + min
    }

    #[test]
    fn observe_incarnation_only_raises() {
        let mut s = Suspicion::new(Incarnation(5), "a".into(), 3, MIN, MAX, Time::ZERO);
        s.observe_incarnation(Incarnation(3));
        assert_eq!(s.incarnation(), Incarnation(5));
        s.observe_incarnation(Incarnation(9));
        assert_eq!(s.incarnation(), Incarnation(9));
    }

    #[test]
    fn swim_config_has_fixed_deadline() {
        let mut s = Suspicion::new(Incarnation(1), "a".into(), 0, MIN, MIN, Time::ZERO);
        let d0 = s.deadline();
        assert!(!s.confirm("b".into()));
        assert_eq!(s.deadline(), d0);
        assert_eq!(d0, Time::ZERO + MIN);
    }
}
