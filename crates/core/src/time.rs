//! Protocol time.
//!
//! The protocol core is sans-io: it never reads a clock. All entry points
//! take a [`Time`], a microsecond-resolution instant measured from an
//! arbitrary runtime-defined origin (simulation start, process start…).
//! Spans are expressed with [`std::time::Duration`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A monotonic instant in microseconds since the runtime's origin.
///
/// ```
/// use lifeguard_core::time::Time;
/// use std::time::Duration;
///
/// let t = Time::ZERO + Duration::from_millis(1500);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t - Time::ZERO, Duration::from_millis(1500));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// The runtime origin.
    pub const ZERO: Time = Time(0);

    /// Creates a time from raw microseconds since the origin.
    pub fn from_micros(us: u64) -> Time {
        Time(us)
    }

    /// Creates a time from milliseconds since the origin.
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000)
    }

    /// Creates a time from seconds since the origin.
    pub fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// Microseconds since the origin.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at the maximum representable time.
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(duration_to_micros(d)))
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, d: Duration) -> Time {
        self.saturating_add(d)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Duration {
        debug_assert!(self >= rhs, "time went backwards: {self:?} - {rhs:?}");
        Duration::from_micros(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

fn duration_to_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Multiplies a duration by a float factor, used for timeout scaling.
///
/// Negative or non-finite factors are treated as zero.
pub fn scale_duration(d: Duration, factor: f64) -> Duration {
    if !factor.is_finite() || factor <= 0.0 {
        return Duration::ZERO;
    }
    Duration::from_micros((d.as_micros() as f64 * factor) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(2), Time::from_millis(2000));
        assert_eq!(Time::from_millis(3), Time::from_micros(3000));
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let t = Time::from_secs(10);
        let d = Duration::from_millis(250);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Time::from_secs(1);
        let late = Time::from_secs(5);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_secs(4));
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Time::ZERO;
        t += Duration::from_secs(1);
        assert_eq!(t, Time::from_secs(1));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let t = Time::from_millis(1234);
        assert_eq!(t.to_string(), "1.234s");
        assert!(format!("{t:?}").contains("1.234"));
    }

    #[test]
    fn scale_duration_basics() {
        let d = Duration::from_millis(500);
        assert_eq!(scale_duration(d, 2.0), Duration::from_secs(1));
        assert_eq!(scale_duration(d, 0.0), Duration::ZERO);
        assert_eq!(scale_duration(d, -1.0), Duration::ZERO);
        assert_eq!(scale_duration(d, f64::NAN), Duration::ZERO);
    }
}
