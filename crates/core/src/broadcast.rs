//! Transmit-limited gossip queue.
//!
//! Gossip messages (`alive`, `suspect`, `dead`) are disseminated by
//! piggybacking on failure-detector packets and on dedicated gossip
//! ticks. Each broadcast is (re)transmitted up to `λ·⌈log10(n + 1)⌉`
//! times. Selection prefers messages that have been transmitted *fewer*
//! times (SWIM §III: "updates that have been shared less times are
//! preferred"); ties prefer newer broadcasts.
//!
//! A new broadcast about a node **invalidates** any queued broadcast
//! about the same node — gossip about a member is totally ordered by
//! incarnation precedence, so the superseded message must not keep
//! circulating. This is also how LHA-Suspicion's re-gossip bound arises:
//! each of the first `K` independent suspicions re-enqueues the suspect
//! message (resetting its transmit count), so at most `(K + 1)·λ·log n`
//! copies are ever sent (paper §IV-B).

use bytes::Bytes;
use lifeguard_proto::compound::CompoundBuilder;
use lifeguard_proto::{codec, Message, NodeName};

/// One queued gossip broadcast.
#[derive(Clone, Debug)]
struct QueuedBroadcast {
    /// The member the message is about (invalidation key).
    subject: NodeName,
    /// The decoded message (kept for the Buddy System and debugging).
    msg: Message,
    /// Pre-encoded wire bytes.
    encoded: Bytes,
    /// How many times this broadcast has been transmitted.
    transmits: u32,
    /// Monotonic enqueue stamp; larger = newer.
    id: u64,
}

/// The gossip broadcast queue of one node.
#[derive(Clone, Debug, Default)]
pub struct BroadcastQueue {
    items: Vec<QueuedBroadcast>,
    next_id: u64,
}

impl BroadcastQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BroadcastQueue::default()
    }

    /// Number of queued broadcasts.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue has nothing to gossip.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueues a gossip message, invalidating any queued broadcast about
    /// the same member.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `msg` is not a gossip message.
    pub fn enqueue(&mut self, msg: Message) {
        debug_assert!(msg.is_gossip(), "only gossip messages are broadcast");
        let Some(subject) = msg.gossip_subject().cloned() else {
            return;
        };
        self.items.retain(|q| q.subject != subject);
        let encoded = codec::encode_message(&msg);
        let id = self.next_id;
        self.next_id += 1;
        self.items.push(QueuedBroadcast {
            subject,
            msg,
            encoded,
            transmits: 0,
            id,
        });
    }

    /// The queued message about `subject`, if any (used by tests and
    /// introspection).
    pub fn queued_for(&self, subject: &NodeName) -> Option<&Message> {
        self.items
            .iter()
            .find(|q| &q.subject == subject)
            .map(|q| &q.msg)
    }

    /// Fills `builder` with as many queued broadcasts as fit, preferring
    /// least-transmitted (ties: newest). Each selected broadcast's
    /// transmit count is incremented; broadcasts that reach
    /// `transmit_limit` are retired from the queue.
    ///
    /// `exclude` skips broadcasts about one member (used by the Buddy
    /// System, which has already force-included that member's suspect
    /// message).
    pub fn fill(
        &mut self,
        builder: &mut CompoundBuilder,
        transmit_limit: u32,
        exclude: Option<&NodeName>,
    ) {
        // Selection order: fewest transmits first, then newest.
        let mut order: Vec<usize> = (0..self.items.len()).collect();
        order.sort_by_key(|&i| (self.items[i].transmits, u64::MAX - self.items[i].id));

        let mut used: Vec<usize> = Vec::new();
        for i in order {
            if let Some(ex) = exclude {
                if &self.items[i].subject == ex {
                    continue;
                }
            }
            if builder.remaining() < self.items[i].encoded.len() {
                continue;
            }
            if builder.try_add(self.items[i].encoded.clone()) {
                used.push(i);
            }
        }
        for &i in &used {
            self.items[i].transmits += 1;
        }
        self.items.retain(|q| q.transmits < transmit_limit);
    }

    /// Removes every queued broadcast (used on shutdown).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::compound::decode_packet;
    use lifeguard_proto::{Alive, Incarnation, NodeAddr, Suspect};

    fn suspect(node: &str, from: &str, inc: u64) -> Message {
        Message::Suspect(Suspect {
            incarnation: Incarnation(inc),
            node: node.into(),
            from: from.into(),
        })
    }

    fn alive(node: &str, inc: u64) -> Message {
        Message::Alive(Alive {
            incarnation: Incarnation(inc),
            node: node.into(),
            addr: NodeAddr::new([10, 0, 0, 1], 1),
            meta: Bytes::new(),
        })
    }

    fn drain(q: &mut BroadcastQueue, limit: u32) -> Vec<Message> {
        let mut out = Vec::new();
        loop {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, limit, None);
            match b.finish() {
                None => break,
                Some(packet) => out.extend(decode_packet(&packet).unwrap()),
            }
            if out.len() > 10_000 {
                panic!("queue never drains");
            }
        }
        out
    }

    #[test]
    fn enqueue_and_fill_roundtrip() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        assert_eq!(q.len(), 1);
        let msgs = drain(&mut q, 1);
        assert_eq!(msgs, vec![alive("a", 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn transmit_limit_retires_broadcasts() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        let msgs = drain(&mut q, 5);
        assert_eq!(msgs.len(), 5, "broadcast sent exactly λ·log n times");
    }

    #[test]
    fn newer_message_about_same_node_invalidates_queued() {
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        q.enqueue(alive("a", 2));
        assert_eq!(q.len(), 1);
        assert_eq!(q.queued_for(&"a".into()), Some(&alive("a", 2)));
        let msgs = drain(&mut q, 1);
        assert_eq!(msgs, vec![alive("a", 2)]);
    }

    #[test]
    fn least_transmitted_is_preferred() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        // Transmit "a" once.
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, None);
        assert_eq!(b.len(), 1);

        q.enqueue(alive("b", 1));
        // Tiny budget fits only one message: must pick the fresh "b".
        let one = codec::encode_message(&alive("b", 1)).len();
        let mut b = CompoundBuilder::new(one);
        q.fill(&mut b, 10, None);
        let packet = b.finish().unwrap();
        let msgs = decode_packet(&packet).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
    }

    #[test]
    fn ties_prefer_newer_broadcasts() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("old", 1));
        q.enqueue(alive("new", 1));
        let one = codec::encode_message(&alive("new", 1)).len();
        let mut b = CompoundBuilder::new(one);
        q.fill(&mut b, 10, None);
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("new", 1)]);
    }

    #[test]
    fn exclude_skips_subject() {
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, Some(&"a".into()));
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
    }

    #[test]
    fn re_enqueue_resets_transmit_count() {
        // LHA-Suspicion re-gossip: enqueueing a fresh suspect about the
        // same node restarts its λ·log n budget, giving (K+1)·λ·log n max.
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        let first = drain(&mut q, 3);
        assert_eq!(first.len(), 3);
        q.enqueue(suspect("a", "y", 1));
        let second = drain(&mut q, 3);
        assert_eq!(second.len(), 3);
        assert_eq!(second[0], suspect("a", "y", 1));
    }

    #[test]
    fn fill_respects_packet_budget() {
        let mut q = BroadcastQueue::new();
        for i in 0..50 {
            q.enqueue(alive(&format!("node-{i}"), 1));
        }
        let mut b = CompoundBuilder::new(200);
        q.fill(&mut b, 10, None);
        let packet = b.finish().unwrap();
        assert!(packet.len() <= 200);
        assert!(decode_packet(&packet).unwrap().len() >= 2);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        q.clear();
        assert!(q.is_empty());
    }
}
