//! Transmit-limited gossip queue.
//!
//! Gossip messages (`alive`, `suspect`, `dead`) are disseminated by
//! piggybacking on failure-detector packets and on dedicated gossip
//! ticks. Each broadcast is (re)transmitted up to `λ·⌈log10(n + 1)⌉`
//! times. Selection prefers messages that have been transmitted *fewer*
//! times (SWIM §III: "updates that have been shared less times are
//! preferred"); ties prefer newer broadcasts.
//!
//! A new broadcast about a node **invalidates** any queued broadcast
//! about the same node — gossip about a member is totally ordered by
//! incarnation precedence, so the superseded message must not keep
//! circulating. This is also how LHA-Suspicion's re-gossip bound arises:
//! each of the first `K` independent suspicions re-enqueues the suspect
//! message (resetting its transmit count), so at most `(K + 1)·λ·log n`
//! copies are ever sent (paper §IV-B).
//!
//! # Incremental selection
//!
//! The seed implementation kept a flat `Vec`, ran an O(n) `retain` on
//! every enqueue to invalidate the subject's older broadcast, and
//! re-sorted the whole queue (O(n log n)) for every packet filled. This
//! version keeps the entries in a `HashMap` keyed by a monotonically
//! increasing id, an O(1) `HashMap<NodeName, id>` invalidation index,
//! and a lazy max-heap ordered by the selection key
//! `(fewest transmits, newest id)`:
//!
//! * [`BroadcastQueue::enqueue`] (and the invalidation it implies) is
//!   O(1) map work plus one amortized-O(1) heap push — invalidated
//!   entries are *not* touched in the heap; their stale heap items are
//!   discarded when they eventually surface.
//! * [`BroadcastQueue::fill`] pops in selection order and does
//!   O(selected + skipped) work per packet instead of sorting all n
//!   queued broadcasts; a running lower bound of the smallest encoded
//!   message lets it stop as soon as nothing else can fit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use bytes::Bytes;
use lifeguard_proto::compound::{CompoundBuilder, MAX_COMPOUND_PARTS};
use lifeguard_proto::{codec, Message, NodeName};

/// One queued gossip broadcast.
#[derive(Clone, Debug)]
struct QueuedBroadcast {
    /// The member the message is about (invalidation key).
    subject: NodeName,
    /// The decoded message (kept for the Buddy System and debugging).
    msg: Message,
    /// Pre-encoded wire bytes.
    encoded: Bytes,
    /// How many times this broadcast has been transmitted.
    transmits: u32,
}

/// Heap item: `(Reverse(transmits), id)` under max-heap order pops the
/// least-transmitted entry first, newest (largest id) on ties — the
/// exact selection key the seed obtained by sorting.
type HeapItem = (Reverse<u32>, u64);

/// The gossip broadcast queue of one node.
#[derive(Clone, Debug, Default)]
pub struct BroadcastQueue {
    /// Live entries by id. An id missing here but still in the heap is a
    /// stale heap item (invalidated or re-prioritised) and is dropped
    /// when popped.
    // bounded: one live entry per subject member — enqueueing about a known subject retires its predecessor, so |entries| ≤ cluster size
    entries: HashMap<u64, QueuedBroadcast>,
    /// The current broadcast id per subject (invalidation index).
    // bounded: one key per subject member, unlinked on retire — ≤ cluster size
    by_subject: HashMap<NodeName, u64>,
    /// Selection order with lazy deletion.
    // bounded: ≤ |entries| live items plus stale items, which every fill pops and drops; a subject re-broadcast adds at most one stale item
    heap: BinaryHeap<HeapItem>,
    /// Monotonic enqueue stamp; larger = newer.
    next_id: u64,
    /// Lower bound on the smallest encoded entry currently queued
    /// (reset when the queue empties); lets `fill` stop early.
    min_len: usize,
    /// The transmit limit seen by the previous `fill`; a shrink (the
    /// cluster got smaller) triggers an eager purge of over-limit
    /// entries, matching the seed's retire-every-fill semantics even
    /// when a fill exits before popping them.
    last_limit: u32,
}

impl BroadcastQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BroadcastQueue::default()
    }

    /// Number of queued broadcasts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue has nothing to gossip.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueues a gossip message, invalidating any queued broadcast about
    /// the same member. Amortized O(1).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `msg` is not a gossip message.
    pub fn enqueue(&mut self, msg: Message) {
        debug_assert!(msg.is_gossip(), "only gossip messages are broadcast");
        let Some(subject) = msg.gossip_subject().cloned() else {
            return;
        };
        let encoded = codec::encode_message(&msg);
        if self.entries.is_empty() {
            self.min_len = usize::MAX;
        }
        self.min_len = self.min_len.min(encoded.len());
        let id = self.next_id;
        self.next_id += 1;
        if let Some(old) = self.by_subject.insert(subject.clone(), id) {
            // The superseded broadcast stops existing now; its heap item
            // is discarded lazily when popped.
            self.entries.remove(&old);
        }
        self.entries.insert(
            id,
            QueuedBroadcast {
                subject,
                msg,
                encoded,
                transmits: 0,
            },
        );
        self.heap.push((Reverse(0), id));
        // Stale items (from invalidations of rarely-selected subjects)
        // are normally discarded as they surface, but sustained churn
        // can strand them below fresher entries forever; compact once
        // they outnumber live entries 2:1.
        if self.heap.len() > 2 * self.entries.len() + 16 {
            self.heap = self
                .entries
                .iter()
                .map(|(&id, e)| (Reverse(e.transmits), id))
                .collect();
        }
    }

    /// The queued message about `subject`, if any (used by tests and
    /// introspection). O(1).
    pub fn queued_for(&self, subject: &NodeName) -> Option<&Message> {
        let id = self.by_subject.get(subject)?;
        self.entries.get(id).map(|q| &q.msg)
    }

    /// Fills `builder` with as many queued broadcasts as fit, preferring
    /// least-transmitted (ties: newest). Each selected broadcast's
    /// transmit count is incremented; broadcasts that reach
    /// `transmit_limit` are retired from the queue.
    ///
    /// `exclude` skips broadcasts about one member (used by the Buddy
    /// System, which has already force-included that member's suspect
    /// message).
    pub fn fill(
        &mut self,
        builder: &mut CompoundBuilder,
        transmit_limit: u32,
        exclude: Option<&NodeName>,
    ) {
        self.fill_fanout(builder, transmit_limit, exclude, 1);
    }

    /// [`BroadcastQueue::fill`] for a packet that will be sent to
    /// `copies` destinations at once (the batched gossip fan-out: one
    /// encode pass, one packet, N recipients). Each selected broadcast
    /// is charged `copies` transmissions — the same aggregate
    /// accounting as `copies` separate fills — so the
    /// `λ·⌈log10(n + 1)⌉` dissemination bound is preserved. A broadcast
    /// within `copies` of the limit still goes to all `copies`
    /// recipients and is then retired, overshooting its bound by at
    /// most `copies − 1` sends on its final fan-out.
    pub fn fill_fanout(
        &mut self,
        builder: &mut CompoundBuilder,
        transmit_limit: u32,
        exclude: Option<&NodeName>,
        copies: u32,
    ) {
        let copies = copies.max(1);
        if transmit_limit < self.last_limit {
            // O(n), but only on the rare downward log10(n) boundary
            // crossing; over-limit entries popped during normal fills
            // are retired lazily below.
            let over: Vec<u64> = self
                .entries
                .iter()
                .filter(|(_, e)| e.transmits >= transmit_limit)
                .map(|(&id, _)| id)
                .collect();
            for id in over {
                self.retire(id);
            }
        }
        self.last_limit = transmit_limit;
        // Entries selected this fill are re-queued only after the loop,
        // so no broadcast is packed twice into one packet.
        let mut requeue: Vec<HeapItem> = Vec::new();
        while let Some((Reverse(transmits), id)) = self.heap.pop() {
            let Some(entry) = self.entries.get(&id) else {
                continue; // invalidated: drop the stale heap item
            };
            if entry.transmits != transmits {
                continue; // re-prioritised: a fresher heap item exists
            }
            if transmits >= transmit_limit {
                // The limit shrank (cluster got smaller) below this
                // entry's count: retire it.
                self.retire(id);
                continue;
            }
            if builder.len() >= MAX_COMPOUND_PARTS {
                requeue.push((Reverse(transmits), id));
                break;
            }
            if exclude.is_some_and(|ex| &entry.subject == ex) {
                requeue.push((Reverse(transmits), id));
                continue;
            }
            if entry.encoded.len() > builder.remaining() {
                requeue.push((Reverse(transmits), id));
                if builder.remaining() < self.min_len {
                    break; // nothing queued can be smaller
                }
                continue;
            }
            if builder.try_add_bytes(&entry.encoded) {
                let after = transmits + copies;
                if after >= transmit_limit {
                    self.retire(id);
                } else {
                    debug_invariant!(self.entries.contains_key(&id), "entry checked above");
                    if let Some(entry) = self.entries.get_mut(&id) {
                        entry.transmits = after;
                    }
                    requeue.push((Reverse(after), id));
                }
            } else {
                requeue.push((Reverse(transmits), id));
            }
        }
        self.heap.extend(requeue);
    }

    /// Removes every queued broadcast (used on shutdown).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_subject.clear();
        self.heap.clear();
        self.min_len = usize::MAX;
        self.last_limit = 0;
    }

    fn retire(&mut self, id: u64) {
        if let Some(entry) = self.entries.remove(&id) {
            // Only unlink the subject if it still points at this entry
            // (a newer broadcast may have replaced it already).
            if self.by_subject.get(&entry.subject) == Some(&id) {
                self.by_subject.remove(&entry.subject);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::compound::decode_packet;
    use lifeguard_proto::{Alive, Incarnation, NodeAddr, Suspect};

    fn suspect(node: &str, from: &str, inc: u64) -> Message {
        Message::Suspect(Suspect {
            incarnation: Incarnation(inc),
            node: node.into(),
            from: from.into(),
        })
    }

    fn alive(node: &str, inc: u64) -> Message {
        Message::Alive(Alive {
            incarnation: Incarnation(inc),
            node: node.into(),
            addr: NodeAddr::new([10, 0, 0, 1], 1),
            meta: Bytes::new(),
        })
    }

    #[test]
    fn fill_fanout_charges_copies_per_selection() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("n", 1));
        // Limit 6, 4 copies: the first fan-out leaves the broadcast at
        // 4 transmits; the second reaches 8 ≥ 6 and retires it.
        let mut b = CompoundBuilder::new(1400);
        q.fill_fanout(&mut b, 6, None, 4);
        assert!(b.finish().is_some());
        assert_eq!(q.len(), 1);
        let mut b = CompoundBuilder::new(1400);
        q.fill_fanout(&mut b, 6, None, 4);
        assert!(b.finish().is_some());
        assert!(q.is_empty(), "retired once the aggregate count hit the limit");
    }

    #[test]
    fn fill_is_fill_fanout_of_one_copy() {
        let (mut a, mut b) = (BroadcastQueue::new(), BroadcastQueue::new());
        a.enqueue(suspect("s", "from", 1));
        b.enqueue(suspect("s", "from", 1));
        for _ in 0..3 {
            let mut ba = CompoundBuilder::new(1400);
            let mut bb = CompoundBuilder::new(1400);
            a.fill(&mut ba, 3, None);
            b.fill_fanout(&mut bb, 3, None, 1);
            assert_eq!(ba.finish(), bb.finish());
        }
        assert!(a.is_empty() && b.is_empty());
    }

    fn drain(q: &mut BroadcastQueue, limit: u32) -> Vec<Message> {
        let mut out = Vec::new();
        loop {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, limit, None);
            match b.finish() {
                None => break,
                Some(packet) => out.extend(decode_packet(&packet).unwrap()),
            }
            if out.len() > 10_000 {
                panic!("queue never drains");
            }
        }
        out
    }

    #[test]
    fn enqueue_and_fill_roundtrip() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        assert_eq!(q.len(), 1);
        let msgs = drain(&mut q, 1);
        assert_eq!(msgs, vec![alive("a", 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn transmit_limit_retires_broadcasts() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        let msgs = drain(&mut q, 5);
        assert_eq!(msgs.len(), 5, "broadcast sent exactly λ·log n times");
    }

    #[test]
    fn newer_message_about_same_node_invalidates_queued() {
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        q.enqueue(alive("a", 2));
        assert_eq!(q.len(), 1);
        assert_eq!(q.queued_for(&"a".into()), Some(&alive("a", 2)));
        let msgs = drain(&mut q, 1);
        assert_eq!(msgs, vec![alive("a", 2)]);
    }

    #[test]
    fn least_transmitted_is_preferred() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        // Transmit "a" once.
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, None);
        assert_eq!(b.len(), 1);

        q.enqueue(alive("b", 1));
        // Tiny budget fits only one message: must pick the fresh "b".
        let one = codec::encode_message(&alive("b", 1)).len();
        let mut b = CompoundBuilder::new(one);
        q.fill(&mut b, 10, None);
        let packet = b.finish().unwrap();
        let msgs = decode_packet(&packet).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
    }

    #[test]
    fn ties_prefer_newer_broadcasts() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("old", 1));
        q.enqueue(alive("new", 1));
        let one = codec::encode_message(&alive("new", 1)).len();
        let mut b = CompoundBuilder::new(one);
        q.fill(&mut b, 10, None);
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("new", 1)]);
    }

    /// Regression for the bucketed selection order: one message per
    /// packet, the full drain sequence must be least-transmitted first
    /// and newest first within a transmit-count class, with invalidation
    /// and retirement folded in.
    #[test]
    fn selection_order_is_least_transmitted_then_newest() {
        let mut q = BroadcastQueue::new();
        // "a" transmitted twice, "b" once, then fresh "c", "d".
        q.enqueue(alive("a", 1));
        for _ in 0..2 {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, 10, None);
        }
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, None); // sends b (0 transmits) and a (2)
        assert_eq!(b.len(), 2);
        q.enqueue(alive("c", 1));
        q.enqueue(alive("d", 1));

        // Now: a=3, b=1, c=0, d=0. A single roomy fill must pack the
        // parts in selection order: transmit classes ascending, newest
        // id first within a class.
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, None);
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        let order: Vec<&str> = msgs
            .iter()
            .map(|m| match m {
                Message::Alive(a) => a.node.as_str(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec!["d", "c", "b", "a"]);
    }

    #[test]
    fn shrinking_transmit_limit_retires_over_limit_entries() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        for _ in 0..3 {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, 10, None);
        }
        // "a" now has 3 transmits; with the limit shrunk to 2 it must be
        // retired without being sent again.
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 2, None);
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
        assert_eq!(q.len(), 1, "over-limit entry retired");
        assert!(q.queued_for(&"a".into()).is_none());
    }

    #[test]
    fn shrinking_limit_purges_even_when_fill_exits_early() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        for _ in 0..3 {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, 10, None);
        }
        // A fill too small to pack anything (fresh "b" doesn't fit, and
        // over-limit "a" is below it in the heap) must still retire "a"
        // when the limit has shrunk below its transmit count.
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(4);
        q.fill(&mut b, 2, None);
        assert!(b.finish().is_none() || q.queued_for(&"b".into()).is_some());
        assert!(q.queued_for(&"a".into()).is_none(), "over-limit entry lingered");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn exclude_skips_subject() {
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, Some(&"a".into()));
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
    }

    #[test]
    fn re_enqueue_resets_transmit_count() {
        // LHA-Suspicion re-gossip: enqueueing a fresh suspect about the
        // same node restarts its λ·log n budget, giving (K+1)·λ·log n max.
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        let first = drain(&mut q, 3);
        assert_eq!(first.len(), 3);
        q.enqueue(suspect("a", "y", 1));
        let second = drain(&mut q, 3);
        assert_eq!(second.len(), 3);
        assert_eq!(second[0], suspect("a", "y", 1));
    }

    #[test]
    fn fill_respects_packet_budget() {
        let mut q = BroadcastQueue::new();
        for i in 0..50 {
            q.enqueue(alive(&format!("node-{i}"), 1));
        }
        let mut b = CompoundBuilder::new(200);
        q.fill(&mut b, 10, None);
        let packet = b.finish().unwrap();
        assert!(packet.len() <= 200);
        assert!(decode_packet(&packet).unwrap().len() >= 2);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        q.clear();
        assert!(q.is_empty());
    }
}
