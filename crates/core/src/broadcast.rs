//! Transmit-limited gossip queue.
//!
//! Gossip messages (`alive`, `suspect`, `dead`) are disseminated by
//! piggybacking on failure-detector packets and on dedicated gossip
//! ticks. Each broadcast is (re)transmitted up to `λ·⌈log10(n + 1)⌉`
//! times. Selection prefers messages that have been transmitted *fewer*
//! times (SWIM §III: "updates that have been shared less times are
//! preferred"); ties prefer newer broadcasts.
//!
//! A new broadcast about a node **invalidates** any queued broadcast
//! about the same node — gossip about a member is totally ordered by
//! incarnation precedence, so the superseded message must not keep
//! circulating. This is also how LHA-Suspicion's re-gossip bound arises:
//! each of the first `K` independent suspicions re-enqueues the suspect
//! message (resetting its transmit count), so at most `(K + 1)·λ·log n`
//! copies are ever sent (paper §IV-B).
//!
//! # Incremental selection
//!
//! The seed implementation kept a flat `Vec`, ran an O(n) `retain` on
//! every enqueue to invalidate the subject's older broadcast, and
//! re-sorted the whole queue (O(n log n)) for every packet filled. This
//! version keeps the entries in a `HashMap` keyed by a monotonically
//! increasing id, an O(1) `HashMap<NodeName, id>` invalidation index,
//! and a lazy max-heap ordered by the selection key
//! `(fewest transmits, newest id)`:
//!
//! * [`BroadcastQueue::enqueue`] (and the invalidation it implies) is
//!   O(1) map work plus one amortized-O(1) heap push — invalidated
//!   entries are *not* touched in the heap; their stale heap items are
//!   discarded when they eventually surface.
//! * [`BroadcastQueue::fill`] pops in selection order and does
//!   O(selected + skipped) work per packet instead of sorting all n
//!   queued broadcasts; a running lower bound of the smallest encoded
//!   message lets it stop as soon as nothing else can fit.
//!
//! # Sharding
//!
//! Under sustained churn at 100k members the entry map, invalidation
//! index, and heap each hold up to one item per member; like the
//! membership table they can be split into S shards (routed by the same
//! stable FNV-1a hash of the *subject* name) to keep each map and heap
//! cache-friendly. Selection stays globally exact: ids come from one
//! monotonic counter, so the selection key `(Reverse(transmits), id)`
//! is a total order and `fill` repeatedly takes the max over the shard
//! heap tops — the packed sequence is byte-identical at every shard
//! count.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use bytes::Bytes;
use lifeguard_proto::compound::{CompoundBuilder, MAX_COMPOUND_PARTS};
use lifeguard_proto::{codec, Message, NodeName};

/// One queued gossip broadcast.
#[derive(Clone, Debug)]
struct QueuedBroadcast {
    /// The member the message is about (invalidation key).
    subject: NodeName,
    /// The decoded message (kept for the Buddy System and debugging).
    msg: Message,
    /// Pre-encoded wire bytes.
    encoded: Bytes,
    /// How many times this broadcast has been transmitted.
    transmits: u32,
}

/// Heap item: `(Reverse(transmits), id)` under max-heap order pops the
/// least-transmitted entry first, newest (largest id) on ties — the
/// exact selection key the seed obtained by sorting. Ids are globally
/// unique, so the order is total even across shards.
type HeapItem = (Reverse<u32>, u64);

/// One shard of the queue: the entries whose subject routes here, their
/// invalidation index, and their slice of the selection heap.
#[derive(Clone, Debug, Default)]
struct BroadcastShard {
    /// Live entries by id. An id missing here but still in the heap is a
    /// stale heap item (invalidated or re-prioritised) and is dropped
    /// when it surfaces.
    // bounded: one live entry per subject member routed here — enqueueing about a known subject retires its predecessor, so |entries| ≤ cluster size
    entries: HashMap<u64, QueuedBroadcast>,
    /// The current broadcast id per subject (invalidation index).
    // bounded: one key per subject member routed here, unlinked on retire — ≤ cluster size
    by_subject: HashMap<NodeName, u64>,
    /// Selection order with lazy deletion.
    // bounded: ≤ |entries| live items plus stale items, which surfacing pops drop; compaction caps stale growth at 2:1
    heap: BinaryHeap<HeapItem>,
}

impl BroadcastShard {
    /// Drops stale/over-limit heap items until the top is a live,
    /// correctly-prioritised entry, and returns that item without
    /// popping it. Over-limit entries found on the way are retired
    /// (the limit shrank below their transmit count).
    fn peek_valid(&mut self, transmit_limit: u32) -> Option<HeapItem> {
        loop {
            let &(Reverse(transmits), id) = self.heap.peek()?;
            match self.entries.get(&id) {
                None => {
                    self.heap.pop(); // invalidated: drop the stale item
                }
                Some(e) if e.transmits != transmits => {
                    self.heap.pop(); // re-prioritised: a fresher item exists
                }
                Some(_) if transmits >= transmit_limit => {
                    self.heap.pop();
                    self.retire(id);
                }
                Some(_) => return Some((Reverse(transmits), id)),
            }
        }
    }

    fn retire(&mut self, id: u64) {
        if let Some(entry) = self.entries.remove(&id) {
            // Only unlink the subject if it still points at this entry
            // (a newer broadcast may have replaced it already).
            if self.by_subject.get(&entry.subject) == Some(&id) {
                self.by_subject.remove(&entry.subject);
            }
        }
    }
}

/// The gossip broadcast queue of one node.
#[derive(Clone, Debug)]
pub struct BroadcastQueue {
    /// At least one shard, fixed at construction; entries are routed by
    /// a stable hash of their subject name.
    // bounded: fixed shard count chosen at construction, never grows
    shards: Vec<BroadcastShard>,
    /// Monotonic enqueue stamp; larger = newer. Global across shards so
    /// the selection key stays a total order.
    next_id: u64,
    /// Lower bound on the smallest encoded entry currently queued
    /// (reset when the queue empties); lets `fill` stop early.
    min_len: usize,
    /// The transmit limit seen by the previous `fill`; a shrink (the
    /// cluster got smaller) triggers an eager purge of over-limit
    /// entries, matching the seed's retire-every-fill semantics even
    /// when a fill exits before popping them.
    last_limit: u32,
    /// Cached entry count across shards.
    len: usize,
}

impl Default for BroadcastQueue {
    fn default() -> Self {
        BroadcastQueue::with_shards(1)
    }
}

impl BroadcastQueue {
    /// Creates an empty single-shard queue.
    pub fn new() -> Self {
        BroadcastQueue::default()
    }

    /// Creates an empty queue with `shards` shards (clamped to ≥ 1).
    /// Like the membership table's shards, the count is invisible to
    /// every observable behaviour — `fill` packs the same sequence at
    /// any S.
    pub fn with_shards(shards: usize) -> Self {
        BroadcastQueue {
            shards: vec![BroadcastShard::default(); shards.max(1)],
            next_id: 0,
            min_len: usize::MAX,
            last_limit: 0,
            len: 0,
        }
    }

    /// Number of queued broadcasts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue has nothing to gossip.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shard a subject routes to (stable FNV-1a, like the
    /// membership table's routing).
    fn shard_of(&self, subject: &NodeName) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in subject.as_str().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // lint: allow(panic_path) — `shards` is non-empty (clamped to >= 1) and never resized, so the divisor is never zero
        (h % self.shards.len() as u64) as usize
    }

    /// Enqueues a gossip message, invalidating any queued broadcast about
    /// the same member. Amortized O(1).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `msg` is not a gossip message.
    pub fn enqueue(&mut self, msg: Message) {
        debug_assert!(msg.is_gossip(), "only gossip messages are broadcast");
        let Some(subject) = msg.gossip_subject().cloned() else {
            return;
        };
        let encoded = codec::encode_message(&msg);
        if self.len == 0 {
            self.min_len = usize::MAX;
        }
        self.min_len = self.min_len.min(encoded.len());
        let id = self.next_id;
        self.next_id += 1;
        let si = self.shard_of(&subject);
        // lint: allow(panic_path) — `shard_of` yields `hash % shards.len()` (0 for one shard); `shards` is non-empty and never resized
        let shard = &mut self.shards[si];
        if let Some(old) = shard.by_subject.insert(subject.clone(), id) {
            // The superseded broadcast stops existing now; its heap item
            // is discarded lazily when it surfaces.
            if shard.entries.remove(&old).is_some() {
                self.len -= 1;
            }
        }
        shard.entries.insert(
            id,
            QueuedBroadcast {
                subject,
                msg,
                encoded,
                transmits: 0,
            },
        );
        self.len += 1;
        shard.heap.push((Reverse(0), id));
        // Stale items (from invalidations of rarely-selected subjects)
        // are normally discarded as they surface, but sustained churn
        // can strand them below fresher entries forever; compact once
        // they outnumber live entries 2:1.
        if shard.heap.len() > 2 * shard.entries.len() + 16 {
            shard.heap = shard
                .entries
                .iter()
                .map(|(&id, e)| (Reverse(e.transmits), id))
                .collect();
        }
    }

    /// The queued message about `subject`, if any (used by tests and
    /// introspection). O(1).
    pub fn queued_for(&self, subject: &NodeName) -> Option<&Message> {
        let shard = &self.shards[self.shard_of(subject)];
        let id = shard.by_subject.get(subject)?;
        shard.entries.get(id).map(|q| &q.msg)
    }

    /// Fills `builder` with as many queued broadcasts as fit, preferring
    /// least-transmitted (ties: newest). Each selected broadcast's
    /// transmit count is incremented; broadcasts that reach
    /// `transmit_limit` are retired from the queue.
    ///
    /// `exclude` skips broadcasts about one member (used by the Buddy
    /// System, which has already force-included that member's suspect
    /// message).
    pub fn fill(
        &mut self,
        builder: &mut CompoundBuilder,
        transmit_limit: u32,
        exclude: Option<&NodeName>,
    ) {
        self.fill_fanout(builder, transmit_limit, exclude, 1);
    }

    /// [`BroadcastQueue::fill`] for a packet that will be sent to
    /// `copies` destinations at once (the batched gossip fan-out: one
    /// encode pass, one packet, N recipients). Each selected broadcast
    /// is charged `copies` transmissions — the same aggregate
    /// accounting as `copies` separate fills — so the
    /// `λ·⌈log10(n + 1)⌉` dissemination bound is preserved. A broadcast
    /// within `copies` of the limit still goes to all `copies`
    /// recipients and is then retired, overshooting its bound by at
    /// most `copies − 1` sends on its final fan-out.
    pub fn fill_fanout(
        &mut self,
        builder: &mut CompoundBuilder,
        transmit_limit: u32,
        exclude: Option<&NodeName>,
        copies: u32,
    ) {
        let copies = copies.max(1);
        if transmit_limit < self.last_limit {
            // O(n), but only on the rare downward log10(n) boundary
            // crossing; over-limit entries surfacing during normal
            // fills are retired lazily in `peek_valid`.
            for si in 0..self.shards.len() {
                // lint: allow(panic_path) — `si` iterates `0..shards.len()`; `shards` never shrinks
                let over: Vec<u64> = self.shards[si]
                    .entries
                    .iter()
                    .filter(|(_, e)| e.transmits >= transmit_limit)
                    .map(|(&id, _)| id)
                    .collect();
                for id in over {
                    // lint: allow(panic_path) — `si` iterates `0..shards.len()`; `shards` never shrinks
                    self.shards[si].retire(id);
                    self.len -= 1;
                }
            }
        }
        self.last_limit = transmit_limit;
        // Entries selected this fill are re-queued only after the loop,
        // so no broadcast is packed twice into one packet.
        let mut requeue: Vec<(usize, HeapItem)> = Vec::new();
        loop {
            // Global selection: the max over the shard heap tops. Ids
            // are globally unique so this is the exact order a single
            // flat heap would pop in, independent of the shard count.
            let mut best: Option<(usize, HeapItem)> = None;
            for si in 0..self.shards.len() {
                // lint: allow(panic_path) — `si` iterates `0..shards.len()`; `shards` never shrinks
                let popped_limit = self.shards[si].entries.len();
                // lint: allow(panic_path) — `si` iterates `0..shards.len()`; `shards` never shrinks
                if let Some(item) = self.shards[si].peek_valid(transmit_limit) {
                    if best.is_none_or(|(_, b)| item > b) {
                        best = Some((si, item));
                    }
                }
                // Entries retired by peek_valid (limit shrank below
                // their count) shrink the global length.
                // lint: allow(panic_path) — `si` came from `0..shards.len()` in the selection loop above; `shards` never shrinks
                self.len -= popped_limit - self.shards[si].entries.len();
            }
            let Some((si, (Reverse(transmits), id))) = best else {
                break;
            };
            // lint: allow(panic_path) — `si` came from `0..shards.len()` in the selection loop above; `shards` never shrinks
            self.shards[si].heap.pop();
            // lint: allow(panic_path) — `si` came from `0..shards.len()` in the selection loop above; `shards` never shrinks
            let Some(entry) = self.shards[si].entries.get(&id) else {
                continue; // unreachable: peek_valid just validated it
            };
            if builder.len() >= MAX_COMPOUND_PARTS {
                requeue.push((si, (Reverse(transmits), id)));
                break;
            }
            if exclude.is_some_and(|ex| &entry.subject == ex) {
                requeue.push((si, (Reverse(transmits), id)));
                continue;
            }
            if entry.encoded.len() > builder.remaining() {
                requeue.push((si, (Reverse(transmits), id)));
                if builder.remaining() < self.min_len {
                    break; // nothing queued can be smaller
                }
                continue;
            }
            if builder.try_add_bytes(&entry.encoded) {
                let after = transmits + copies;
                if after >= transmit_limit {
                    // lint: allow(panic_path) — `si` came from `0..shards.len()` in the selection loop above; `shards` never shrinks
                    self.shards[si].retire(id);
                    self.len -= 1;
                } else {
                    debug_invariant!(
                        self.shards[si].entries.contains_key(&id),
                        "entry checked above"
                    );
                    // lint: allow(panic_path) — `si` came from `0..shards.len()` in the selection loop above; `shards` never shrinks
                    if let Some(entry) = self.shards[si].entries.get_mut(&id) {
                        entry.transmits = after;
                    }
                    requeue.push((si, (Reverse(after), id)));
                }
            } else {
                requeue.push((si, (Reverse(transmits), id)));
            }
        }
        for (si, item) in requeue {
            // lint: allow(panic_path) — every requeued `si` was selected from `0..shards.len()` above; `shards` never shrinks
            self.shards[si].heap.push(item);
        }
    }

    /// Removes every queued broadcast (used on shutdown).
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.entries.clear();
            shard.by_subject.clear();
            shard.heap.clear();
        }
        self.min_len = usize::MAX;
        self.last_limit = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_proto::compound::decode_packet;
    use lifeguard_proto::{Alive, Incarnation, NodeAddr, Suspect};

    fn suspect(node: &str, from: &str, inc: u64) -> Message {
        Message::Suspect(Suspect {
            incarnation: Incarnation(inc),
            node: node.into(),
            from: from.into(),
        })
    }

    fn alive(node: &str, inc: u64) -> Message {
        Message::Alive(Alive {
            incarnation: Incarnation(inc),
            node: node.into(),
            addr: NodeAddr::new([10, 0, 0, 1], 1),
            meta: Bytes::new(),
        })
    }

    #[test]
    fn fill_fanout_charges_copies_per_selection() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("n", 1));
        // Limit 6, 4 copies: the first fan-out leaves the broadcast at
        // 4 transmits; the second reaches 8 ≥ 6 and retires it.
        let mut b = CompoundBuilder::new(1400);
        q.fill_fanout(&mut b, 6, None, 4);
        assert!(b.finish().is_some());
        assert_eq!(q.len(), 1);
        let mut b = CompoundBuilder::new(1400);
        q.fill_fanout(&mut b, 6, None, 4);
        assert!(b.finish().is_some());
        assert!(q.is_empty(), "retired once the aggregate count hit the limit");
    }

    #[test]
    fn fill_is_fill_fanout_of_one_copy() {
        let (mut a, mut b) = (BroadcastQueue::new(), BroadcastQueue::new());
        a.enqueue(suspect("s", "from", 1));
        b.enqueue(suspect("s", "from", 1));
        for _ in 0..3 {
            let mut ba = CompoundBuilder::new(1400);
            let mut bb = CompoundBuilder::new(1400);
            a.fill(&mut ba, 3, None);
            b.fill_fanout(&mut bb, 3, None, 1);
            assert_eq!(ba.finish(), bb.finish());
        }
        assert!(a.is_empty() && b.is_empty());
    }

    fn drain(q: &mut BroadcastQueue, limit: u32) -> Vec<Message> {
        let mut out = Vec::new();
        loop {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, limit, None);
            match b.finish() {
                None => break,
                Some(packet) => out.extend(decode_packet(&packet).unwrap()),
            }
            if out.len() > 10_000 {
                panic!("queue never drains");
            }
        }
        out
    }

    #[test]
    fn enqueue_and_fill_roundtrip() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        assert_eq!(q.len(), 1);
        let msgs = drain(&mut q, 1);
        assert_eq!(msgs, vec![alive("a", 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn transmit_limit_retires_broadcasts() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        let msgs = drain(&mut q, 5);
        assert_eq!(msgs.len(), 5, "broadcast sent exactly λ·log n times");
    }

    #[test]
    fn newer_message_about_same_node_invalidates_queued() {
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        q.enqueue(alive("a", 2));
        assert_eq!(q.len(), 1);
        assert_eq!(q.queued_for(&"a".into()), Some(&alive("a", 2)));
        let msgs = drain(&mut q, 1);
        assert_eq!(msgs, vec![alive("a", 2)]);
    }

    #[test]
    fn least_transmitted_is_preferred() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        // Transmit "a" once.
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, None);
        assert_eq!(b.len(), 1);

        q.enqueue(alive("b", 1));
        // Tiny budget fits only one message: must pick the fresh "b".
        let one = codec::encode_message(&alive("b", 1)).len();
        let mut b = CompoundBuilder::new(one);
        q.fill(&mut b, 10, None);
        let packet = b.finish().unwrap();
        let msgs = decode_packet(&packet).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
    }

    #[test]
    fn ties_prefer_newer_broadcasts() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("old", 1));
        q.enqueue(alive("new", 1));
        let one = codec::encode_message(&alive("new", 1)).len();
        let mut b = CompoundBuilder::new(one);
        q.fill(&mut b, 10, None);
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("new", 1)]);
    }

    /// Regression for the bucketed selection order: one message per
    /// packet, the full drain sequence must be least-transmitted first
    /// and newest first within a transmit-count class, with invalidation
    /// and retirement folded in.
    #[test]
    fn selection_order_is_least_transmitted_then_newest() {
        let mut q = BroadcastQueue::new();
        // "a" transmitted twice, "b" once, then fresh "c", "d".
        q.enqueue(alive("a", 1));
        for _ in 0..2 {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, 10, None);
        }
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, None); // sends b (0 transmits) and a (2)
        assert_eq!(b.len(), 2);
        q.enqueue(alive("c", 1));
        q.enqueue(alive("d", 1));

        // Now: a=3, b=1, c=0, d=0. A single roomy fill must pack the
        // parts in selection order: transmit classes ascending, newest
        // id first within a class.
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, None);
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        let order: Vec<&str> = msgs
            .iter()
            .map(|m| match m {
                Message::Alive(a) => a.node.as_str(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec!["d", "c", "b", "a"]);
    }

    #[test]
    fn shrinking_transmit_limit_retires_over_limit_entries() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        for _ in 0..3 {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, 10, None);
        }
        // "a" now has 3 transmits; with the limit shrunk to 2 it must be
        // retired without being sent again.
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 2, None);
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
        assert_eq!(q.len(), 1, "over-limit entry retired");
        assert!(q.queued_for(&"a".into()).is_none());
    }

    #[test]
    fn shrinking_limit_purges_even_when_fill_exits_early() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        for _ in 0..3 {
            let mut b = CompoundBuilder::new(1400);
            q.fill(&mut b, 10, None);
        }
        // A fill too small to pack anything (fresh "b" doesn't fit, and
        // over-limit "a" is below it in the heap) must still retire "a"
        // when the limit has shrunk below its transmit count.
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(4);
        q.fill(&mut b, 2, None);
        assert!(b.finish().is_none() || q.queued_for(&"b".into()).is_some());
        assert!(q.queued_for(&"a".into()).is_none(), "over-limit entry lingered");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn exclude_skips_subject() {
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        q.enqueue(alive("b", 1));
        let mut b = CompoundBuilder::new(1400);
        q.fill(&mut b, 10, Some(&"a".into()));
        let msgs = decode_packet(&b.finish().unwrap()).unwrap();
        assert_eq!(msgs, vec![alive("b", 1)]);
    }

    #[test]
    fn re_enqueue_resets_transmit_count() {
        // LHA-Suspicion re-gossip: enqueueing a fresh suspect about the
        // same node restarts its λ·log n budget, giving (K+1)·λ·log n max.
        let mut q = BroadcastQueue::new();
        q.enqueue(suspect("a", "x", 1));
        let first = drain(&mut q, 3);
        assert_eq!(first.len(), 3);
        q.enqueue(suspect("a", "y", 1));
        let second = drain(&mut q, 3);
        assert_eq!(second.len(), 3);
        assert_eq!(second[0], suspect("a", "y", 1));
    }

    #[test]
    fn fill_respects_packet_budget() {
        let mut q = BroadcastQueue::new();
        for i in 0..50 {
            q.enqueue(alive(&format!("node-{i}"), 1));
        }
        let mut b = CompoundBuilder::new(200);
        q.fill(&mut b, 10, None);
        let packet = b.finish().unwrap();
        assert!(packet.len() <= 200);
        assert!(decode_packet(&packet).unwrap().len() >= 2);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = BroadcastQueue::new();
        q.enqueue(alive("a", 1));
        q.clear();
        assert!(q.is_empty());
    }

    // ---- shard-count invariance ---------------------------------------

    /// The packed fill sequence must be byte-identical at every shard
    /// count, across enqueues, invalidations, transmit-limit changes,
    /// and fan-out charging.
    #[test]
    fn sharding_packs_identical_sequences() {
        let run = |shards: usize| -> Vec<Vec<u8>> {
            let mut q = BroadcastQueue::with_shards(shards);
            let mut packets = Vec::new();
            for round in 0..30u64 {
                for i in 0..8u64 {
                    if (round + i) % 3 == 0 {
                        q.enqueue(alive(&format!("node-{}", (round * 3 + i) % 20), round + 1));
                    }
                }
                if round % 7 == 2 {
                    q.enqueue(suspect(&format!("node-{}", round % 20), "x", round));
                }
                let limit = if round < 20 { 6 } else { 3 };
                let mut b = CompoundBuilder::new(if round % 4 == 0 { 120 } else { 1400 });
                q.fill_fanout(&mut b, limit, None, if round % 5 == 0 { 3 } else { 1 });
                packets.push(b.finish().map(|p| p.to_vec()).unwrap_or_default());
            }
            // Drain what's left, one roomy packet at a time.
            loop {
                let mut b = CompoundBuilder::new(1400);
                q.fill(&mut b, 3, None);
                match b.finish() {
                    Some(p) => packets.push(p.to_vec()),
                    None => break,
                }
            }
            assert!(q.is_empty());
            packets
        };
        let reference = run(1);
        for shards in [4, 16] {
            assert_eq!(run(shards), reference, "fill order diverged at {shards} shards");
        }
    }

    #[test]
    fn sharded_len_tracks_invalidation_and_retirement() {
        let mut q = BroadcastQueue::with_shards(8);
        for i in 0..20 {
            q.enqueue(alive(&format!("node-{i}"), 1));
        }
        assert_eq!(q.len(), 20);
        for i in 0..20 {
            q.enqueue(suspect(&format!("node-{i}"), "x", 2));
        }
        assert_eq!(q.len(), 20, "re-broadcasts invalidate, not add");
        let msgs = drain(&mut q, 2);
        assert_eq!(msgs.len(), 40, "each entry sent exactly limit times");
        assert!(q.is_empty());
    }
}
