//! Protocol configuration.
//!
//! Defaults follow HashiCorp memberlist's LAN profile, which is what the
//! paper's evaluation ran (Consul with default memberlist settings), with
//! the Lifeguard parameters from §IV of the paper: `BaseProbeInterval` 1 s,
//! `BaseProbeTimeout` 500 ms, LHM saturation `S = 8`, suspicion `α = 5`,
//! `β = 6`, `K = 3`.
//!
//! Each Lifeguard component can be toggled independently, mirroring the
//! five configurations of Table I.

use std::time::Duration;

/// A reason a [`Config`] is rejected by [`Config::validate`].
///
/// Every variant names the invariant it protects; [`SwimNode`] and the
/// runtime builders validate on construction instead of silently
/// accepting a configuration that cannot run the protocol.
///
/// [`SwimNode`]: crate::node::SwimNode
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// `probe_interval` is zero: the failure detector would never run.
    ZeroProbeInterval,
    /// `probe_timeout` is zero: every direct probe would fail instantly.
    ZeroProbeTimeout,
    /// `probe_timeout` exceeds `probe_interval`: the round would end
    /// before its own timeout, so indirect probes could never fire on
    /// time (only the blocked-I/O deferral path tolerates inverted
    /// deadlines, and it is not a configuration).
    ProbeTimeoutExceedsInterval,
    /// `suspicion_alpha` is not a positive finite number.
    InvalidSuspicionAlpha,
    /// `suspicion_beta` is NaN or below 1 (`Max` would undercut `Min`).
    InvalidSuspicionBeta,
    /// `nack_fraction` is outside `(0, 1]`: the nack would be scheduled
    /// at or after the probe timeout it is meant to pre-empt.
    InvalidNackFraction,
    /// `gossip_interval` is zero: the gossip loop would spin.
    ZeroGossipInterval,
    /// `gossip_nodes` is zero: queued broadcasts would never leave the
    /// node through the dedicated gossip tick.
    EmptyGossipFanout,
    /// `packet_budget` is below 64 bytes: no protocol message fits.
    PacketBudgetTooSmall,
    /// `push_pull_interval` is `Some(0)`: use `None` to disable
    /// anti-entropy instead of a zero period.
    ZeroPushPullInterval,
    /// `reconnect_interval` is `Some(0)`: use `None` to disable
    /// reconnects instead of a zero period.
    ZeroReconnectInterval,
    /// `dead_reclaim` is zero: dead members would be reaped before
    /// push-pull could disseminate their fate.
    ZeroDeadReclaim,
    /// `delta_sync_horizon` is zero while delta sync is enabled: every
    /// watermark would be considered stale and every exchange would
    /// fall back to a full sync, silently disabling the feature.
    ZeroDeltaSyncHorizon,
    /// `delta_sync_horizon` is shorter than `push_pull_interval`: a
    /// watermark would expire before the next periodic exchange could
    /// ever reuse it, so no delta would ever be sent.
    DeltaSyncHorizonBelowPushPullInterval,
    /// `delta_sync_partners` is zero while delta sync is enabled: no
    /// pairing could ever stay warm, so anti-entropy would degenerate
    /// to cold full-size exchanges.
    ZeroDeltaSyncPartners,
    /// `shards` is outside `1..=1024`: zero shards cannot store
    /// anything, and more than 1024 is per-shard overhead with no
    /// cache-locality win at any supported cluster size.
    InvalidShardCount,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::ZeroProbeInterval => "probe_interval must be positive",
            ConfigError::ZeroProbeTimeout => "probe_timeout must be positive",
            ConfigError::ProbeTimeoutExceedsInterval => {
                "probe_timeout must not exceed probe_interval"
            }
            ConfigError::InvalidSuspicionAlpha => "suspicion_alpha must be a positive number",
            ConfigError::InvalidSuspicionBeta => "suspicion_beta must be >= 1",
            ConfigError::InvalidNackFraction => "nack_fraction must be in (0, 1]",
            ConfigError::ZeroGossipInterval => "gossip_interval must be positive",
            ConfigError::EmptyGossipFanout => "gossip_nodes must be at least 1",
            ConfigError::PacketBudgetTooSmall => "packet_budget must be at least 64 bytes",
            ConfigError::ZeroPushPullInterval => {
                "push_pull_interval must be positive (use None to disable)"
            }
            ConfigError::ZeroReconnectInterval => {
                "reconnect_interval must be positive (use None to disable)"
            }
            ConfigError::ZeroDeadReclaim => "dead_reclaim must be positive",
            ConfigError::ZeroDeltaSyncHorizon => {
                "delta_sync_horizon must be positive when delta_sync is enabled"
            }
            ConfigError::DeltaSyncHorizonBelowPushPullInterval => {
                "delta_sync_horizon must be at least push_pull_interval"
            }
            ConfigError::ZeroDeltaSyncPartners => {
                "delta_sync_partners must be at least 1 when delta_sync is enabled"
            }
            ConfigError::InvalidShardCount => "shards must be in 1..=1024",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// The LHM deltas applied to each local-health event (paper §IV-A).
///
/// The paper's §VII names these scores as candidates for automatic
/// tuning; they are exposed here so the ablation harness (and users)
/// can experiment. Defaults are the paper's values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AwarenessDeltas {
    /// Successful probe (`ping`/`ping-req` acked in time). Paper: −1.
    pub probe_success: i32,
    /// Failed probe with no nack-capable helpers. Paper: +1.
    pub probe_failed: i32,
    /// Each missed `nack` from an enlisted intermediary. Paper: +1.
    pub missed_nack: i32,
    /// Refuting a suspicion or death claim about ourselves. Paper: +1.
    pub refute: i32,
}

impl Default for AwarenessDeltas {
    fn default() -> Self {
        AwarenessDeltas {
            probe_success: -1,
            probe_failed: 1,
            missed_nack: 1,
            refute: 1,
        }
    }
}

/// Which Lifeguard components are enabled (Table I of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LifeguardConfig {
    /// Local Health Aware Probe: scale probe interval/timeout by the LHM
    /// counter and use `nack` feedback.
    pub lha_probe: bool,
    /// Local Health Aware Suspicion: dynamic suspicion timeouts with
    /// logarithmic decay and re-gossip of the first `K` independent
    /// suspicions.
    pub lha_suspicion: bool,
    /// Buddy System: guarantee a `ping` to a suspected member carries the
    /// `suspect` message about it.
    pub buddy_system: bool,
}

impl LifeguardConfig {
    /// Plain SWIM: everything disabled (the paper's `SWIM` baseline).
    pub fn swim() -> Self {
        LifeguardConfig::default()
    }

    /// Only LHA-Probe enabled (the paper's `LHA-Probe` configuration).
    pub fn lha_probe_only() -> Self {
        LifeguardConfig {
            lha_probe: true,
            ..Default::default()
        }
    }

    /// Only LHA-Suspicion enabled (the paper's `LHA-Suspicion`
    /// configuration).
    pub fn lha_suspicion_only() -> Self {
        LifeguardConfig {
            lha_suspicion: true,
            ..Default::default()
        }
    }

    /// Only the Buddy System enabled (the paper's `Buddy System`
    /// configuration).
    pub fn buddy_system_only() -> Self {
        LifeguardConfig {
            buddy_system: true,
            ..Default::default()
        }
    }

    /// All three components enabled (the paper's `Lifeguard`
    /// configuration).
    pub fn full() -> Self {
        LifeguardConfig {
            lha_probe: true,
            lha_suspicion: true,
            buddy_system: true,
        }
    }

    /// Short label used in reports, matching the paper's Table I names.
    pub fn label(&self) -> &'static str {
        match (self.lha_probe, self.lha_suspicion, self.buddy_system) {
            (false, false, false) => "SWIM",
            (true, false, false) => "LHA-Probe",
            (false, true, false) => "LHA-Suspicion",
            (false, false, true) => "Buddy System",
            (true, true, true) => "Lifeguard",
            _ => "Custom",
        }
    }
}

/// Full protocol configuration.
///
/// Construct with [`Config::lan`] and adjust via the builder-style
/// methods:
///
/// ```
/// use lifeguard_core::config::Config;
///
/// let cfg = Config::lan().lifeguard().with_alpha(4.0).with_beta(2.0);
/// assert_eq!(cfg.lifeguard.label(), "Lifeguard");
/// assert_eq!(cfg.suspicion_alpha, 4.0);
/// ```
#[derive(Clone, Debug)]
pub struct Config {
    /// Base period between failure-detector probe rounds
    /// (`BaseProbeInterval`, 1 s). Scaled by `LHM + 1` when LHA-Probe is
    /// enabled.
    pub probe_interval: Duration,
    /// Base timeout for a direct probe before falling back to indirect
    /// probes (`BaseProbeTimeout`, 500 ms). Scaled by `LHM + 1` when
    /// LHA-Probe is enabled.
    pub probe_timeout: Duration,
    /// Number of members enlisted for indirect probes (SWIM's `k`).
    pub indirect_checks: usize,
    /// Gossip retransmission multiplier λ: each broadcast is transmitted
    /// up to `λ·⌈log10(n + 1)⌉` times.
    pub retransmit_mult: u32,
    /// Suspicion timeout multiplier α:
    /// `Min = α·max(1, log10(n))·probe_interval`.
    pub suspicion_alpha: f64,
    /// Suspicion maximum timeout multiplier β: `Max = β·Min`. Only
    /// effective when LHA-Suspicion is enabled; plain SWIM behaves as
    /// `β = 1` (fixed timeout).
    pub suspicion_beta: f64,
    /// Number of independent suspicion confirmations required to drive
    /// the timeout down to `Min` (the paper's `K`).
    pub suspicion_k: u32,
    /// Period of the dedicated gossip tick (memberlist: 200 ms).
    pub gossip_interval: Duration,
    /// Fan-out of the dedicated gossip tick (memberlist: 3).
    pub gossip_nodes: usize,
    /// How long to keep gossiping to dead members so they learn of their
    /// own death quickly (memberlist: 30 s).
    pub gossip_to_the_dead: Duration,
    /// Period of anti-entropy push-pull sync (memberlist LAN: 30 s);
    /// `None` disables it.
    pub push_pull_interval: Option<Duration>,
    /// Whether periodic anti-entropy uses incremental (delta) push-pull:
    /// each exchange carries only the members whose record changed since
    /// the watermark the peer last confirmed, falling back to a full
    /// [`PushPull`](lifeguard_proto::PushPull) whenever a watermark
    /// cannot be trusted. Joins and reconnects always use full sync.
    pub delta_sync: bool,
    /// How long a per-peer delta watermark stays trustworthy: if the
    /// last completed exchange with the chosen peer is older than this,
    /// the node discards the watermark and falls back to a full sync.
    pub delta_sync_horizon: Duration,
    /// Number of warm sync partners a node aims to keep. Once this many
    /// peers have fresh watermarks, periodic push-pull picks among them
    /// (cheap deltas); below it, a random peer is chosen, cold-starting
    /// a new pairing with a full-size exchange.
    pub delta_sync_partners: usize,
    /// Period of reconnect attempts to members believed dead (Serf-style
    /// `reconnect_interval`, 30 s): a push-pull is sent to one random
    /// dead member so fully partitioned sub-groups re-merge automatically
    /// once connectivity returns. `None` disables reconnects.
    pub reconnect_interval: Option<Duration>,
    /// Saturation limit `S` of the Local Health Multiplier. Only
    /// effective when LHA-Probe is enabled.
    pub awareness_max: u32,
    /// Per-event LHM deltas (paper defaults; exposed for tuning studies).
    pub awareness_deltas: AwarenessDeltas,
    /// Fraction of the probe timeout after which an enlisted intermediary
    /// sends a `nack` (the paper uses 80%).
    pub nack_fraction: f64,
    /// Datagram byte budget for compound packets (UDP MTU headroom).
    pub packet_budget: usize,
    /// How long dead/left members are retained in the table (so that
    /// push-pull can share them) before being reaped.
    pub dead_reclaim: Duration,
    /// Whether to attempt a stream-transport ("TCP") direct probe in
    /// parallel with indirect probes, like memberlist.
    pub stream_fallback_probe: bool,
    /// Shard count of the membership table and broadcast queue
    /// (`1..=1024`). Sharding is observably invisible — same samples,
    /// same change feed, same gossip packing at any count — it only
    /// splits the slab/index/heap storage so 100k-member tables stay
    /// cache-friendly. 1 (the default) keeps the flat layout; large
    /// tables want 8–16.
    pub shards: usize,
    /// Which Lifeguard components are enabled.
    pub lifeguard: LifeguardConfig,
}

impl Config {
    /// memberlist LAN profile with Lifeguard disabled (paper baseline).
    pub fn lan() -> Self {
        Config {
            probe_interval: Duration::from_secs(1),
            probe_timeout: Duration::from_millis(500),
            indirect_checks: 3,
            retransmit_mult: 4,
            suspicion_alpha: 5.0,
            suspicion_beta: 6.0,
            suspicion_k: 3,
            gossip_interval: Duration::from_millis(200),
            gossip_nodes: 3,
            gossip_to_the_dead: Duration::from_secs(30),
            push_pull_interval: Some(Duration::from_secs(30)),
            delta_sync: true,
            delta_sync_horizon: Duration::from_secs(300),
            delta_sync_partners: 3,
            reconnect_interval: Some(Duration::from_secs(30)),
            awareness_max: 8,
            awareness_deltas: AwarenessDeltas::default(),
            nack_fraction: 0.8,
            packet_budget: lifeguard_proto::DEFAULT_PACKET_BUDGET,
            dead_reclaim: Duration::from_secs(300),
            stream_fallback_probe: true,
            shards: 1,
            lifeguard: LifeguardConfig::swim(),
        }
    }

    /// memberlist WAN profile: slower probing and gossip, longer
    /// suspicion, sized for clusters spanning the public internet.
    pub fn wan() -> Self {
        let mut cfg = Config::lan();
        cfg.probe_interval = Duration::from_secs(5);
        cfg.probe_timeout = Duration::from_secs(3);
        cfg.suspicion_alpha = 6.0;
        cfg.gossip_interval = Duration::from_millis(500);
        cfg.gossip_nodes = 4;
        cfg.push_pull_interval = Some(Duration::from_secs(60));
        cfg
    }

    /// memberlist local profile: aggressive timing for co-located
    /// processes (loopback or same rack).
    pub fn local() -> Self {
        let mut cfg = Config::lan();
        cfg.probe_interval = Duration::from_secs(1);
        cfg.probe_timeout = Duration::from_millis(200);
        cfg.suspicion_alpha = 4.0;
        cfg.gossip_interval = Duration::from_millis(100);
        cfg.push_pull_interval = Some(Duration::from_secs(15));
        cfg
    }

    /// Enables all Lifeguard components.
    pub fn lifeguard(mut self) -> Self {
        self.lifeguard = LifeguardConfig::full();
        self
    }

    /// Disables all Lifeguard components (plain SWIM).
    pub fn swim(mut self) -> Self {
        self.lifeguard = LifeguardConfig::swim();
        self
    }

    /// Sets the enabled Lifeguard components.
    pub fn with_components(mut self, components: LifeguardConfig) -> Self {
        self.lifeguard = components;
        self
    }

    /// Sets the suspicion timeout multiplier α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.suspicion_alpha = alpha;
        self
    }

    /// Sets the suspicion maximum timeout multiplier β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.suspicion_beta = beta;
        self
    }

    /// Sets the probe interval and timeout together, preserving their
    /// ratio semantics.
    pub fn with_probe_timing(mut self, interval: Duration, timeout: Duration) -> Self {
        self.probe_interval = interval;
        self.probe_timeout = timeout;
        self
    }

    /// Sets the membership/broadcast shard count (see [`Config::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Effective β: plain SWIM has a fixed suspicion timeout, equivalent
    /// to `β = 1` (paper §V-C).
    pub fn effective_beta(&self) -> f64 {
        if self.lifeguard.lha_suspicion {
            self.suspicion_beta.max(1.0)
        } else {
            1.0
        }
    }

    /// Effective `K`: without LHA-Suspicion no confirmations are needed
    /// (the timeout is already at `Min`).
    pub fn effective_k(&self) -> u32 {
        if self.lifeguard.lha_suspicion {
            self.suspicion_k
        } else {
            0
        }
    }

    /// Effective LHM saturation: without LHA-Probe the multiplier is
    /// pinned to zero (no scaling).
    pub fn effective_awareness_max(&self) -> u32 {
        if self.lifeguard.lha_probe {
            self.awareness_max
        } else {
            0
        }
    }

    /// Whether `nack` responses are requested for indirect probes.
    pub fn nack_enabled(&self) -> bool {
        self.lifeguard.lha_probe
    }

    /// Suspicion timeout lower bound for a group of `n` live members:
    /// `Min = α·max(1, log10(n))·probe_interval` (paper §V-C, memberlist).
    pub fn suspicion_min(&self, n: usize) -> Duration {
        let log = (n.max(1) as f64).log10().max(1.0);
        crate::time::scale_duration(self.probe_interval, self.suspicion_alpha * log)
    }

    /// Suspicion timeout upper bound: `Max = β·Min`.
    pub fn suspicion_max(&self, n: usize) -> Duration {
        crate::time::scale_duration(self.suspicion_min(n), self.effective_beta())
    }

    /// Gossip retransmit limit for a group of `n` members:
    /// `λ·⌈log10(n + 1)⌉`.
    pub fn retransmit_limit(&self, n: usize) -> u32 {
        let log = ((n + 1) as f64).log10().ceil() as u32;
        self.retransmit_mult * log.max(1)
    }

    /// Validates invariants, returning the first violation as a typed
    /// [`ConfigError`].
    ///
    /// Called by [`SwimNode::new`](crate::node::SwimNode::new) and the
    /// runtime builders, so a nonsense configuration (zero probe
    /// interval, inverted timeouts, empty gossip fan-out, …) is rejected
    /// at construction rather than silently accepted.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] describing the first field that is
    /// out of its documented range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.probe_interval.is_zero() {
            return Err(ConfigError::ZeroProbeInterval);
        }
        if self.probe_timeout.is_zero() {
            return Err(ConfigError::ZeroProbeTimeout);
        }
        if self.probe_timeout > self.probe_interval {
            return Err(ConfigError::ProbeTimeoutExceedsInterval);
        }
        if !(self.suspicion_alpha.is_finite() && self.suspicion_alpha > 0.0) {
            return Err(ConfigError::InvalidSuspicionAlpha);
        }
        if self.suspicion_beta.is_nan() || self.suspicion_beta < 1.0 {
            return Err(ConfigError::InvalidSuspicionBeta);
        }
        if !(self.nack_fraction > 0.0 && self.nack_fraction <= 1.0) {
            return Err(ConfigError::InvalidNackFraction);
        }
        if self.gossip_interval.is_zero() {
            return Err(ConfigError::ZeroGossipInterval);
        }
        if self.gossip_nodes == 0 {
            return Err(ConfigError::EmptyGossipFanout);
        }
        if self.packet_budget < 64 {
            return Err(ConfigError::PacketBudgetTooSmall);
        }
        if self.push_pull_interval.is_some_and(|d| d.is_zero()) {
            return Err(ConfigError::ZeroPushPullInterval);
        }
        if self.reconnect_interval.is_some_and(|d| d.is_zero()) {
            return Err(ConfigError::ZeroReconnectInterval);
        }
        if self.dead_reclaim.is_zero() {
            return Err(ConfigError::ZeroDeadReclaim);
        }
        if self.delta_sync {
            if self.delta_sync_horizon.is_zero() {
                return Err(ConfigError::ZeroDeltaSyncHorizon);
            }
            if self
                .push_pull_interval
                .is_some_and(|pp| self.delta_sync_horizon < pp)
            {
                return Err(ConfigError::DeltaSyncHorizonBelowPushPullInterval);
            }
            if self.delta_sync_partners == 0 {
                return Err(ConfigError::ZeroDeltaSyncPartners);
            }
        }
        if !(1..=1024).contains(&self.shards) {
            return Err(ConfigError::InvalidShardCount);
        }
        Ok(())
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_labels() {
        assert_eq!(LifeguardConfig::swim().label(), "SWIM");
        assert_eq!(LifeguardConfig::lha_probe_only().label(), "LHA-Probe");
        assert_eq!(
            LifeguardConfig::lha_suspicion_only().label(),
            "LHA-Suspicion"
        );
        assert_eq!(LifeguardConfig::buddy_system_only().label(), "Buddy System");
        assert_eq!(LifeguardConfig::full().label(), "Lifeguard");
        assert_eq!(
            LifeguardConfig {
                lha_probe: true,
                lha_suspicion: true,
                buddy_system: false
            }
            .label(),
            "Custom"
        );
    }

    #[test]
    fn swim_baseline_is_equivalent_to_alpha5_beta1() {
        let cfg = Config::lan();
        assert_eq!(cfg.effective_beta(), 1.0);
        assert_eq!(cfg.effective_k(), 0);
        assert_eq!(cfg.effective_awareness_max(), 0);
        assert!(!cfg.nack_enabled());
        // Fixed timeout: min == max.
        assert_eq!(cfg.suspicion_min(128), cfg.suspicion_max(128));
    }

    #[test]
    fn lifeguard_enables_dynamic_timeouts() {
        let cfg = Config::lan().lifeguard();
        assert_eq!(cfg.effective_beta(), 6.0);
        assert_eq!(cfg.effective_k(), 3);
        assert_eq!(cfg.effective_awareness_max(), 8);
        assert!(cfg.nack_enabled());
        assert_eq!(cfg.suspicion_max(128).as_micros(), cfg.suspicion_min(128).as_micros() * 6);
    }

    #[test]
    fn suspicion_min_formula_matches_paper() {
        // α=5, n=128 → 5·log10(128)·1s ≈ 10.535s
        let cfg = Config::lan();
        let min = cfg.suspicion_min(128);
        let expected = 5.0 * (128f64).log10();
        assert!((min.as_secs_f64() - expected).abs() < 1e-3);
        // Small groups clamp log10 to 1.
        assert_eq!(cfg.suspicion_min(5), Duration::from_secs(5));
    }

    #[test]
    fn retransmit_limit_grows_logarithmically() {
        let cfg = Config::lan();
        assert_eq!(cfg.retransmit_limit(9), 4); // ceil(log10(10)) = 1
        assert_eq!(cfg.retransmit_limit(128), 4 * 3); // ceil(log10(129)) = 3
        assert!(cfg.retransmit_limit(0) >= 4);
    }

    #[test]
    fn validate_rejects_bad_configs_with_typed_errors() {
        assert_eq!(Config::lan().validate(), Ok(()));
        assert_eq!(Config::wan().validate(), Ok(()));
        assert_eq!(Config::local().lifeguard().validate(), Ok(()));

        let check = |mutate: fn(&mut Config), expected: ConfigError| {
            let mut c = Config::lan();
            mutate(&mut c);
            assert_eq!(c.validate(), Err(expected));
        };
        check(|c| c.probe_interval = Duration::ZERO, ConfigError::ZeroProbeInterval);
        check(|c| c.probe_timeout = Duration::ZERO, ConfigError::ZeroProbeTimeout);
        check(
            |c| c.probe_timeout = Duration::from_secs(5),
            ConfigError::ProbeTimeoutExceedsInterval,
        );
        check(|c| c.suspicion_alpha = 0.0, ConfigError::InvalidSuspicionAlpha);
        check(
            |c| c.suspicion_alpha = f64::INFINITY,
            ConfigError::InvalidSuspicionAlpha,
        );
        check(|c| c.suspicion_beta = 0.5, ConfigError::InvalidSuspicionBeta);
        check(|c| c.nack_fraction = 0.0, ConfigError::InvalidNackFraction);
        check(|c| c.nack_fraction = 1.5, ConfigError::InvalidNackFraction);
        check(|c| c.gossip_interval = Duration::ZERO, ConfigError::ZeroGossipInterval);
        check(|c| c.gossip_nodes = 0, ConfigError::EmptyGossipFanout);
        check(|c| c.packet_budget = 10, ConfigError::PacketBudgetTooSmall);
        check(
            |c| c.push_pull_interval = Some(Duration::ZERO),
            ConfigError::ZeroPushPullInterval,
        );
        check(
            |c| c.reconnect_interval = Some(Duration::ZERO),
            ConfigError::ZeroReconnectInterval,
        );
        check(|c| c.dead_reclaim = Duration::ZERO, ConfigError::ZeroDeadReclaim);
        check(
            |c| c.delta_sync_horizon = Duration::ZERO,
            ConfigError::ZeroDeltaSyncHorizon,
        );
        check(
            |c| c.delta_sync_horizon = Duration::from_secs(10),
            ConfigError::DeltaSyncHorizonBelowPushPullInterval,
        );
        check(
            |c| c.delta_sync_partners = 0,
            ConfigError::ZeroDeltaSyncPartners,
        );
        check(|c| c.shards = 0, ConfigError::InvalidShardCount);
        check(|c| c.shards = 2048, ConfigError::InvalidShardCount);
        assert!(Config::lan().with_shards(16).validate().is_ok());
        // The delta knobs are only constrained while delta sync is on.
        let mut off = Config::lan();
        off.delta_sync = false;
        off.delta_sync_horizon = Duration::ZERO;
        off.delta_sync_partners = 0;
        assert_eq!(off.validate(), Ok(()));
        // Errors render a human-readable reason.
        assert!(ConfigError::EmptyGossipFanout.to_string().contains("gossip_nodes"));
        assert!(ConfigError::ZeroDeltaSyncHorizon
            .to_string()
            .contains("delta_sync_horizon"));
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = Config::lan()
            .lifeguard()
            .with_alpha(2.0)
            .with_beta(4.0)
            .with_probe_timing(Duration::from_millis(500), Duration::from_millis(250));
        assert_eq!(cfg.suspicion_alpha, 2.0);
        assert_eq!(cfg.suspicion_beta, 4.0);
        assert_eq!(cfg.probe_interval, Duration::from_millis(500));
        assert!(cfg.validate().is_ok());
    }
}
