//! The SWIM + Lifeguard protocol state machine.
//!
//! [`SwimNode`] is **sans-io** in the `quinn-proto`/`str0m` sense: it
//! never reads a clock, opens a socket or sleeps, and it exposes exactly
//! one poll-based driving surface shared by every runtime (the
//! deterministic simulator in `lifeguard-sim`, the real UDP/TCP agent in
//! `lifeguard-net`, or any future async runtime):
//!
//! * [`SwimNode::handle_input`] — feed one [`Input`] (a received
//!   datagram or stream message, a timer tick, a join/leave request, an
//!   I/O-block transition, a metadata update) at an externally supplied
//!   instant.
//! * [`SwimNode::poll_output`] — drain the effects the input produced,
//!   one [`Output`] at a time. Packet payloads borrow the node's
//!   internal scratch buffer, so steady-state operation performs **zero
//!   allocations per poll** — no `Bytes` is materialised unless the
//!   caller copies one.
//! * [`SwimNode::next_wake`] — the instant at which the runtime must
//!   feed the next [`Input::Tick`].
//!
//! Runtimes normally do not call these directly but drive the node
//! through the shared [`Driver`](crate::driver::Driver) harness, which
//! owns the input→poll→sink dispatch loop.
//!
//! All randomness comes from an internal seeded RNG, so a cluster of
//! `SwimNode`s driven by a deterministic runtime is fully reproducible.

use std::collections::{HashMap, VecDeque};
use std::ops::Range;

use bytes::Bytes;
use lifeguard_metrics::{CoreSnapshot, Histogram};
use lifeguard_proto::compound::CompoundBuilder;
use lifeguard_proto::{
    compound, Ack, Alive, Dead, DecodeError, IndirectPing, Incarnation, MemberState, Message,
    Nack, NodeAddr, NodeName, Ping, PushPull, PushPullDelta, SeqNo, Suspect,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::awareness::Awareness;
use crate::broadcast::BroadcastQueue;
use crate::config::Config;
use crate::event::Event;
use crate::member::Member;
use crate::membership::{Membership, SamplePool};
use crate::probe_list::ProbeList;
use crate::suspicion::Suspicion;
use crate::time::Time;
use crate::timer_wheel::{TimerKey, TimerWheel};

/// One unit of work fed into the state machine via
/// [`SwimNode::handle_input`].
///
/// Every way a runtime can drive the protocol — network receive, timer
/// expiry, operator request — is an `Input`, so the simulator, the real
/// agent and the tests all exercise the exact same entry point.
#[derive(Clone, Debug)]
pub enum Input {
    /// A datagram arrived. Compound parts and blob fields are decoded as
    /// zero-copy slices of `payload`.
    Datagram {
        /// Sender address (used for ack routing).
        from: NodeAddr,
        /// The raw packet bytes.
        payload: Bytes,
    },
    /// A message arrived on the reliable stream transport (push-pull
    /// sync or fallback probe).
    Stream {
        /// Sender's advertised address (reply target).
        from: NodeAddr,
        /// The decoded message.
        msg: Message,
    },
    /// The wall clock reached [`SwimNode::next_wake`]: fire all due
    /// internal timers (probe rounds, gossip ticks, suspicion expiries…).
    Tick,
    /// Initiate a join: push-pull with each seed over the stream
    /// transport.
    Join {
        /// Seed addresses to contact (the node's own address is skipped).
        seeds: Vec<NodeAddr>,
    },
    /// Leave the group gracefully (broadcasts a self-signed `dead`).
    Leave,
    /// Run one anti-entropy exchange with the named member right now
    /// (operator-triggered sync; the periodic `PushPullTick` uses the
    /// same path with a sampled peer). Delta or full per configuration
    /// and watermark state; a no-op for unknown names and self.
    Sync {
        /// The member to exchange state with.
        with: NodeName,
    },
    /// Message I/O became blocked/unblocked (anomaly injection, paper
    /// §V-D). See the blocked-I/O notes on [`SwimNode`].
    IoBlocked {
        /// The new blocked state.
        blocked: bool,
    },
    /// Replace the local node's application metadata and gossip the
    /// change (memberlist's `UpdateNode`).
    UpdateMeta {
        /// The new metadata blob.
        meta: Bytes,
    },
}

/// An effect the runtime must carry out on behalf of the node, drained
/// via [`SwimNode::poll_output`].
///
/// Packet payloads borrow the node's internal scratch buffer and are
/// valid until the next `handle_input`/`poll_output` call; runtimes that
/// must hold an output across calls (the simulator's in-flight queue, a
/// paused node's outbox) copy it into an
/// [`OwnedOutput`](crate::driver::OwnedOutput).
#[derive(Debug)]
pub enum Output<'a> {
    /// Send a datagram (already compound-encoded, within the MTU budget
    /// except for oversized single messages).
    Packet {
        /// Destination address.
        to: NodeAddr,
        /// Encoded packet bytes (borrowing the node's scratch buffer).
        payload: &'a [u8],
    },
    /// Send a message over the reliable stream transport (push-pull sync,
    /// fallback probe).
    Stream {
        /// Destination address.
        to: NodeAddr,
        /// The message to deliver reliably.
        msg: Message,
    },
    /// A membership conclusion for the application / metrics.
    Event(Event),
}

/// A queued effect. Packets are stored as ranges into the node's scratch
/// buffer so enqueueing them allocates nothing in steady state.
#[derive(Debug)]
enum Queued {
    Packet { to: NodeAddr, range: Range<usize> },
    Stream { to: NodeAddr, msg: Message },
    Event(Event),
}

/// Internal timer kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Timer {
    ProbeRound,
    ProbeTimeout { seq: SeqNo },
    ProbeRoundEnd { seq: SeqNo },
    GossipTick,
    PushPullTick,
    Reconnect,
    SuspicionCheck { node: NodeName },
    RelayNack { seq: SeqNo },
    RelayExpire { seq: SeqNo },
    Reap,
}

/// A timer that came due while message I/O was blocked and is re-fired
/// through the wheel at unblock, keyed by its original deadline.
#[derive(Clone, Debug)]
struct DeferredTimer {
    at: Time,
    timer: Timer,
}

/// State of the probe the local node currently has in flight.
#[derive(Clone, Debug)]
struct ProbeState {
    seq: SeqNo,
    target: NodeName,
    target_addr: NodeAddr,
    expected_nacks: u32,
    nacks_received: u32,
    /// When the direct ping left, for the probe-RTT histogram.
    started: Time,
    round_end: Time,
    /// Handle of the armed `ProbeTimeout`; cancelled when an ack
    /// completes the round, so the timer cannot fire stale.
    timeout_timer: TimerKey,
    /// Handle of the armed `ProbeRoundEnd`; cancelled on a timely ack.
    round_end_timer: TimerKey,
}

/// Counters of protocol activity at one node (observability; used by
/// tests, examples and operators).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NodeStats {
    /// Direct probes initiated.
    pub probes_sent: u64,
    /// Probe rounds that ended without an ack.
    pub probes_failed: u64,
    /// `ping-req` messages sent to intermediaries.
    pub indirect_probes_sent: u64,
    /// Suspicions this node started from its own failed probes or
    /// adopted from gossip.
    pub suspicions_raised: u64,
    /// Times this node refuted a suspicion/death claim about itself.
    pub refutations: u64,
    /// Failures this node declared from its own suspicion timeouts.
    pub failures_declared: u64,
}

/// Observability state the counters in [`NodeStats`] do not cover:
/// latency/lifetime histograms, flap and anti-entropy volume counters,
/// and peaks of the health/queue gauges. All fixed-size — recording is
/// allocation-free, preserving the zero-alloc poll guarantee — and fed
/// only from `handle_input`, so the whole plane is deterministic under
/// the sim clock. Exported through [`SwimNode::metrics`].
#[derive(Clone, Debug, Default)]
struct CoreMetrics {
    /// Probe round-trip times (timely acks only), microseconds.
    probe_rtt: Histogram,
    /// Suspicion raise→resolution lifetimes, microseconds.
    suspicion_lifetime: Histogram,
    /// Peers seen Suspect/Dead and then Alive again.
    flaps: u64,
    /// Highest LHM score ever reached.
    lhm_peak: u64,
    /// Highest broadcast-queue depth seen at a gossip tick.
    broadcast_queue_peak: u64,
    /// Incremental push-pull messages sent (requests + replies).
    delta_syncs: u64,
    /// Encoded bytes of those incremental push-pull messages.
    delta_sync_bytes: u64,
    /// Full-state push-pull exchanges queued (fallbacks, horizon
    /// resyncs, reconnects, joins).
    full_syncs: u64,
}

/// State kept while relaying an indirect probe for another node.
#[derive(Clone, Debug)]
struct RelayState {
    origin_seq: SeqNo,
    origin_addr: NodeAddr,
    acked: bool,
    /// Armed `RelayNack` handle (only when the origin asked for nacks);
    /// cancelled the moment the target's ack arrives.
    nack_timer: Option<TimerKey>,
}

/// A suspicion the local node currently holds, paired with the wheel
/// handle of its single `SuspicionCheck` timer. Lifeguard's timeout
/// shrinking reschedules that timer in place, so there is never a stale
/// deadline in flight.
#[derive(Clone, Debug)]
struct ActiveSuspicion {
    sus: Suspicion,
    timer: TimerKey,
}

/// Delta-sync bookkeeping for one peer.
///
/// Watermarks are conservative by construction: `remote_seen` advances
/// only after the peer's entries were merged locally, and `local_acked`
/// advances only on the peer's own `since` claims, so a dropped message
/// can cause re-sending but never a missed update.
#[derive(Clone, Debug)]
struct PeerSync {
    /// The peer instance (epoch) these watermarks refer to; a changed
    /// epoch invalidates them wholesale.
    peer_epoch: u64,
    /// Highest peer update-seq merged locally — sent as `since`.
    remote_seen: u64,
    /// Highest local update-seq the peer has confirmed merging — the
    /// lower bound of the next delta this node sends it.
    local_acked: u64,
    /// When a delta message from this peer was last processed; past the
    /// configured horizon the watermarks are discarded.
    last_exchange: Time,
}

/// A single group member's protocol instance.
///
/// # Example
///
/// ```
/// use lifeguard_core::config::Config;
/// use lifeguard_core::node::{Input, SwimNode};
/// use lifeguard_core::time::Time;
/// use lifeguard_proto::NodeAddr;
///
/// let mut node = SwimNode::new(
///     "node-0".into(),
///     NodeAddr::new([10, 0, 0, 1], 7946),
///     Config::lan().lifeguard(),
///     42,
/// );
/// node.start(Time::ZERO);
/// node.handle_input(Input::Tick, Time::ZERO).unwrap();
/// assert!(node.poll_output().is_none()); // nothing to send until peers exist
/// assert!(node.next_wake().is_some()); // probe/gossip timers armed
/// ```
#[derive(Debug)]
pub struct SwimNode {
    config: Config,
    name: NodeName,
    addr: NodeAddr,
    incarnation: Incarnation,
    meta: Bytes,
    membership: Membership,
    probe_list: ProbeList,
    broadcasts: BroadcastQueue,
    awareness: Awareness,
    // bounded: one active suspicion per suspect member, cleared on confirm/refute/death — ≤ cluster size
    suspicions: HashMap<NodeName, ActiveSuspicion>,
    probe: Option<ProbeState>,
    // bounded: one entry per in-flight relayed indirect probe, each removed when its nack timer fires
    relays: HashMap<SeqNo, RelayState>,
    /// This instance's id for delta-sync watermarks: seq values this
    /// node hands out are only meaningful together with this epoch, so
    /// a restarted peer can never mis-apply watermarks from a previous
    /// life.
    epoch: u64,
    /// Per-peer delta-sync watermarks (pruned on reap and past the
    /// configured horizon).
    // bounded: retained only for members still in the roster (pruned on reap), so ≤ cluster size
    peer_sync: HashMap<NodeName, PeerSync>,
    seq: SeqNo,
    timers: TimerWheel<Timer>,
    rng: StdRng,
    started: bool,
    left: bool,
    /// Whether sends/receives are currently blocked (anomaly injection).
    io_blocked: bool,
    /// Loop timers that already executed their one blocked iteration.
    stuck_gossip: bool,
    stuck_push_pull: bool,
    stuck_reconnect: bool,
    /// Timers that came due while blocked and must re-fire on unblock,
    /// in original due order.
    // bounded: ≤ the live timer count — each deferred entry consumed a scheduled timer, and loop timers defer at most once (stuck_* flags)
    deferred_timers: Vec<DeferredTimer>,
    stats: NodeStats,
    metrics: CoreMetrics,
    /// Effects awaiting [`SwimNode::poll_output`].
    // bounded: the driver drains it fully after every input, so it holds at most one input's effects
    pending: VecDeque<Queued>,
    /// Arena for queued packet payloads; cleared whenever the queue
    /// drains, so it stabilises at the high-water packet burst size.
    // bounded: cleared on drain/release, stabilises at the high-water burst size
    scratch: Vec<u8>,
    /// When set (by [`SwimNode::drain_split`]), the arena keeps
    /// accumulating across inputs instead of being reclaimed on drain:
    /// a batching runtime holds ranges into it until its flush, and
    /// releases the hold with [`SwimNode::release_arena`].
    arena_held: bool,
    /// Reusable packet assembler (capacity persists across packets).
    builder: CompoundBuilder,
    /// Reusable target-address buffer for gossip/probe fan-out.
    // bounded: cleared before each use, filled with ≤ max(indirect_checks, gossip fan-out) addresses
    addr_scratch: Vec<NodeAddr>,
}

impl SwimNode {
    /// Creates a node. Call [`SwimNode::start`] before driving it.
    ///
    /// `seed` fixes the node's private RNG stream (probe order, gossip
    /// fan-out choices); two nodes with the same seed and inputs behave
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`Config::validate`]; use
    /// [`SwimNode::try_new`] to handle invalid configurations
    /// gracefully.
    pub fn new(name: NodeName, addr: NodeAddr, config: Config, seed: u64) -> Self {
        Self::try_new(name, addr, config, seed)
            // lint: allow(panic) — documented contract: `new` panics on an invalid config at construction time, never on wire input; `try_new` is the graceful path
            .unwrap_or_else(|e| panic!("invalid SwimNode config: {e}"))
    }

    /// Fallible [`SwimNode::new`]: rejects invalid configurations with
    /// the typed [`ConfigError`](crate::config::ConfigError) instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`Config::validate`] violation.
    pub fn try_new(
        name: NodeName,
        addr: NodeAddr,
        config: Config,
        seed: u64,
    ) -> Result<Self, crate::config::ConfigError> {
        config.validate()?;
        let awareness = Awareness::new(config.effective_awareness_max());
        let packet_budget = config.packet_budget;
        let config_shards = config.shards;
        // Instance id for delta-sync watermarks: seed-derived (so runs
        // stay reproducible) without consuming the protocol RNG stream,
        // and never zero (`since_epoch == 0` means "unknown" on the
        // wire). Runtime contract: a restarted node must be given a
        // fresh seed (`Agent::start` derives one from entropy when
        // unseeded) so it gets a fresh epoch — that is what invalidates
        // stale peer watermarks. Even under an epoch collision, a
        // `since = 0` request is always served from scratch, so the
        // failure mode is re-sending, not data loss.
        let epoch = (seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9) | 1;
        Ok(SwimNode {
            config,
            name,
            addr,
            incarnation: Incarnation::ZERO,
            meta: Bytes::new(),
            membership: Membership::with_shards(config_shards),
            probe_list: ProbeList::new(),
            broadcasts: BroadcastQueue::with_shards(config_shards),
            awareness,
            suspicions: HashMap::new(),
            probe: None,
            relays: HashMap::new(),
            epoch,
            peer_sync: HashMap::new(),
            seq: SeqNo(0),
            timers: TimerWheel::new(),
            rng: StdRng::seed_from_u64(seed),
            started: false,
            left: false,
            io_blocked: false,
            stuck_gossip: false,
            stuck_push_pull: false,
            stuck_reconnect: false,
            deferred_timers: Vec::new(),
            stats: NodeStats::default(),
            metrics: CoreMetrics::default(),
            pending: VecDeque::new(),
            scratch: Vec::new(),
            arena_held: false,
            builder: CompoundBuilder::new(packet_budget),
            addr_scratch: Vec::new(),
        })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The local node's name.
    pub fn name(&self) -> &NodeName {
        &self.name
    }

    /// The local node's advertised address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The local incarnation number.
    pub fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    /// The current Local Health Multiplier score (0 = healthy).
    pub fn local_health(&self) -> u32 {
        self.awareness.score()
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// All known members (including self and retained dead members).
    pub fn members(&self) -> impl Iterator<Item = &Member> {
        self.membership.iter()
    }

    /// Looks up a member record by name.
    pub fn member(&self, name: &NodeName) -> Option<&Member> {
        self.membership.get(name)
    }

    /// Number of members currently believed alive (including self).
    pub fn num_alive(&self) -> usize {
        self.membership.alive_count()
    }

    /// Number of live members (alive + suspect, including self).
    pub fn num_live(&self) -> usize {
        self.membership.live_count()
    }

    /// Whether the node has left the group.
    pub fn has_left(&self) -> bool {
        self.left
    }

    /// Number of gossip broadcasts waiting in the queue (introspection).
    pub fn pending_broadcasts(&self) -> usize {
        self.broadcasts.len()
    }

    /// Protocol activity counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Point-in-time metrics snapshot of the protocol plane: the
    /// [`NodeStats`] counters, the probe-RTT and suspicion-lifetime
    /// histograms, health/queue gauges and anti-entropy volume, in the
    /// runtime-independent [`CoreSnapshot`] shape. Everything here is
    /// recorded on the deterministic `handle_input` path, so for the
    /// same input trace every runtime reports the same snapshot.
    pub fn metrics(&self) -> CoreSnapshot {
        let depth = self.broadcasts.len() as u64;
        CoreSnapshot {
            lhm: u64::from(self.awareness.score()),
            lhm_peak: self.metrics.lhm_peak.max(u64::from(self.awareness.score())),
            lhm_max: u64::from(self.awareness.max()),
            probes_sent: self.stats.probes_sent,
            probes_failed: self.stats.probes_failed,
            indirect_probes_sent: self.stats.indirect_probes_sent,
            suspicions_raised: self.stats.suspicions_raised,
            refutations: self.stats.refutations,
            failures_declared: self.stats.failures_declared,
            flaps: self.metrics.flaps,
            broadcast_queue_depth: depth,
            broadcast_queue_peak: self.metrics.broadcast_queue_peak.max(depth),
            delta_syncs: self.metrics.delta_syncs,
            delta_sync_bytes: self.metrics.delta_sync_bytes,
            full_sync_fallbacks: self.metrics.full_syncs,
            probe_rtt: self.metrics.probe_rtt.clone(),
            suspicion_lifetime: self.metrics.suspicion_lifetime.clone(),
        }
    }

    /// Applies an LHM delta and keeps the peak gauge current — every
    /// awareness change must route through here, not
    /// `awareness.apply_delta` directly.
    fn apply_awareness_delta(&mut self, delta: i32) {
        let score = self.awareness.apply_delta(delta);
        self.metrics.lhm_peak = self.metrics.lhm_peak.max(u64::from(score));
    }

    /// Records the end of a suspicion's life, however it resolved.
    fn record_suspicion_end(&mut self, sus: &Suspicion, now: Time) {
        self.metrics
            .suspicion_lifetime
            .record_duration(now.saturating_since(sus.started_at()));
    }

    /// [`Input::UpdateMeta`]: the incarnation is bumped so the new
    /// `alive` message supersedes older state.
    fn update_meta(&mut self, meta: Bytes, now: Time) {
        self.meta = meta.clone();
        self.incarnation = self.incarnation.next();
        let incarnation = self.incarnation;
        self.membership.update(&self.name, |me| {
            me.meta = meta.clone();
            me.incarnation = incarnation;
            me.set_state(MemberState::Alive, now);
        });
        self.broadcasts.enqueue(Message::Alive(Alive {
            incarnation: self.incarnation,
            node: self.name.clone(),
            addr: self.addr,
            meta,
        }));
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Boots the node: registers itself as alive and arms the periodic
    /// timers. Must be called exactly once before any other driving call.
    /// Produces no outputs (there is nobody to talk to yet).
    pub fn start(&mut self, now: Time) {
        assert!(!self.started, "start() called twice");
        self.started = true;
        let mut me = Member::new(self.name.clone(), self.addr, self.incarnation, now);
        me.meta = self.meta.clone();
        self.membership.upsert(me);

        // Randomize initial phases so a cluster booted in lock-step does
        // not probe in lock-step.
        let probe_phase = self.random_phase(self.config.probe_interval);
        self.schedule(now + probe_phase, Timer::ProbeRound);
        let gossip_phase = self.random_phase(self.config.gossip_interval);
        self.schedule(now + gossip_phase, Timer::GossipTick);
        if let Some(pp) = self.config.push_pull_interval {
            let pp_phase = self.random_phase(pp);
            self.schedule(now + pp + pp_phase, Timer::PushPullTick);
        }
        if let Some(rc) = self.config.reconnect_interval {
            let rc_phase = self.random_phase(rc);
            self.schedule(now + rc + rc_phase, Timer::Reconnect);
        }
        self.schedule(now + self.config.dead_reclaim, Timer::Reap);
    }

    /// Registers peers directly as alive members, bypassing the join
    /// protocol — the simulator's full-mesh bootstrap for large-cluster
    /// benchmarks. No gossip is enqueued and no events are emitted; the
    /// probe rotation absorbs all names with one bulk shuffle.
    pub fn bootstrap_peers(
        &mut self,
        peers: impl IntoIterator<Item = (NodeName, NodeAddr)>,
        now: Time,
    ) {
        debug_assert!(self.started, "bootstrap_peers() before start()");
        let mut fresh = Vec::new();
        for (name, addr) in peers {
            if name == self.name || self.membership.get(&name).is_some() {
                continue;
            }
            self.membership
                .upsert(Member::new(name.clone(), addr, Incarnation::ZERO, now));
            fresh.push(name);
        }
        self.probe_list.extend_shuffled(fresh, &mut self.rng);
    }

    /// [`Input::Join`]: sends a push-pull sync (carrying our own record)
    /// to each seed address over the stream transport.
    fn join(&mut self, seeds: &[NodeAddr], _now: Time) {
        debug_assert!(self.started, "join() before start()");
        let Some(me) = self.membership.get(&self.name) else {
            debug_invariant!(false, "self is registered by start()");
            return;
        };
        let states = vec![me.to_push_state()];
        let me = self.addr;
        for &to in seeds.iter().filter(|a| **a != me) {
            self.emit_stream(
                to,
                Message::PushPull(PushPull {
                    join: true,
                    reply: false,
                    states: states.clone(),
                }),
            );
        }
    }

    /// [`Input::Leave`]: broadcasts a self-signed `dead` message
    /// (memberlist's leave semantics) and flushes it to a few peers
    /// immediately.
    fn leave(&mut self, now: Time) {
        if self.left {
            return;
        }
        self.left = true;
        let dead = Message::Dead(Dead {
            incarnation: self.incarnation,
            node: self.name.clone(),
            from: self.name.clone(),
        });
        self.broadcasts.enqueue(dead);
        self.membership.set_state(&self.name, MemberState::Left, now);
        self.gossip_once(now);
    }

    // ------------------------------------------------------------------
    // Driving
    // ------------------------------------------------------------------

    /// The earliest instant at which the runtime must feed the next
    /// [`Input::Tick`].
    pub fn next_wake(&self) -> Option<Time> {
        self.timers.next_deadline()
    }

    /// The timer wheel's exact next deadline — identical to
    /// [`SwimNode::next_wake`], under the name a readiness-driven
    /// runtime expects: the reactor sleeps in `poll` for precisely
    /// `next_deadline() - now` instead of ticking on a fixed interval.
    pub fn next_deadline(&self) -> Option<Time> {
        self.timers.next_deadline()
    }

    /// Feeds one unit of work into the state machine. Effects are queued
    /// internally; drain them with [`SwimNode::poll_output`] before the
    /// next `handle_input` if packet payload validity matters (inputs
    /// never corrupt queued packets, but a fully drained queue lets the
    /// node reclaim its scratch buffer).
    ///
    /// # Errors
    ///
    /// [`Input::Datagram`] returns the [`DecodeError`] if the packet is
    /// malformed; the node's state is unchanged in that case (a real
    /// deployment just drops such packets). Every other input is
    /// infallible.
    pub fn handle_input(&mut self, input: Input, now: Time) -> Result<(), DecodeError> {
        if self.pending.is_empty() && !self.arena_held {
            self.scratch.clear();
        }
        match input {
            Input::Datagram { from, payload } => {
                let msgs = compound::decode_packet_shared(&payload)?;
                for msg in msgs {
                    self.handle_message(from, msg, now);
                }
            }
            Input::Stream { from, msg } => self.handle_stream_msg(from, msg, now),
            Input::Tick => self.tick(now),
            Input::Join { seeds } => self.join(&seeds, now),
            Input::Leave => self.leave(now),
            Input::Sync { with } => self.sync_request(&with, now),
            Input::IoBlocked { blocked } => self.set_io_blocked(blocked, now),
            Input::UpdateMeta { meta } => self.update_meta(meta, now),
        }
        Ok(())
    }

    /// Pops the next queued effect, or `None` when the node has nothing
    /// for the runtime to do. Zero allocations: packet payloads are
    /// slices of the node's scratch buffer.
    pub fn poll_output(&mut self) -> Option<Output<'_>> {
        Some(match self.pending.pop_front()? {
            Queued::Packet { to, range } => Output::Packet {
                to,
                // lint: allow(panic_path) — `range` was produced by `queue_packet` as the extent of bytes it just wrote into `scratch`, and `scratch` only grows until `pending` drains
                payload: &self.scratch[range],
            },
            Queued::Stream { to, msg } => Output::Stream { to, msg },
            Queued::Event(e) => Output::Event(e),
        })
    }

    /// Whether [`SwimNode::poll_output`] has queued effects.
    pub fn has_pending_output(&self) -> bool {
        !self.pending.is_empty()
    }

    /// [`SwimNode::handle_input`] of a datagram handed in as a borrowed
    /// slice — the batched receive path, where payloads live in a
    /// runtime-owned receive ring rather than an owned [`Bytes`]. Only
    /// the decoded messages' blob fields (names, metadata) are copied
    /// out; the datagram itself is never duplicated. Observably
    /// identical to feeding the same bytes as [`Input::Datagram`].
    ///
    /// # Errors
    ///
    /// The [`DecodeError`] of a malformed packet; state is unchanged.
    pub fn handle_datagram_slice(
        &mut self,
        from: NodeAddr,
        payload: &[u8],
        now: Time,
    ) -> Result<(), DecodeError> {
        if self.pending.is_empty() && !self.arena_held {
            self.scratch.clear();
        }
        for msg in compound::decode_packet(payload)? {
            self.handle_message(from, msg, now);
        }
        Ok(())
    }

    /// Drains the whole effect queue for a *batching* runtime: stream
    /// and event effects are dispatched through `other` immediately and
    /// in queue order, while packets are appended to `packets` as
    /// `(destination, byte-range)` entries referencing the scratch
    /// arena (see [`SwimNode::packet_arena`]).
    ///
    /// Calling this puts the arena on *hold*: it keeps growing across
    /// subsequent inputs instead of being reclaimed, so every recorded
    /// range stays valid — ranges are indices, immune to the arena
    /// reallocating as it grows — until the runtime flushes the batch
    /// and calls [`SwimNode::release_arena`].
    pub fn drain_split(
        &mut self,
        packets: &mut Vec<(NodeAddr, Range<usize>)>,
        mut other: impl FnMut(Output<'static>),
    ) {
        self.arena_held = true;
        while let Some(q) = self.pending.pop_front() {
            match q {
                // lint: allow(alloc_free) — amortised: the runtime reuses `packets` across flushes, so its capacity stabilises at the high-water burst size (proven by the counting-allocator bench)
                Queued::Packet { to, range } => packets.push((to, range)),
                Queued::Stream { to, msg } => other(Output::Stream { to, msg }),
                Queued::Event(e) => other(Output::Event(e)),
            }
        }
    }

    /// The scratch arena that ranges recorded by
    /// [`SwimNode::drain_split`] index into. Borrow it at flush time —
    /// not before — since the arena may reallocate while the hold
    /// accumulates.
    pub fn packet_arena(&self) -> &[u8] {
        &self.scratch
    }

    /// Releases the hold taken by [`SwimNode::drain_split`]: previously
    /// recorded ranges are invalidated and the arena is reclaimed (if
    /// nothing else is queued). The runtime calls this right after
    /// flushing its batch.
    pub fn release_arena(&mut self) {
        self.arena_held = false;
        if self.pending.is_empty() {
            self.scratch.clear();
        }
    }

    /// [`Input::IoBlocked`]: marks the node's message I/O as blocked or
    /// unblocked (anomaly injection, paper §V-D: members "block
    /// immediately before sending or after receiving any protocol
    /// message").
    ///
    /// While blocked, the node's logic and wall-clock deadlines keep
    /// running, but each protocol loop (probe, gossip, push-pull,
    /// reconnect) executes at most one more iteration — the one stuck at
    /// its blocked send — and the in-flight probe's deadline evaluation
    /// is postponed. The runtime must also withhold the node's sends and
    /// inbound messages for the duration of the block.
    ///
    /// Unblocking re-injects the postponed deadline timers into the
    /// wheel at their *original* deadlines and drains everything due, so
    /// the catch-up interleaves them with timers armed while blocked in
    /// global (deadline, insertion) order — the stuck probe fails and
    /// raises a suspicion exactly like a real agent resuming after an
    /// anomaly, and nothing fires out of order relative to it. The
    /// outputs of that catch-up processing are queued for polling.
    fn set_io_blocked(&mut self, blocked: bool, now: Time) {
        if blocked == self.io_blocked {
            return;
        }
        self.io_blocked = blocked;
        if !blocked {
            self.stuck_gossip = false;
            self.stuck_push_pull = false;
            self.stuck_reconnect = false;
            let mut deferred = std::mem::take(&mut self.deferred_timers);
            // Stable by original deadline: exact ties keep deferral
            // (i.e. original firing) order — the deterministic tiebreak.
            deferred.sort_by_key(|d| d.at);
            for DeferredTimer { at, timer } in deferred {
                // Re-point the owning state at the re-injected timer, so
                // cancellation (a handler consuming the probe, a relay
                // expiring) still truly unschedules it — the no-stale-fire
                // invariant must hold through the refire path too.
                let key = self.timers.schedule(at, timer.clone());
                match timer {
                    Timer::ProbeTimeout { seq } => {
                        if let Some(p) = &mut self.probe {
                            if p.seq == seq {
                                p.timeout_timer = key;
                            }
                        }
                    }
                    Timer::ProbeRoundEnd { seq } => {
                        if let Some(p) = &mut self.probe {
                            if p.seq == seq {
                                p.round_end_timer = key;
                            }
                        }
                    }
                    Timer::RelayNack { seq } => {
                        if let Some(relay) = self.relays.get_mut(&seq) {
                            relay.nack_timer = Some(key);
                        }
                    }
                    _ => {}
                }
            }
            while let Some((at, timer)) = self.timers.pop_due(now) {
                self.fire(at, timer, now);
            }
        }
    }

    /// Whether message I/O is currently blocked (anomaly injection).
    pub fn is_io_blocked(&self) -> bool {
        self.io_blocked
    }

    /// [`Input::Tick`]: fires all timers due at or before `now`.
    fn tick(&mut self, now: Time) {
        while let Some((at, timer)) = self.timers.pop_due(now) {
            self.fire(at, timer, now);
        }
    }

    /// [`Input::Stream`]: a message from the reliable stream transport.
    fn handle_stream_msg(&mut self, from: NodeAddr, msg: Message, now: Time) {
        // Same pre-start guard as the datagram path (`handle_message`),
        // plus post-leave: a node that has not booted yet — or has left
        // the group — must not answer probes or anti-entropy exchanges.
        // Streams outlive datagrams (a TCP connection accepted before
        // `start` can deliver arbitrarily late), so without this guard a
        // pre-start push-pull could seed membership state that `start`
        // then clobbers.
        if !self.started || self.left {
            return;
        }
        match msg {
            // Fallback direct probe over TCP: reply in kind.
            Message::Ping(p) if p.target == self.name => {
                self.emit_stream(from, Message::Ack(Ack { seq: p.seq }));
            }
            Message::Ack(a) => self.handle_ack(a, now),
            Message::PushPull(pp) => {
                let reply = !pp.reply;
                self.merge_remote_state(&pp.states, now);
                if reply {
                    let states = self.membership.iter().map(Member::to_push_state).collect();
                    self.emit_stream(
                        from,
                        Message::PushPull(PushPull {
                            join: false,
                            reply: true,
                            states,
                        }),
                    );
                }
            }
            Message::PushPullDelta(d) => self.handle_push_pull_delta(from, d, now),
            // Gossip over the stream transport is not part of the
            // protocol; ignore anything else.
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Message handling (datagram)
    // ------------------------------------------------------------------

    fn handle_message(&mut self, from: NodeAddr, msg: Message, now: Time) {
        if !self.started {
            return;
        }
        match msg {
            Message::Ping(p) => self.handle_ping(from, p, now),
            Message::IndirectPing(p) => self.handle_indirect_ping(p, now),
            Message::Ack(a) => self.handle_ack(a, now),
            Message::Nack(n) => self.handle_nack(n),
            Message::Suspect(s) => self.handle_suspect(s, now),
            Message::Alive(a) => self.handle_alive(a, now),
            Message::Dead(d) => self.handle_dead(d, now),
            // Push-pull is stream-only; drop it if it arrives by datagram.
            Message::PushPull(_) | Message::PushPullDelta(_) => {}
        }
    }

    fn handle_ping(&mut self, _from: NodeAddr, ping: Ping, now: Time) {
        // memberlist drops pings addressed to a different node name: they
        // indicate a stale address mapping.
        if ping.target != self.name {
            return;
        }
        let ack = Message::Ack(Ack { seq: ping.seq });
        self.send_packet(ping.source_addr, &ack, None, now);
    }

    fn handle_indirect_ping(&mut self, req: IndirectPing, now: Time) {
        let local_seq = self.next_seq();
        let ping = Message::Ping(Ping {
            seq: local_seq,
            target: req.target.clone(),
            source: self.name.clone(),
            source_addr: self.addr,
        });
        self.send_packet(req.target_addr, &ping, Some(&req.target), now);
        let nack_timer = if req.nack {
            let nack_at = now + crate::time::scale_duration(
                self.config.probe_timeout,
                self.config.nack_fraction,
            );
            Some(self.schedule(nack_at, Timer::RelayNack { seq: local_seq }))
        } else {
            None
        };
        self.schedule(
            now + self.config.probe_interval,
            Timer::RelayExpire { seq: local_seq },
        );
        self.relays.insert(
            local_seq,
            RelayState {
                origin_seq: req.seq,
                origin_addr: req.source_addr,
                acked: false,
                nack_timer,
            },
        );
    }

    fn handle_ack(&mut self, ack: Ack, now: Time) {
        // Our own outstanding probe? A timely ack completes the round
        // immediately (memberlist's probeNode returns on the first ack);
        // a stale ack is ignored and the round fails at its end.
        if let Some(p) = &self.probe {
            if p.seq == ack.seq {
                if now <= p.round_end {
                    let Some(p) = self.probe.take() else { return };
                    // True cancellation: the round's remaining deadlines
                    // are unscheduled, not left to fire stale.
                    self.timers.cancel(p.timeout_timer);
                    self.timers.cancel(p.round_end_timer);
                    self.metrics
                        .probe_rtt
                        .record_duration(now.saturating_since(p.started));
                    // Successful probe: LHM −1 (paper §IV-A).
                    self.apply_awareness_delta(self.config.awareness_deltas.probe_success);
                }
                return;
            }
        }
        // An indirect probe we are relaying: forward to the origin. The
        // ack is forwarded even after a nack was sent (paper footnote 5).
        if let Some(relay) = self.relays.get_mut(&ack.seq) {
            if !relay.acked {
                relay.acked = true;
                let nack_timer = relay.nack_timer.take();
                let fwd = Message::Ack(Ack {
                    seq: relay.origin_seq,
                });
                let to = relay.origin_addr;
                if let Some(key) = nack_timer {
                    self.timers.cancel(key);
                }
                self.send_packet(to, &fwd, None, now);
            }
        }
    }

    fn handle_nack(&mut self, nack: Nack) {
        if let Some(p) = &mut self.probe {
            if p.seq == nack.seq {
                p.nacks_received += 1;
            }
        }
    }

    fn handle_suspect(&mut self, s: Suspect, now: Time) {
        if s.node == self.name {
            self.refute(s.incarnation, now);
            return;
        }
        self.apply_suspect(s.incarnation, &s.node, &s.from, now);
    }

    /// Processes a suspicion about a peer, whether it arrived by gossip,
    /// by push-pull merge, or was raised by our own failed probe
    /// (memberlist's `suspectNode`). A suspicion about an
    /// already-suspected member counts as an independent confirmation.
    ///
    /// Borrowed path (ROADMAP zero-copy slice): `node`/`from` are only
    /// cloned (reference-count bumps) when the suspicion actually
    /// changes state — stale or superseded suspicions are dropped
    /// without touching either name.
    fn apply_suspect(
        &mut self,
        incarnation: Incarnation,
        node: &NodeName,
        from: &NodeName,
        now: Time,
    ) {
        let Some(member) = self.membership.get(node) else {
            return;
        };
        if incarnation < member.incarnation {
            return; // stale
        }
        match member.state {
            MemberState::Dead | MemberState::Left => {}
            MemberState::Suspect => {
                let Some(active) = self.suspicions.get_mut(node) else {
                    return;
                };
                active.sus.observe_incarnation(incarnation);
                if active.sus.confirm(from.clone()) {
                    // LHA-Suspicion: re-gossip the first K independent
                    // suspicions (paper §IV-B). The enqueue resets the
                    // transmit budget, giving (K+1)·λ·log n max copies.
                    self.broadcasts.enqueue(Message::Suspect(Suspect {
                        incarnation,
                        node: node.clone(),
                        from: from.clone(),
                    }));
                }
                // Timeout shrinking moves the one suspicion timer in
                // place; the superseded deadline can never fire.
                let deadline = active.sus.deadline();
                match self.timers.reschedule(active.timer, deadline) {
                    Some(key) => active.timer = key,
                    None => debug_assert!(false, "active suspicion lost its timer"),
                }
                self.membership.update(node, |m| {
                    if incarnation > m.incarnation {
                        m.incarnation = incarnation;
                    }
                });
            }
            MemberState::Alive => {
                self.start_suspicion(node, incarnation, from, now);
            }
        }
    }

    fn handle_alive(&mut self, a: Alive, now: Time) {
        self.apply_alive(a.incarnation, &a.node, a.addr, &a.meta, now);
    }

    /// The borrowed alive path (ROADMAP zero-copy slice): both gossip
    /// and push-pull merge land here without constructing an
    /// intermediate [`Alive`].
    ///
    /// Allocation discipline: a *genuinely new* member costs one meta
    /// copy (membership records are long-lived; with zero-copy decode
    /// `meta` may alias a whole received datagram, so a compact copy is
    /// stored rather than pinning the packet buffer). An *accepted*
    /// update to a known member reuses the stored name `Arc` and — when
    /// the metadata is unchanged, the steady-state push-pull case — the
    /// stored meta `Bytes` too, so it performs no allocation at all.
    /// Stale duplicates return without touching anything.
    fn apply_alive(
        &mut self,
        incarnation: Incarnation,
        node: &NodeName,
        addr: NodeAddr,
        meta: &Bytes,
        now: Time,
    ) {
        if *node == self.name {
            // Someone is echoing our own alive message, or a name
            // conflict. Nothing to do: our own incarnation is
            // authoritative.
            return;
        }
        match self.membership.get(node) {
            None => {
                let meta = Bytes::copy_from_slice(meta);
                let name = node.clone();
                let mut m = Member::new(name.clone(), addr, incarnation, now);
                m.meta = meta.clone();
                self.membership.upsert(m);
                self.probe_list.insert(name.clone(), &mut self.rng);
                self.broadcasts.enqueue(Message::Alive(Alive {
                    incarnation,
                    node: name.clone(),
                    addr,
                    meta,
                }));
                self.emit_event(Event::MemberJoined { name });
            }
            Some(member) => {
                // An alive message only overrides suspect/dead at a
                // strictly higher incarnation (SWIM §4.2).
                if incarnation <= member.incarnation {
                    return;
                }
                let old_state = member.state;
                // Reuse the stored name/meta instead of cloning the
                // (possibly packet-aliasing) decoded ones.
                let name = member.name.clone();
                let meta = if member.meta.as_ref() == meta.as_ref() {
                    member.meta.clone()
                } else {
                    Bytes::copy_from_slice(meta)
                };
                let updated = self.membership.update(&name, |m| {
                    m.incarnation = incarnation;
                    m.addr = addr;
                    m.meta = meta.clone();
                    m.set_state(MemberState::Alive, now);
                });
                debug_assert!(updated.is_some(), "member present");
                if let Some(active) = self.suspicions.remove(&name) {
                    // Refuted: the pending expiry is truly cancelled.
                    self.timers.cancel(active.timer);
                    self.record_suspicion_end(&active.sus, now);
                }
                self.broadcasts.enqueue(Message::Alive(Alive {
                    incarnation,
                    node: name.clone(),
                    addr,
                    meta,
                }));
                match old_state {
                    MemberState::Suspect | MemberState::Dead => {
                        self.metrics.flaps += 1;
                        self.emit_event(Event::MemberRecovered { name });
                    }
                    MemberState::Left => {
                        self.emit_event(Event::MemberJoined { name });
                    }
                    MemberState::Alive => {}
                }
            }
        }
    }

    fn handle_dead(&mut self, d: Dead, now: Time) {
        if d.node == self.name {
            if !self.left {
                self.refute(d.incarnation, now);
            }
            return;
        }
        let Some(member) = self.membership.get(&d.node) else {
            return;
        };
        if d.incarnation < member.incarnation {
            return;
        }
        if matches!(member.state, MemberState::Dead | MemberState::Left) {
            return;
        }
        let is_leave = d.from == d.node;
        let updated = self.membership.update(&d.node, |m| {
            m.incarnation = d.incarnation;
            m.set_state(
                if is_leave {
                    MemberState::Left
                } else {
                    MemberState::Dead
                },
                now,
            );
        });
        debug_assert!(updated.is_some(), "member present");
        if let Some(active) = self.suspicions.remove(&d.node) {
            self.timers.cancel(active.timer);
            self.record_suspicion_end(&active.sus, now);
        }
        self.broadcasts.enqueue(Message::Dead(d.clone()));
        if is_leave {
            self.emit_event(Event::MemberLeft { name: d.node });
        } else {
            self.emit_event(Event::MemberFailed {
                name: d.node,
                incarnation: d.incarnation,
                from: d.from,
            });
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Executes one fired timer. `at` is the timer's original deadline
    /// (used to defer it faithfully while I/O is blocked); `now` is the
    /// current wall-clock instant the handlers observe.
    fn fire(&mut self, at: Time, timer: Timer, now: Time) {
        if self.io_blocked {
            match &timer {
                // The dedicated gossip / push-pull / reconnect loops are
                // single threads in memberlist: the iteration that blocks
                // mid-send executes (the runtime captures its sends), the
                // ticks that follow are dropped like missed ticker fires.
                Timer::GossipTick => {
                    self.schedule(now + self.config.gossip_interval, Timer::GossipTick);
                    if !self.stuck_gossip && !self.left {
                        self.stuck_gossip = true;
                        self.gossip_once(now);
                    }
                    return;
                }
                Timer::PushPullTick => {
                    if let Some(pp) = self.config.push_pull_interval {
                        self.schedule(now + pp, Timer::PushPullTick);
                    }
                    if !self.stuck_push_pull && !self.left {
                        self.stuck_push_pull = true;
                        self.push_pull_once(now);
                    }
                    return;
                }
                Timer::Reconnect => {
                    if let Some(rc) = self.config.reconnect_interval {
                        self.schedule(now + rc, Timer::Reconnect);
                    }
                    if !self.stuck_reconnect && !self.left {
                        self.stuck_reconnect = true;
                        self.reconnect_once();
                    }
                    return;
                }
                // The probe in flight when the block hit is evaluated
                // when the loop unblocks: its deadlines were computed
                // before the block, so the late evaluation fails the
                // probe exactly as a real blocked agent does.
                Timer::ProbeTimeout { .. }
                | Timer::ProbeRoundEnd { .. }
                | Timer::RelayNack { .. }
                | Timer::RelayExpire { .. } => {
                    self.deferred_timers.push(DeferredTimer { at, timer });
                    return;
                }
                // ProbeRound falls through: with a probe already in
                // flight it is a no-op (the loop is busy), which models
                // the dropped ticker fires. Suspicion expiry and reaping
                // are pure local state + logging and run on time.
                Timer::ProbeRound | Timer::SuspicionCheck { .. } | Timer::Reap => {}
            }
        }
        match timer {
            Timer::ProbeRound => self.probe_round(now),
            Timer::ProbeTimeout { seq } => self.probe_timeout(seq, now),
            Timer::ProbeRoundEnd { seq } => self.probe_round_end(seq, now),
            Timer::GossipTick => {
                self.schedule(now + self.config.gossip_interval, Timer::GossipTick);
                if !self.left {
                    self.gossip_once(now);
                }
            }
            Timer::PushPullTick => {
                if let Some(pp) = self.config.push_pull_interval {
                    self.schedule(now + pp, Timer::PushPullTick);
                }
                if !self.left {
                    self.push_pull_once(now);
                }
            }
            Timer::Reconnect => {
                if let Some(rc) = self.config.reconnect_interval {
                    self.schedule(now + rc, Timer::Reconnect);
                }
                if !self.left {
                    self.reconnect_once();
                }
            }
            Timer::SuspicionCheck { node } => self.suspicion_check(node, now),
            Timer::RelayNack { seq } => {
                // An ack (or the relay's expiry) cancels this timer, so a
                // fire always means the target is still silent — no
                // fire-time staleness check is needed.
                let relay = self.relays.get_mut(&seq);
                debug_assert!(relay.is_some(), "stale relay-nack timer reached its handler");
                if let Some(relay) = relay {
                    debug_assert!(!relay.acked, "nack timer outlived the target's ack");
                    relay.nack_timer = None;
                    let msg = Message::Nack(Nack {
                        seq: relay.origin_seq,
                    });
                    let to = relay.origin_addr;
                    self.send_packet(to, &msg, None, now);
                }
            }
            Timer::RelayExpire { seq } => {
                let relay = self.relays.remove(&seq);
                debug_assert!(relay.is_some(), "stale relay-expire timer reached its handler");
                if let Some(relay) = relay {
                    if let Some(key) = relay.nack_timer {
                        // Pathological configs can place the nack after
                        // the expiry; drop it with the relay state.
                        self.timers.cancel(key);
                    }
                }
            }
            Timer::Reap => {
                self.schedule(now + self.config.dead_reclaim, Timer::Reap);
                let cutoff = Time::ZERO + now.saturating_since(Time::ZERO + self.config.dead_reclaim);
                // O(retained dead): the reapable iterator walks the gone
                // pool only, never the whole table.
                let names: Vec<NodeName> = self
                    .membership
                    .reapable(cutoff)
                    .filter(|m| m.name != self.name)
                    .map(|m| m.name.clone())
                    .collect();
                for name in &names {
                    self.membership.remove(name);
                }
                // Delta-sync watermarks ride the same retention policy:
                // entries for reaped members or past the trust horizon
                // are dropped, bounding `peer_sync` by the live roster.
                let horizon = self.config.delta_sync_horizon;
                let membership = &self.membership;
                self.peer_sync.retain(|name, ps| {
                    membership.get(name).is_some()
                        && now.saturating_since(ps.last_exchange) <= horizon
                });
            }
        }
    }

    /// Starts one failure-detector round (SWIM's protocol period).
    fn probe_round(&mut self, now: Time) {
        // LHA-Probe: the period itself is scaled by LHM+1 (paper §IV-A).
        let interval = self.awareness.scale(self.config.probe_interval);
        self.schedule(now + interval, Timer::ProbeRound);
        if self.left {
            return;
        }
        if self.probe.is_some() {
            // Previous round still in flight (possible after the
            // interval shrank when the LHM recovered); let it finish.
            return;
        }
        let me = &self.name;
        let membership = &self.membership;
        let Some(target) = self.probe_list.next_target(membership, &mut self.rng, |n| {
            n != me
                && membership
                    .get(n)
                    .map(|m| m.is_live())
                    .unwrap_or(false)
        }) else {
            return;
        };
        let Some(target_addr) = self.membership.get(&target).map(|m| m.addr) else {
            debug_invariant!(false, "probe target vanished between selection and lookup");
            return;
        };
        let seq = self.next_seq();
        let ping = Message::Ping(Ping {
            seq,
            target: target.clone(),
            source: self.name.clone(),
            source_addr: self.addr,
        });
        self.stats.probes_sent += 1;
        self.send_packet(target_addr, &ping, Some(&target), now);
        let timeout = self.awareness.scale(self.config.probe_timeout);
        let timeout_timer = self.schedule(now + timeout, Timer::ProbeTimeout { seq });
        let round_end_timer = self.schedule(now + interval, Timer::ProbeRoundEnd { seq });
        self.probe = Some(ProbeState {
            seq,
            target,
            target_addr,
            expected_nacks: 0,
            nacks_received: 0,
            started: now,
            round_end: now + interval,
            timeout_timer,
            round_end_timer,
        });
    }

    /// Direct probe timed out: launch indirect probes and the stream
    /// fallback.
    fn probe_timeout(&mut self, seq: SeqNo, now: Time) {
        // Generation-keyed cancellation (a timely ack unschedules this
        // timer) makes a stale fire impossible; assert instead of guard.
        let Some(p) = &self.probe else {
            debug_assert!(false, "probe timeout fired with no probe in flight");
            return;
        };
        debug_assert_eq!(p.seq, seq, "stale probe timeout reached its handler");
        let target = p.target.clone();
        let target_addr = p.target_addr;
        let k = self.config.indirect_checks;
        let nack = self.config.nack_enabled();
        // O(k) draw from the live pool into the reusable address buffer:
        // the filter only rejects self and the probe target, so expected
        // inspections stay ~k even at 10k members, and nothing is
        // allocated in steady state.
        self.addr_scratch.clear();
        {
            let me = &self.name;
            let tgt = &target;
            let scratch = &mut self.addr_scratch;
            self.membership.sample_pool_with(
                SamplePool::Live,
                k,
                &mut self.rng,
                |m| m.name != *me && m.name != *tgt,
                |m| scratch.push(m.addr),
            );
        }
        let sent = self.addr_scratch.len() as u32;
        self.stats.indirect_probes_sent += sent as u64;
        for i in 0..sent as usize {
            // lint: allow(panic_path) — `sent` is `addr_scratch.len()` captured two lines above, and the loop body only appends to `pending`, never to `addr_scratch`
            let peer_addr = self.addr_scratch[i];
            let req = Message::IndirectPing(IndirectPing {
                seq,
                target: target.clone(),
                target_addr,
                nack,
                source: self.name.clone(),
                source_addr: self.addr,
            });
            self.send_packet(peer_addr, &req, None, now);
        }
        if let Some(p) = &mut self.probe {
            p.expected_nacks = if nack { sent } else { 0 };
        }
        if self.config.stream_fallback_probe {
            self.emit_stream(
                target_addr,
                Message::Ping(Ping {
                    seq,
                    target,
                    source: self.name.clone(),
                    source_addr: self.addr,
                }),
            );
        }
    }

    /// End of the protocol period: settle the probe result.
    fn probe_round_end(&mut self, seq: SeqNo, now: Time) {
        let Some(p) = self.probe.take() else {
            debug_assert!(false, "probe round end fired with no probe in flight");
            return;
        };
        debug_assert_eq!(p.seq, seq, "stale probe round end reached its handler");
        // Unschedule the timeout in case it has not fired yet (possible
        // only when the timeout is configured beyond the interval).
        self.timers.cancel(p.timeout_timer);
        self.stats.probes_failed += 1;
        // The probe was not acked in time (a timely ack clears the probe
        // state), so the round failed: feed the LHM. Following memberlist: when we had
        // nack-capable peers, health feedback comes from missed nacks;
        // otherwise the failed probe itself counts (+1).
        if p.expected_nacks > 0 {
            let missed = p.expected_nacks.saturating_sub(p.nacks_received);
            self.apply_awareness_delta(missed as i32 * self.config.awareness_deltas.missed_nack);
        } else {
            self.apply_awareness_delta(self.config.awareness_deltas.probe_failed);
        }
        let incarnation = self
            .membership
            .get(&p.target)
            .map(|m| m.incarnation)
            .unwrap_or(Incarnation::ZERO);
        // Routed through the same path as gossiped suspicions: if the
        // target is already suspect, our failed probe is an independent
        // confirmation (and is re-gossiped under LHA-Suspicion).
        let me = self.name.clone();
        self.apply_suspect(incarnation, &p.target, &me, now);
    }

    /// The suspicion deadline was reached: declare the failure.
    ///
    /// Deadline changes reschedule the single suspicion timer in place
    /// and refutations cancel it, so — unlike the old lazy-heap design —
    /// a fire here always means the *current* deadline truly expired;
    /// there is no re-arm path and no fire-time staleness check.
    fn suspicion_check(&mut self, node: NodeName, now: Time) {
        let Some(active) = self.suspicions.remove(&node) else {
            debug_assert!(false, "stale suspicion timer reached its handler");
            return;
        };
        self.record_suspicion_end(&active.sus, now);
        debug_assert!(
            now >= active.sus.deadline(),
            "suspicion timer fired before its deadline"
        );
        let incarnation = active.sus.incarnation();
        let declared = self
            .membership
            .update(&node, |member| {
                if member.state != MemberState::Suspect {
                    return false;
                }
                member.incarnation = incarnation;
                member.set_state(MemberState::Dead, now);
                true
            })
            .unwrap_or(false);
        if !declared {
            return;
        }
        self.stats.failures_declared += 1;
        let dead = Dead {
            incarnation,
            node: node.clone(),
            from: self.name.clone(),
        };
        self.broadcasts.enqueue(Message::Dead(dead));
        self.emit_event(Event::MemberFailed {
            name: node,
            incarnation,
            from: self.name.clone(),
        });
    }

    // ------------------------------------------------------------------
    // Suspicion / refutation
    // ------------------------------------------------------------------

    /// Marks `node` suspect and arms the (possibly dynamic) suspicion
    /// timer. `from` is the accuser (ourselves on probe failure). The
    /// names are cloned here — reference-count bumps, the suspicion
    /// state and the gossip message need owned handles.
    fn start_suspicion(
        &mut self,
        node: &NodeName,
        incarnation: Incarnation,
        from: &NodeName,
        now: Time,
    ) {
        let Some(member) = self.membership.get(node) else {
            return;
        };
        if !matches!(member.state, MemberState::Alive) {
            return;
        }
        let node = member.name.clone();
        let from = from.clone();
        let n = self.membership.live_count();
        let min = self.config.suspicion_min(n);
        let max = self.config.suspicion_max(n);
        let k = self.config.effective_k();
        let sus = Suspicion::new(incarnation, from.clone(), k, min, max, now);
        self.stats.suspicions_raised += 1;
        let deadline = sus.deadline();
        let timer = self.schedule(deadline, Timer::SuspicionCheck { node: node.clone() });
        self.suspicions.insert(node.clone(), ActiveSuspicion { sus, timer });
        self.membership.update(&node, |m| {
            m.incarnation = incarnation;
            m.set_state(MemberState::Suspect, now);
        });
        self.broadcasts.enqueue(Message::Suspect(Suspect {
            incarnation,
            node: node.clone(),
            from: from.clone(),
        }));
        self.emit_event(Event::MemberSuspected { name: node, from });
    }

    /// Refutes a suspicion (or death declaration) about ourselves by
    /// taking a higher incarnation and gossiping it. Feeds the LHM (+1):
    /// being suspected means we were too slow to answer probes.
    fn refute(&mut self, accused_incarnation: Incarnation, now: Time) {
        if accused_incarnation < self.incarnation {
            // Old news: our current incarnation already supersedes it,
            // but re-gossip our aliveness to speed convergence.
        } else {
            self.incarnation = accused_incarnation.next();
        }
        let incarnation = self.incarnation;
        self.membership.update(&self.name, |me| {
            me.incarnation = incarnation;
            me.set_state(MemberState::Alive, now);
        });
        self.stats.refutations += 1;
        self.apply_awareness_delta(self.config.awareness_deltas.refute);
        self.broadcasts.enqueue(Message::Alive(Alive {
            incarnation: self.incarnation,
            node: self.name.clone(),
            addr: self.addr,
            meta: self.meta.clone(),
        }));
        self.emit_event(Event::SelfRefuted {
            incarnation: self.incarnation,
        });
    }

    // ------------------------------------------------------------------
    // Gossip & push-pull
    // ------------------------------------------------------------------

    /// One dedicated gossip tick: send queued broadcasts to up to
    /// `gossip_nodes` random live (or recently dead) members.
    /// Allocation-free in steady state: targets land in the reusable
    /// address buffer and packets in the scratch arena.
    fn gossip_once(&mut self, now: Time) {
        if self.broadcasts.is_empty() {
            return;
        }
        // The queue is at its fullest right before a drain: fold the
        // level into the peak gauge here, once per gossip tick.
        self.metrics.broadcast_queue_peak = self
            .metrics
            .broadcast_queue_peak
            .max(self.broadcasts.len() as u64);
        self.addr_scratch.clear();
        {
            let me = &self.name;
            let dead_window = self.config.gossip_to_the_dead;
            let scratch = &mut self.addr_scratch;
            self.membership.sample_pool_with(
                SamplePool::All,
                self.config.gossip_nodes,
                &mut self.rng,
                |m| {
                    m.name != *me
                        && (m.is_live()
                            || (matches!(m.state, MemberState::Dead | MemberState::Left)
                                && now.saturating_since(m.state_change) <= dead_window))
                },
                |m| scratch.push(m.addr),
            );
        }
        if self.addr_scratch.is_empty() {
            return;
        }
        let limit = self.config.retransmit_limit(self.membership.live_count());
        // One encode pass for the whole fan-out: every target gets the
        // same packet (one arena slice, N queue entries referencing
        // it), and the broadcast queue charges N transmissions in one
        // fill — the shape a gather-send flushes as a single syscall.
        self.builder.reset(self.config.packet_budget);
        self.broadcasts
            .fill_fanout(&mut self.builder, limit, None, self.addr_scratch.len() as u32);
        let pending = &mut self.pending;
        self.builder
            .finish_into_fanout(&mut self.scratch, &self.addr_scratch, |to, range| {
                pending.push_back(Queued::Packet { to, range });
            });
    }

    /// One periodic anti-entropy exchange.
    ///
    /// Peer choice implements warm-partner selection: once at least
    /// `delta_sync_partners` peers hold fresh watermarks, the node keeps
    /// syncing among them (every exchange is an O(churn) delta);
    /// otherwise it explores a random alive peer, cold-starting a new
    /// pairing with one full-size exchange. Inbound exchanges warm
    /// pairings too, so the partner graph stays connected and mixes.
    fn push_pull_once(&mut self, now: Time) {
        if self.config.delta_sync {
            let horizon = self.config.delta_sync_horizon;
            let mut warm: Vec<(NodeName, NodeAddr)> = self
                .peer_sync
                .iter()
                .filter(|(_, ps)| now.saturating_since(ps.last_exchange) <= horizon)
                .filter_map(|(name, _)| {
                    let m = self.membership.get(name)?;
                    (m.state == MemberState::Alive).then(|| (m.name.clone(), m.addr))
                })
                .collect();
            if warm.len() >= self.config.delta_sync_partners.max(1) {
                // HashMap iteration order is not deterministic; sort so
                // the seeded draw below is reproducible.
                warm.sort_by(|a, b| a.0.cmp(&b.0));
                // lint: allow(panic_path) — the `.max(1)` guard above makes `warm` non-empty, so the range is non-empty and the sampled index is `< warm.len()`
                let (name, to) = warm[self.rng.random_range(0..warm.len())].clone();
                self.sync_with(&name, to, now);
                return;
            }
        }
        let mut peer = None;
        {
            let me = &self.name;
            self.membership.sample_pool_with(
                SamplePool::Live,
                1,
                &mut self.rng,
                |m| m.name != *me && m.state == MemberState::Alive,
                |m| peer = Some((m.name.clone(), m.addr)),
            );
        }
        let Some((name, to)) = peer else { return };
        self.sync_with(&name, to, now);
    }

    /// [`Input::Sync`]: one exchange with a specific member.
    fn sync_request(&mut self, with: &NodeName, now: Time) {
        if !self.started || self.left || *with == self.name {
            return;
        }
        let Some(m) = self.membership.get(with) else {
            return;
        };
        let (name, to) = (m.name.clone(), m.addr);
        self.sync_with(&name, to, now);
    }

    /// Starts one anti-entropy exchange with `peer`: an incremental
    /// [`PushPullDelta`] against the stored watermarks when delta sync
    /// is enabled and the watermarks are fresh, a full [`PushPull`]
    /// otherwise (delta sync disabled, or watermark stale past
    /// `delta_sync_horizon`). A peer without watermarks gets a
    /// `since = 0` delta — semantically a full exchange that also
    /// bootstraps the watermarks for the rounds after it.
    fn sync_with(&mut self, peer: &NodeName, to: NodeAddr, now: Time) {
        if !self.config.delta_sync {
            self.emit_full_push_pull(to);
            return;
        }
        if let Some(ps) = self.peer_sync.get(peer) {
            if now.saturating_since(ps.last_exchange) > self.config.delta_sync_horizon {
                // Watermark stale past the horizon: distrust it, resync
                // in full, and let fresh watermarks re-form.
                self.peer_sync.remove(peer);
                self.emit_full_push_pull(to);
                return;
            }
        }
        let (since, since_epoch, local_acked) = match self.peer_sync.get(peer) {
            Some(ps) => (ps.remote_seen, ps.peer_epoch, ps.local_acked),
            None => (0, 0, 0),
        };
        let msg = Message::PushPullDelta(PushPullDelta {
            from: self.name.clone(),
            epoch: self.epoch,
            since_epoch,
            since,
            seq: self.membership.update_seq(),
            reply: false,
            entries: self.collect_changed(local_acked),
        });
        self.record_delta_sync(&msg);
        self.emit_stream(to, msg);
    }

    /// Counts one outgoing incremental push-pull and its wire size.
    fn record_delta_sync(&mut self, msg: &Message) {
        self.metrics.delta_syncs += 1;
        self.metrics.delta_sync_bytes = self
            .metrics
            .delta_sync_bytes
            .saturating_add(lifeguard_proto::codec::encoded_len(msg) as u64);
    }

    /// A [`PushPullDelta`] arrived on the stream transport.
    ///
    /// Watermark protocol: the peer's `since` (validated against our
    /// `epoch`) tells us how much of *our* state it has merged, and
    /// doubles as the ack that advances `local_acked`; its `seq` covers
    /// the attached entries, advancing `remote_seen` once they are
    /// merged. Replies snapshot their entry list *before* merging so
    /// freshly accepted entries are not echoed straight back.
    fn handle_push_pull_delta(&mut self, from_addr: NodeAddr, d: PushPullDelta, now: Time) {
        if d.from == self.name {
            return; // a delta "from ourselves" is a routing error
        }
        // `since = 0` asks to be served from scratch and is always
        // honoured; a non-zero watermark must match this instance.
        let servable = self.config.delta_sync
            && (d.since == 0
                || (d.since_epoch == self.epoch && d.since <= self.membership.update_seq()));
        if !servable {
            // The remote's watermark refers to a version we cannot
            // serve (we restarted, or delta sync is disabled here).
            // Its entries are still ordinary membership facts — merge
            // them — then fall back to a full exchange. `reply: false`
            // solicits the peer's full state in return, so both sides
            // resync from scratch and fresh watermarks re-form on the
            // next delta round.
            self.peer_sync.remove(&d.from);
            self.merge_remote_state(&d.entries, now);
            if !d.reply {
                self.emit_full_push_pull(from_addr);
            }
            return;
        }
        let entry = self
            .peer_sync
            .entry(d.from.clone())
            .or_insert_with(|| PeerSync {
                peer_epoch: d.epoch,
                remote_seen: 0,
                local_acked: 0,
                last_exchange: now,
            });
        if entry.peer_epoch != d.epoch {
            // The peer restarted: every watermark for its previous
            // instance is void.
            *entry = PeerSync {
                peer_epoch: d.epoch,
                remote_seen: 0,
                local_acked: 0,
                last_exchange: now,
            };
        }
        if d.since == 0 {
            // An explicit serve-from-scratch request overrides any
            // stored ack: the peer is telling us it has merged nothing
            // of ours, and its claim must win even if epoch detection
            // failed to notice a restart (re-sending is always safe;
            // trusting a stale ack never is).
            entry.local_acked = 0;
        } else {
            entry.local_acked = entry.local_acked.max(d.since);
        }
        entry.last_exchange = now;
        // Record the remote watermark up front (the merge below never
        // touches `peer_sync`), so the entry needs no re-lookup after
        // the `&mut self` call.
        entry.remote_seen = entry.remote_seen.max(d.seq);
        let local_acked = entry.local_acked;
        let reply = (!d.reply).then(|| {
            Message::PushPullDelta(PushPullDelta {
                from: self.name.clone(),
                epoch: self.epoch,
                since_epoch: d.epoch,
                since: d.seq,
                seq: self.membership.update_seq(),
                reply: true,
                entries: self.collect_changed(local_acked),
            })
        });
        self.merge_remote_state(&d.entries, now);
        if let Some(msg) = reply {
            self.record_delta_sync(&msg);
            self.emit_stream(from_addr, msg);
        }
    }

    /// Members changed after `since` in push-pull wire form, newest
    /// first. O(changed) via the membership change log.
    fn collect_changed(&self, since: u64) -> Vec<lifeguard_proto::PushNodeState> {
        self.membership
            .changed_since(since)
            .map(Member::to_push_state)
            .collect()
    }

    /// Queues a full-state push-pull request to `to` — the join path,
    /// the reconnect path, and every delta-sync fallback.
    fn emit_full_push_pull(&mut self, to: NodeAddr) {
        self.metrics.full_syncs += 1;
        let states = self.membership.iter().map(Member::to_push_state).collect();
        self.emit_stream(
            to,
            Message::PushPull(PushPull {
                join: false,
                reply: false,
                states,
            }),
        );
    }

    /// One Serf-style reconnect attempt: push-pull with a random member
    /// believed dead, so partitioned sub-groups re-merge automatically
    /// once connectivity is restored. Always a full exchange: whatever
    /// watermarks existed before the partition are exactly the ones a
    /// resurrecting peer cannot be trusted to still honour.
    fn reconnect_once(&mut self) {
        let mut peer = None;
        {
            let me = &self.name;
            self.membership.sample_pool_with(
                SamplePool::Gone,
                1,
                &mut self.rng,
                |m| m.name != *me && m.state == MemberState::Dead,
                |m| peer = Some(m.addr),
            );
        }
        let Some(to) = peer else { return };
        self.emit_full_push_pull(to);
    }

    /// Merges a remote membership table (push-pull). Remote `dead` claims
    /// are downgraded to suspicions so the victim can refute (memberlist
    /// behaviour); `left` is authoritative.
    ///
    /// Entries are pre-filtered through the borrowed state the
    /// shared-decode path produced: an entry that cannot survive the
    /// merge (stale incarnation, or a state the local record already
    /// supersedes) is dropped *before* any name/meta clone or message
    /// construction. In steady-state anti-entropy almost every entry is
    /// such a no-op, so the merge allocates only for actual changes.
    fn merge_remote_state(&mut self, states: &[lifeguard_proto::PushNodeState], now: Time) {
        for st in states {
            match st.state {
                MemberState::Alive => {
                    // The borrowed alive path drops stale entries and
                    // reuses stored names/metas for accepted updates to
                    // known members; only genuinely new members allocate.
                    self.apply_alive(st.incarnation, &st.name, st.addr, &st.meta, now);
                }
                MemberState::Suspect | MemberState::Dead => {
                    if st.name == self.name {
                        self.refute(st.incarnation, now);
                        continue;
                    }
                    // Learn the member first if unknown (a suspect entry
                    // still carries a usable address); the borrowed
                    // suspect path then drops stale/superseded
                    // suspicions without cloning anything.
                    if self.membership.get(&st.name).is_none() {
                        self.apply_alive(st.incarnation, &st.name, st.addr, &st.meta, now);
                    }
                    let me = self.name.clone();
                    self.apply_suspect(st.incarnation, &st.name, &me, now);
                }
                MemberState::Left => {
                    // A leave claim about ourselves is refuted exactly as
                    // `handle_dead` would.
                    if st.name == self.name {
                        if !self.left {
                            self.refute(st.incarnation, now);
                        }
                        continue;
                    }
                    // `handle_dead` drops claims about unknown members,
                    // stale incarnations and already-gone members.
                    match self.membership.get(&st.name) {
                        None => continue,
                        Some(member)
                            if st.incarnation < member.incarnation
                                || matches!(
                                    member.state,
                                    MemberState::Dead | MemberState::Left
                                ) =>
                        {
                            continue;
                        }
                        Some(_) => {}
                    }
                    let dead = Dead {
                        incarnation: st.incarnation,
                        node: st.name.clone(),
                        from: st.name.clone(),
                    };
                    self.handle_dead(dead, now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Send helpers
    // ------------------------------------------------------------------

    /// Builds and queues one datagram: the primary message plus gossip
    /// piggyback, encoded by the node's reusable builder straight into
    /// the scratch arena — no allocation per packet in steady state.
    /// `ping_target` enables the Buddy System hook: when set and the
    /// target is suspected, the suspect message about it is
    /// force-included first (paper §IV-C).
    fn send_packet(
        &mut self,
        to: NodeAddr,
        primary: &Message,
        ping_target: Option<&NodeName>,
        _now: Time,
    ) {
        self.builder.reset(self.config.packet_budget);
        // Encoded straight into the packet buffer: no per-message
        // allocation on the assembly path.
        let added = self.builder.try_add_msg(primary);
        debug_assert!(added, "primary message must fit");
        let mut exclude = None;
        if let Some(target) = ping_target {
            if self.config.lifeguard.buddy_system {
                if let Some(active) = self.suspicions.get(target) {
                    let suspect = Message::Suspect(Suspect {
                        incarnation: active.sus.incarnation(),
                        node: target.clone(),
                        from: self.name.clone(),
                    });
                    self.builder.try_add_msg(&suspect);
                    exclude = Some(target.clone());
                }
            }
        }
        let limit = self.config.retransmit_limit(self.membership.live_count());
        self.broadcasts.fill(&mut self.builder, limit, exclude.as_ref());
        if let Some(range) = self.builder.finish_into(&mut self.scratch) {
            self.pending.push_back(Queued::Packet { to, range });
        }
    }

    fn emit_stream(&mut self, to: NodeAddr, msg: Message) {
        self.pending.push_back(Queued::Stream { to, msg });
    }

    fn emit_event(&mut self, event: Event) {
        self.pending.push_back(Queued::Event(event));
    }

    fn next_seq(&mut self) -> SeqNo {
        self.seq = self.seq.next();
        self.seq
    }

    fn schedule(&mut self, at: Time, timer: Timer) -> TimerKey {
        self.timers.schedule(at, timer)
    }

    fn random_phase(&mut self, interval: std::time::Duration) -> std::time::Duration {
        let us = interval.as_micros().max(1) as u64;
        std::time::Duration::from_micros(self.rng.random_range(0..us))
    }

    /// The queued gossip broadcast about `subject`, if any (test/debug
    /// introspection).
    pub fn queued_broadcast_for(&self, subject: &NodeName) -> Option<&Message> {
        self.broadcasts.queued_for(subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LifeguardConfig;
    use crate::driver::OwnedOutput;
    use lifeguard_proto::codec;
    use std::time::Duration;

    fn addr(i: u8) -> NodeAddr {
        NodeAddr::new([10, 0, 0, i], 7946)
    }

    fn node(cfg: Config) -> SwimNode {
        let mut n = SwimNode::new("local".into(), addr(1), cfg, 1);
        n.start(Time::ZERO);
        n
    }

    /// Drains the node's output queue into owned outputs.
    fn drain(n: &mut SwimNode) -> Vec<OwnedOutput> {
        let mut out = Vec::new();
        while let Some(o) = n.poll_output() {
            out.push(OwnedOutput::from(o));
        }
        out
    }

    /// Delivers one message as a (real, encoded) datagram and drains the
    /// effects.
    fn feed(n: &mut SwimNode, from: NodeAddr, msg: Message, now: Time) -> Vec<OwnedOutput> {
        n.handle_input(
            Input::Datagram {
                from,
                payload: codec::encode_message(&msg),
            },
            now,
        )
        .expect("well-formed test message");
        drain(n)
    }

    /// Delivers one stream message and drains the effects.
    fn feed_stream(
        n: &mut SwimNode,
        from: NodeAddr,
        msg: Message,
        now: Time,
    ) -> Vec<OwnedOutput> {
        n.handle_input(Input::Stream { from, msg }, now)
            .expect("stream input is infallible");
        drain(n)
    }

    /// Fires timers due at `now` and drains the effects.
    fn tick(n: &mut SwimNode, now: Time) -> Vec<OwnedOutput> {
        n.handle_input(Input::Tick, now).expect("tick is infallible");
        drain(n)
    }

    /// Registers `name` as an alive peer via an alive message.
    fn add_peer(n: &mut SwimNode, name: &str, i: u8, now: Time) {
        let outputs = feed(
            n,
            addr(i),
            Message::Alive(Alive {
                incarnation: Incarnation(1),
                node: name.into(),
                addr: addr(i),
                meta: Bytes::new(),
            }),
            now,
        );
        assert!(outputs
            .iter()
            .any(|o| matches!(o, OwnedOutput::Event(Event::MemberJoined { .. }))));
    }

    fn events(outputs: &[OwnedOutput]) -> Vec<&Event> {
        outputs
            .iter()
            .filter_map(|o| match o {
                OwnedOutput::Event(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    fn packets(outputs: &[OwnedOutput]) -> Vec<(NodeAddr, Vec<Message>)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                OwnedOutput::Packet { to, payload } => {
                    Some((*to, compound::decode_packet(payload).unwrap()))
                }
                _ => None,
            })
            .collect()
    }

    /// Runs the node's timers up to `until`, collecting outputs.
    fn run_until(n: &mut SwimNode, until: Time) -> Vec<OwnedOutput> {
        let mut out = Vec::new();
        while let Some(wake) = n.next_wake() {
            if wake > until {
                break;
            }
            out.extend(tick(n, wake));
        }
        out
    }

    #[test]
    fn start_arms_timers() {
        let n = node(Config::lan());
        assert!(n.next_wake().is_some());
        assert_eq!(n.num_alive(), 1);
        assert_eq!(n.incarnation(), Incarnation::ZERO);
    }

    #[test]
    #[should_panic(expected = "start() called twice")]
    fn double_start_panics() {
        let mut n = node(Config::lan());
        n.start(Time::ZERO);
    }

    #[test]
    fn ping_is_acked_to_source() {
        let mut n = node(Config::lan());
        let out = feed(&mut n, 
            addr(2),
            Message::Ping(Ping {
                seq: SeqNo(7),
                target: "local".into(),
                source: "peer".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        let pkts = packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].0, addr(2));
        assert_eq!(pkts[0].1[0], Message::Ack(Ack { seq: SeqNo(7) }));
    }

    #[test]
    fn misaddressed_ping_is_dropped() {
        let mut n = node(Config::lan());
        let out = feed(&mut n, 
            addr(2),
            Message::Ping(Ping {
                seq: SeqNo(7),
                target: "someone-else".into(),
                source: "peer".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        assert!(packets(&out).is_empty());
    }

    #[test]
    fn alive_message_adds_member() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "peer-1", 2, Time::from_secs(1));
        assert_eq!(n.num_alive(), 2);
        let m = n.member(&"peer-1".into()).unwrap();
        assert_eq!(m.state, MemberState::Alive);
        assert_eq!(m.incarnation, Incarnation(1));
        // The alive message is re-gossiped.
        assert!(n.pending_broadcasts() > 0);
    }

    #[test]
    fn stale_alive_does_not_override_suspect() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        let out = feed(&mut n, 
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(2),
        );
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberSuspected { .. })));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);

        // Alive at the same incarnation must NOT clear the suspicion.
        let out = feed(&mut n, 
            addr(2),
            Message::Alive(Alive {
                incarnation: Incarnation(1),
                node: "p".into(),
                addr: addr(2),
                meta: Bytes::new(),
            }),
            Time::from_secs(3),
        );
        assert!(events(&out).is_empty());
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);

        // Alive at a higher incarnation refutes it.
        let out = feed(&mut n, 
            addr(2),
            Message::Alive(Alive {
                incarnation: Incarnation(2),
                node: "p".into(),
                addr: addr(2),
                meta: Bytes::new(),
            }),
            Time::from_secs(4),
        );
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberRecovered { .. })));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Alive);
    }

    #[test]
    fn suspect_about_self_is_refuted() {
        let mut n = node(Config::lan().lifeguard());
        let health_before = n.local_health();
        let out = feed(&mut n, 
            addr(2),
            Message::Suspect(Suspect {
                incarnation: Incarnation::ZERO,
                node: "local".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(1),
        );
        assert!(n.incarnation() > Incarnation::ZERO);
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::SelfRefuted { .. })));
        // Refutation costs local health (+1).
        assert_eq!(n.local_health(), health_before + 1);
        // An alive broadcast is queued.
        assert!(n.pending_broadcasts() > 0);
    }

    #[test]
    fn dead_about_self_is_refuted() {
        let mut n = node(Config::lan());
        let out = feed(&mut n, 
            addr(2),
            Message::Dead(Dead {
                incarnation: Incarnation(3),
                node: "local".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(1),
        );
        assert_eq!(n.incarnation(), Incarnation(4));
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::SelfRefuted { .. })));
    }

    #[test]
    fn suspicion_expires_to_dead_with_fixed_swim_timeout() {
        let mut n = node(Config::lan()); // SWIM: α=5, β(eff)=1
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        feed(&mut n, 
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(2),
        );
        // n = 2 live ⇒ min = 5·max(1, log10(2))·1 s = 5 s.
        let out = run_until(&mut n, Time::from_secs(2) + Duration::from_millis(5001));
        let fails: Vec<_> = events(&out)
            .into_iter()
            .filter(|e| e.is_failure())
            .collect();
        assert_eq!(fails.len(), 1);
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Dead);
    }

    #[test]
    fn lha_suspicion_starts_at_max_and_confirmations_shorten_it() {
        let mut n = node(Config::lan().lifeguard());
        for (i, name) in ["p", "a", "b", "c"].iter().enumerate() {
            add_peer(&mut n, name, i as u8 + 2, Time::from_secs(1));
        }
        let t0 = Time::from_secs(2);
        feed(&mut n, 
            addr(9),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "a".into(),
            }),
            t0,
        );
        // n = 5 live ⇒ min = 5 s, max = 30 s. No confirmations: not dead
        // at min + ε.
        let out = run_until(&mut n, t0 + Duration::from_millis(5500));
        assert!(events(&out).iter().all(|e| !e.is_failure()));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);

        // Three independent confirmations drive the deadline to min,
        // which has already passed → immediate failure on next tick.
        for from in ["b", "c", "local-other"] {
            feed(&mut n, 
                addr(9),
                Message::Suspect(Suspect {
                    incarnation: Incarnation(1),
                    node: "p".into(),
                    from: from.into(),
                }),
                t0 + Duration::from_millis(5600),
            );
        }
        let out = run_until(&mut n, t0 + Duration::from_millis(5700));
        assert!(events(&out).iter().any(|e| e.is_failure()));
    }

    #[test]
    fn independent_suspicions_are_regossiped_at_most_k_times() {
        let mut n = node(Config::lan().lifeguard());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        feed(&mut n, 
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "a".into(),
            }),
            Time::from_secs(2),
        );
        // Queue currently holds the initial suspect broadcast.
        let mut regossiped = 0;
        for from in ["b", "c", "d", "e", "f"] {
            let before = n.pending_broadcasts();
            feed(&mut n, 
                addr(3),
                Message::Suspect(Suspect {
                    incarnation: Incarnation(1),
                    node: "p".into(),
                    from: from.into(),
                }),
                Time::from_secs(3),
            );
            // Re-gossip replaces the queued suspect (same subject), so
            // the queue length is unchanged; detect via queued message.
            if n.pending_broadcasts() == before {
                if let Some(Message::Suspect(s)) = n.queued_broadcast_for(&"p".into()) {
                    if s.from == NodeName::from(from) {
                        regossiped += 1;
                    }
                }
            }
        }
        assert_eq!(regossiped, 3, "exactly K=3 confirmations re-gossiped");
    }

    #[test]
    fn probe_failure_raises_suspicion_and_lhm() {
        let mut n = node(Config::lan().lifeguard());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        // Run past a whole probe round with no responses: the probe
        // fails (no ack, no nacks possible with one peer).
        let out = run_until(&mut n, Time::from_secs(4));
        let suspected = events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberSuspected { name, .. } if name.as_str() == "p"));
        assert!(suspected, "unanswered probe must raise a suspicion");
        assert!(n.local_health() >= 1, "failed probe must cost local health");
    }

    #[test]
    fn acked_probe_improves_lhm() {
        let mut n = node(Config::lan().lifeguard());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        // Push LHM up first.
        feed(&mut n, 
            addr(2),
            Message::Suspect(Suspect {
                incarnation: Incarnation::ZERO,
                node: "local".into(),
                from: "p".into(),
            }),
            Time::from_secs(1),
        );
        let health = n.local_health();
        assert!(health > 0);

        // Find the ping the probe round sends and ack it in time.
        let mut acked = false;
        for _ in 0..50 {
            let wake = n.next_wake().unwrap();
            let out = tick(&mut n, wake);
            for (to, msgs) in packets(&out) {
                for m in msgs {
                    if let Message::Ping(p) = m {
                        assert_eq!(to, addr(2));
                        feed(&mut n, 
                            addr(2),
                            Message::Ack(Ack { seq: p.seq }),
                            wake + Duration::from_millis(1),
                        );
                        acked = true;
                    }
                }
            }
            if acked {
                break;
            }
        }
        assert!(acked, "probe round never sent a ping");
        assert_eq!(n.local_health(), health - 1);
    }

    #[test]
    fn indirect_ping_is_relayed_and_ack_forwarded() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "target", 3, Time::from_secs(1));
        let out = feed(&mut n, 
            addr(2),
            Message::IndirectPing(IndirectPing {
                seq: SeqNo(99),
                target: "target".into(),
                target_addr: addr(3),
                nack: true,
                source: "origin".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        let pkts = packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].0, addr(3));
        let relayed_seq = match &pkts[0].1[0] {
            Message::Ping(p) => {
                assert_eq!(p.target.as_str(), "target");
                p.seq
            }
            other => panic!("expected relayed ping, got {other:?}"),
        };

        // Target acks → the ack is forwarded to the origin with the
        // origin's sequence number.
        let out = feed(&mut n, 
            addr(3),
            Message::Ack(Ack { seq: relayed_seq }),
            Time::from_secs(1) + Duration::from_millis(10),
        );
        let pkts = packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].0, addr(2));
        assert_eq!(pkts[0].1[0], Message::Ack(Ack { seq: SeqNo(99) }));
    }

    #[test]
    fn relay_sends_nack_at_deadline_when_target_silent() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "target", 3, Time::from_secs(1));
        feed(&mut n, 
            addr(2),
            Message::IndirectPing(IndirectPing {
                seq: SeqNo(99),
                target: "target".into(),
                target_addr: addr(3),
                nack: true,
                source: "origin".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        // 80% of the 500 ms probe timeout = 400 ms.
        let out = run_until(&mut n, Time::from_secs(1) + Duration::from_millis(401));
        let nacks: Vec<_> = packets(&out)
            .into_iter()
            .filter(|(to, msgs)| {
                *to == addr(2) && msgs.iter().any(|m| matches!(m, Message::Nack(k) if k.seq == SeqNo(99)))
            })
            .collect();
        assert_eq!(nacks.len(), 1);
    }

    #[test]
    fn leave_broadcasts_self_signed_dead() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        n.handle_input(Input::Leave, Time::from_secs(2)).unwrap();
        let out = drain(&mut n);
        assert!(n.has_left());
        let mut saw_leave = false;
        for (_, msgs) in packets(&out) {
            for m in msgs {
                if let Message::Dead(d) = m {
                    assert_eq!(d.node, d.from);
                    saw_leave = true;
                }
            }
        }
        assert!(saw_leave, "leave must gossip a self-signed dead message");
    }

    #[test]
    fn peer_leave_emits_member_left() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        let out = feed(&mut n, 
            addr(2),
            Message::Dead(Dead {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "p".into(),
            }),
            Time::from_secs(2),
        );
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberLeft { .. })));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Left);
    }

    #[test]
    fn push_pull_merge_downgrades_dead_to_suspect() {
        let mut n = node(Config::lan());
        let states = vec![
            lifeguard_proto::PushNodeState {
                name: "p".into(),
                addr: addr(2),
                incarnation: Incarnation(1),
                state: MemberState::Dead,
                meta: Bytes::new(),
            },
        ];
        let out = feed_stream(
            &mut n,
            addr(2),
            Message::PushPull(PushPull {
                join: true,
                reply: false,
                states,
            }),
            Time::from_secs(1),
        );
        // Dead entries are merged as suspicions so the victim can refute.
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);
        // And the exchange is answered.
        assert!(out
            .iter()
            .any(|o| matches!(o, OwnedOutput::Stream { msg: Message::PushPull(pp), .. } if pp.reply)));
    }

    #[test]
    fn stream_ping_gets_stream_ack() {
        let mut n = node(Config::lan());
        let out = feed_stream(
            &mut n,
            addr(2),
            Message::Ping(Ping {
                seq: SeqNo(5),
                target: "local".into(),
                source: "peer".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        assert!(matches!(
            &out[0],
            OwnedOutput::Stream { msg: Message::Ack(a), .. } if a.seq == SeqNo(5)
        ));
    }

    #[test]
    fn buddy_system_includes_suspect_in_ping_to_suspected() {
        let mut cfg = Config::lan();
        cfg.lifeguard = LifeguardConfig::buddy_system_only();
        let mut n = node(cfg);
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        feed(&mut n, 
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(2),
        );
        // Drain the broadcast queue completely so only the buddy hook
        // could possibly attach the suspicion.
        while n.pending_broadcasts() > 0 {
            let wake = n.next_wake().unwrap();
            tick(&mut n, wake);
        }
        // Probe rounds target "p" (the only peer): the ping must carry
        // the suspect message about "p".
        let mut saw_buddy = false;
        for _ in 0..100 {
            let Some(wake) = n.next_wake() else { break };
            if wake > Time::from_secs(60) {
                break;
            }
            let out = tick(&mut n, wake);
            for (to, msgs) in packets(&out) {
                let has_ping = msgs.iter().any(
                    |m| matches!(m, Message::Ping(p) if p.target.as_str() == "p"),
                );
                if has_ping && to == addr(2) {
                    let has_suspect = msgs.iter().any(
                        |m| matches!(m, Message::Suspect(s) if s.node.as_str() == "p"),
                    );
                    if has_suspect {
                        saw_buddy = true;
                    }
                }
            }
            if saw_buddy {
                break;
            }
        }
        assert!(
            saw_buddy,
            "buddy system must attach the suspicion to pings of the suspected member"
        );
    }

    #[test]
    fn join_sends_push_pull_to_seeds() {
        let mut n = node(Config::lan());
        n.handle_input(
            Input::Join {
                seeds: vec![addr(5), addr(1)],
            },
            Time::ZERO,
        )
        .unwrap();
        let out = drain(&mut n);
        // addr(1) is ourselves and is skipped.
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            OwnedOutput::Stream { to, msg: Message::PushPull(pp) } if *to == addr(5) && pp.join && !pp.reply
        ));
    }

    #[test]
    fn datagram_decode_error_is_propagated() {
        let mut n = node(Config::lan());
        assert!(n
            .handle_input(
                Input::Datagram {
                    from: addr(2),
                    payload: Bytes::copy_from_slice(&[250, 250]),
                },
                Time::ZERO,
            )
            .is_err());
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut cfg = Config::lan();
        cfg.gossip_nodes = 0;
        assert_eq!(
            SwimNode::try_new("x".into(), addr(1), cfg, 1).err(),
            Some(crate::config::ConfigError::EmptyGossipFanout)
        );
    }

    #[test]
    #[should_panic(expected = "invalid SwimNode config")]
    fn invalid_config_panics_in_new() {
        let mut cfg = Config::lan();
        cfg.probe_interval = Duration::ZERO;
        let _ = SwimNode::new("x".into(), addr(1), cfg, 1);
    }

    #[test]
    fn accepted_alive_for_known_member_reuses_stored_meta() {
        let mut n = node(Config::lan());
        let meta = Bytes::from_static(b"role=db");
        feed(
            &mut n,
            addr(2),
            Message::Alive(Alive {
                incarnation: Incarnation(1),
                node: "p".into(),
                addr: addr(2),
                meta: meta.clone(),
            }),
            Time::from_secs(1),
        );
        // Higher incarnation, identical meta: the stored record keeps
        // its bytes and the state refresh is accepted.
        feed(
            &mut n,
            addr(2),
            Message::Alive(Alive {
                incarnation: Incarnation(2),
                node: "p".into(),
                addr: addr(2),
                meta: meta.clone(),
            }),
            Time::from_secs(2),
        );
        let m = n.member(&"p".into()).unwrap();
        assert_eq!(m.incarnation, Incarnation(2));
        assert_eq!(m.meta.as_ref(), b"role=db");
        // Changed meta is still picked up.
        feed(
            &mut n,
            addr(2),
            Message::Alive(Alive {
                incarnation: Incarnation(3),
                node: "p".into(),
                addr: addr(2),
                meta: Bytes::from_static(b"role=web"),
            }),
            Time::from_secs(3),
        );
        assert_eq!(n.member(&"p".into()).unwrap().meta.as_ref(), b"role=web");
    }

    /// Registers a real peer node in `n`'s table at the incarnation the
    /// peer actually holds (0), so cross-node table comparisons line up.
    fn add_real_peer(n: &mut SwimNode, name: &str, i: u8, now: Time) {
        feed(
            n,
            addr(i),
            Message::Alive(Alive {
                incarnation: Incarnation::ZERO,
                node: name.into(),
                addr: addr(i),
                meta: Bytes::new(),
            }),
            now,
        );
    }

    fn stream_msgs(outputs: &[OwnedOutput]) -> Vec<(NodeAddr, Message)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                OwnedOutput::Stream { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    /// `(name, addr, incarnation, state, meta)` of every member, sorted —
    /// the comparable essence of a membership table.
    fn table_of(n: &SwimNode) -> Vec<(String, String, u64, u8, Vec<u8>)> {
        let mut rows: Vec<_> = n
            .members()
            .map(|m| {
                (
                    m.name.as_str().to_owned(),
                    format!("{:?}", m.addr),
                    m.incarnation.0,
                    m.state.as_u8(),
                    m.meta.as_ref().to_vec(),
                )
            })
            .collect();
        rows.sort();
        rows
    }

    /// Regression (stream-path guard): before `start`, stream messages
    /// must be dropped exactly like datagrams — no replies, no state.
    #[test]
    fn pre_start_stream_messages_are_dropped() {
        let mut n = SwimNode::new("local".into(), addr(1), Config::lan(), 1);
        let states = vec![lifeguard_proto::PushNodeState {
            name: "ghost".into(),
            addr: addr(7),
            incarnation: Incarnation(1),
            state: MemberState::Alive,
            meta: Bytes::new(),
        }];
        n.handle_input(
            Input::Stream {
                from: addr(9),
                msg: Message::PushPull(PushPull {
                    join: true,
                    reply: false,
                    states,
                }),
            },
            Time::ZERO,
        )
        .unwrap();
        n.handle_input(
            Input::Stream {
                from: addr(9),
                msg: Message::Ping(Ping {
                    seq: SeqNo(3),
                    target: "local".into(),
                    source: "peer".into(),
                    source_addr: addr(9),
                }),
            },
            Time::ZERO,
        )
        .unwrap();
        assert!(drain(&mut n).is_empty(), "pre-start stream must produce nothing");
        assert!(n.member(&"ghost".into()).is_none(), "pre-start merge must not happen");
        assert_eq!(n.members().count(), 0);
    }

    /// Regression (stream-path guard): after a graceful leave, stream
    /// messages are dropped too — no acks, no anti-entropy answers.
    #[test]
    fn post_leave_stream_messages_are_dropped() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        n.handle_input(Input::Leave, Time::from_secs(2)).unwrap();
        drain(&mut n);
        let out = feed_stream(
            &mut n,
            addr(2),
            Message::Ping(Ping {
                seq: SeqNo(5),
                target: "local".into(),
                source: "p".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(3),
        );
        assert!(out.is_empty(), "a left node must not ack stream probes");
        let out = feed_stream(
            &mut n,
            addr(2),
            Message::PushPull(PushPull {
                join: false,
                reply: false,
                states: vec![lifeguard_proto::PushNodeState {
                    name: "ghost".into(),
                    addr: addr(7),
                    incarnation: Incarnation(1),
                    state: MemberState::Alive,
                    meta: Bytes::new(),
                }],
            }),
            Time::from_secs(3),
        );
        assert!(out.is_empty(), "a left node must not answer push-pull");
        assert!(n.member(&"ghost".into()).is_none());
    }

    /// Regression: a remote `Left` entry about a member we never knew
    /// must be dropped, not resurrected through the learn-then-apply
    /// path `Suspect`/`Dead` entries use.
    #[test]
    fn remote_left_entry_for_unknown_member_is_not_resurrected() {
        let mut n = node(Config::lan());
        let out = feed_stream(
            &mut n,
            addr(9),
            Message::PushPull(PushPull {
                join: false,
                reply: true, // response half: no counter-reply expected
                states: vec![lifeguard_proto::PushNodeState {
                    name: "ghost".into(),
                    addr: addr(7),
                    incarnation: Incarnation(5),
                    state: MemberState::Left,
                    meta: Bytes::new(),
                }],
            }),
            Time::from_secs(1),
        );
        assert!(out.is_empty(), "a left-unknown entry must produce no effects");
        assert!(n.member(&"ghost".into()).is_none(), "member must not be learned");
        assert!(
            n.queued_broadcast_for(&"ghost".into()).is_none(),
            "nothing about the ghost may be gossiped"
        );
        // Contrast: a Suspect entry for an unknown member *is* learned
        // (memberlist behaviour), pinning that the two paths differ.
        feed_stream(
            &mut n,
            addr(9),
            Message::PushPull(PushPull {
                join: false,
                reply: true,
                states: vec![lifeguard_proto::PushNodeState {
                    name: "sus".into(),
                    addr: addr(8),
                    incarnation: Incarnation(1),
                    state: MemberState::Suspect,
                    meta: Bytes::new(),
                }],
            }),
            Time::from_secs(1),
        );
        assert_eq!(n.member(&"sus".into()).unwrap().state, MemberState::Suspect);
    }

    /// A delta arriving by datagram is dropped like a full push-pull.
    #[test]
    fn push_pull_delta_by_datagram_is_dropped() {
        let mut n = node(Config::lan());
        let out = feed(
            &mut n,
            addr(9),
            Message::PushPullDelta(PushPullDelta {
                from: "peer".into(),
                epoch: 7,
                since_epoch: 0,
                since: 0,
                seq: 3,
                reply: false,
                entries: vec![lifeguard_proto::PushNodeState {
                    name: "ghost".into(),
                    addr: addr(7),
                    incarnation: Incarnation(1),
                    state: MemberState::Alive,
                    meta: Bytes::new(),
                }],
            }),
            Time::from_secs(1),
        );
        assert!(out.is_empty());
        assert!(n.member(&"ghost".into()).is_none());
    }

    /// End-to-end delta exchange between two real nodes: the first
    /// exchange bootstraps (full-equivalent), the second carries only
    /// the churn, and a dropped reply is retransmitted — never lost.
    #[test]
    fn delta_exchange_converges_and_second_round_is_incremental() {
        let now = Time::from_secs(1);
        let mut a = node(Config::lan()); // "local" at addr(1)
        let mut b = SwimNode::new("remote".into(), addr(2), Config::lan(), 2);
        b.start(Time::ZERO);
        for (i, p) in ["p1", "p2", "p3"].iter().enumerate() {
            add_peer(&mut a, p, 10 + i as u8, now);
        }
        add_real_peer(&mut a, "remote", 2, now);

        // Round 1: cold watermarks → the delta is full-equivalent.
        a.handle_input(Input::Sync { with: "remote".into() }, now).unwrap();
        let req = stream_msgs(&drain(&mut a));
        assert_eq!(req.len(), 1);
        assert_eq!(req[0].0, addr(2));
        let Message::PushPullDelta(d) = &req[0].1 else {
            panic!("expected delta, got {:?}", req[0].1)
        };
        assert_eq!(d.since, 0, "first exchange starts from scratch");
        assert_eq!(d.entries.len(), 5, "cold delta carries the full table");
        let reply = stream_msgs(&feed_stream(&mut b, addr(1), req[0].1.clone(), now));
        assert_eq!(reply.len(), 1);
        assert!(
            matches!(&reply[0].1, Message::PushPullDelta(r) if r.reply && r.since > 0),
            "reply must ack the initiator's seq"
        );
        feed_stream(&mut a, addr(2), reply[0].1.clone(), now);
        assert_eq!(table_of(&a), table_of(&b), "one exchange must converge both tables");

        // Churn one member on A only.
        add_peer(&mut a, "p9", 99, now + Duration::from_secs(1));

        // Round 2: only the churned entry travels.
        let t2 = now + Duration::from_secs(2);
        a.handle_input(Input::Sync { with: "remote".into() }, t2).unwrap();
        let req2 = stream_msgs(&drain(&mut a));
        let Message::PushPullDelta(d2) = &req2[0].1 else { panic!() };
        assert!(d2.since > 0, "watermark must be warm now");
        assert_eq!(d2.entries.len(), 1, "delta must carry only the churn");
        assert_eq!(d2.entries[0].name.as_str(), "p9");
        // Drop B's reply: A must not advance its ack watermark…
        let reply2 = stream_msgs(&feed_stream(&mut b, addr(1), req2[0].1.clone(), t2));
        assert_eq!(reply2.len(), 1);
        assert_eq!(table_of(&a), table_of(&b), "request half alone already syncs A→B");

        // …so round 3 retransmits the unacked churn entry.
        let t3 = t2 + Duration::from_secs(1);
        a.handle_input(Input::Sync { with: "remote".into() }, t3).unwrap();
        let req3 = stream_msgs(&drain(&mut a));
        let Message::PushPullDelta(d3) = &req3[0].1 else { panic!() };
        assert_eq!(
            d3.entries.len(),
            1,
            "an unacked entry must be resent after a dropped reply"
        );
        assert_eq!(d3.entries[0].name.as_str(), "p9");

        // Deliver the round-3 pair fully: the ack finally lands and
        // round 4 is empty.
        let reply3 = stream_msgs(&feed_stream(&mut b, addr(1), req3[0].1.clone(), t3));
        feed_stream(&mut a, addr(2), reply3[0].1.clone(), t3);
        let t4 = t3 + Duration::from_secs(1);
        a.handle_input(Input::Sync { with: "remote".into() }, t4).unwrap();
        let req4 = stream_msgs(&drain(&mut a));
        let Message::PushPullDelta(d4) = &req4[0].1 else { panic!() };
        assert_eq!(d4.entries.len(), 0, "steady state sends an empty delta");
        assert_eq!(table_of(&a), table_of(&b));
    }

    /// A peer that restarted (new epoch) answers a stale-watermark delta
    /// with a full exchange, and both sides converge from scratch.
    #[test]
    fn delta_to_restarted_peer_falls_back_to_full_sync() {
        let now = Time::from_secs(1);
        let mut a = node(Config::lan());
        let mut b = SwimNode::new("remote".into(), addr(2), Config::lan(), 2);
        b.start(Time::ZERO);
        add_real_peer(&mut a, "remote", 2, now);
        add_peer(&mut a, "p1", 11, now);

        // Warm the pairing.
        a.handle_input(Input::Sync { with: "remote".into() }, now).unwrap();
        let req = stream_msgs(&drain(&mut a));
        let reply = stream_msgs(&feed_stream(&mut b, addr(1), req[0].1.clone(), now));
        feed_stream(&mut a, addr(2), reply[0].1.clone(), now);

        // "Restart" B: same name and address, new seed → new epoch.
        let mut b2 = SwimNode::new("remote".into(), addr(2), Config::lan(), 777);
        b2.start(Time::ZERO);

        // A's next delta carries a watermark the new instance can't
        // serve: B2 answers with a full push-pull request, and A's full
        // reply completes the bidirectional resync.
        let t2 = now + Duration::from_secs(1);
        a.handle_input(Input::Sync { with: "remote".into() }, t2).unwrap();
        let req2 = stream_msgs(&drain(&mut a));
        assert!(
            matches!(&req2[0].1, Message::PushPullDelta(d) if d.since > 0),
            "warm watermark expected"
        );
        let fallback = stream_msgs(&feed_stream(&mut b2, addr(1), req2[0].1.clone(), t2));
        assert!(
            matches!(&fallback[0].1, Message::PushPull(pp) if !pp.reply),
            "unservable watermark must trigger a full exchange, got {:?}",
            fallback[0].1
        );
        let full_reply = stream_msgs(&feed_stream(&mut a, addr(2), fallback[0].1.clone(), t2));
        assert!(matches!(&full_reply[0].1, Message::PushPull(pp) if pp.reply));
        feed_stream(&mut b2, addr(1), full_reply[0].1.clone(), t2);
        assert_eq!(table_of(&a), table_of(&b2), "full fallback must converge");
    }

    /// Even when epoch detection cannot notice a restart (the peer
    /// came back with the same seed and thus the same epoch), an
    /// explicit `since = 0` request overrides the stored ack and is
    /// served from scratch — the stale watermark may cost re-sending,
    /// never missed entries.
    #[test]
    fn since_zero_overrides_stale_ack_after_same_epoch_restart() {
        let now = Time::from_secs(1);
        let mut a = node(Config::lan());
        let mut b = SwimNode::new("remote".into(), addr(2), Config::lan(), 2);
        b.start(Time::ZERO);
        add_real_peer(&mut a, "remote", 2, now);
        add_peer(&mut a, "p1", 11, now);

        // Warm exchange: A ends up holding local_acked > 0 for B.
        a.handle_input(Input::Sync { with: "remote".into() }, now).unwrap();
        let req = stream_msgs(&drain(&mut a));
        let reply = stream_msgs(&feed_stream(&mut b, addr(1), req[0].1.clone(), now));
        feed_stream(&mut a, addr(2), reply[0].1.clone(), now);

        // "Restart" B with the SAME seed: identical epoch, empty table.
        let mut b2 = SwimNode::new("remote".into(), addr(2), Config::lan(), 2);
        b2.start(Time::ZERO);
        add_real_peer(&mut b2, "local", 1, now);

        // B2's cold request (since = 0) must be answered with A's full
        // table, not just the entries after A's stale ack for old-B.
        let t2 = now + Duration::from_secs(1);
        b2.handle_input(Input::Sync { with: "local".into() }, t2).unwrap();
        let req2 = stream_msgs(&drain(&mut b2));
        let Message::PushPullDelta(d) = &req2[0].1 else { panic!() };
        assert_eq!(d.since, 0);
        let reply2 = stream_msgs(&feed_stream(&mut a, addr(2), req2[0].1.clone(), t2));
        let Message::PushPullDelta(r) = &reply2[0].1 else {
            panic!("expected delta reply, got {:?}", reply2[0].1)
        };
        assert_eq!(
            r.entries.len(),
            a.members().count(),
            "a since = 0 request must be served from scratch"
        );
        feed_stream(&mut b2, addr(1), reply2[0].1.clone(), t2);
        assert_eq!(table_of(&a), table_of(&b2));
    }

    /// With delta sync disabled the periodic exchange is the classic
    /// full push-pull.
    #[test]
    fn sync_with_delta_disabled_sends_full_push_pull() {
        let mut cfg = Config::lan();
        cfg.delta_sync = false;
        let mut n = node(cfg);
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        n.handle_input(Input::Sync { with: "p".into() }, Time::from_secs(2))
            .unwrap();
        let out = stream_msgs(&drain(&mut n));
        assert!(matches!(&out[0].1, Message::PushPull(pp) if !pp.reply && !pp.join));
    }

    #[test]
    fn poll_output_reclaims_scratch_after_full_drain() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        // Produce some packets (gossip ticks), drain fully, repeat: the
        // scratch arena must not grow without bound.
        let mut high_water = 0;
        for s in 2..30u64 {
            run_until(&mut n, Time::from_secs(s));
            assert!(!n.has_pending_output());
            high_water = high_water.max(n.scratch.capacity());
        }
        assert_eq!(n.scratch.capacity(), high_water);
        assert!(
            high_water <= 16 * n.config().packet_budget,
            "scratch arena grew unexpectedly: {high_water}"
        );
    }
}
