//! The SWIM + Lifeguard protocol state machine.
//!
//! [`SwimNode`] is **sans-io**: it never reads a clock, opens a socket or
//! sleeps. A runtime (the deterministic simulator in `lifeguard-sim`, or
//! the real UDP/TCP agent in `lifeguard-net`) drives it through three
//! entry points and executes the [`Output`]s it returns:
//!
//! * [`SwimNode::tick`] — called whenever the wall clock reaches
//!   [`SwimNode::next_wake`]; fires due internal timers (probe rounds,
//!   gossip ticks, suspicion expiries…).
//! * [`SwimNode::handle_datagram`] — a UDP packet arrived.
//! * [`SwimNode::handle_stream`] — a message arrived on the reliable
//!   (TCP-like) transport: push-pull sync or fallback probes.
//!
//! All randomness comes from an internal seeded RNG, so a cluster of
//! `SwimNode`s driven by a deterministic runtime is fully reproducible.

use std::collections::HashMap;

use bytes::Bytes;
use lifeguard_proto::compound::CompoundBuilder;
use lifeguard_proto::{
    compound, Ack, Alive, Dead, DecodeError, IndirectPing, Incarnation, MemberState, Message,
    Nack, NodeAddr, NodeName, Ping, PushPull, SeqNo, Suspect,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::awareness::Awareness;
use crate::broadcast::BroadcastQueue;
use crate::config::Config;
use crate::event::Event;
use crate::member::Member;
use crate::membership::{Membership, SamplePool};
use crate::probe_list::ProbeList;
use crate::suspicion::Suspicion;
use crate::time::Time;
use crate::timer_wheel::{TimerKey, TimerWheel};

/// An effect the runtime must carry out on behalf of the node.
#[derive(Clone, Debug)]
pub enum Output {
    /// Send a datagram (already compound-encoded, within the MTU budget
    /// except for oversized single messages).
    Packet {
        /// Destination address.
        to: NodeAddr,
        /// Encoded packet bytes.
        payload: Bytes,
    },
    /// Send a message over the reliable stream transport (push-pull sync,
    /// fallback probe).
    Stream {
        /// Destination address.
        to: NodeAddr,
        /// The message to deliver reliably.
        msg: Message,
    },
    /// A membership conclusion for the application / metrics.
    Event(Event),
}

/// Internal timer kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Timer {
    ProbeRound,
    ProbeTimeout { seq: SeqNo },
    ProbeRoundEnd { seq: SeqNo },
    GossipTick,
    PushPullTick,
    Reconnect,
    SuspicionCheck { node: NodeName },
    RelayNack { seq: SeqNo },
    RelayExpire { seq: SeqNo },
    Reap,
}

/// A timer that came due while message I/O was blocked and is re-fired
/// through the wheel at unblock, keyed by its original deadline.
#[derive(Clone, Debug)]
struct DeferredTimer {
    at: Time,
    timer: Timer,
}

/// State of the probe the local node currently has in flight.
#[derive(Clone, Debug)]
struct ProbeState {
    seq: SeqNo,
    target: NodeName,
    target_addr: NodeAddr,
    expected_nacks: u32,
    nacks_received: u32,
    round_end: Time,
    /// Handle of the armed `ProbeTimeout`; cancelled when an ack
    /// completes the round, so the timer cannot fire stale.
    timeout_timer: TimerKey,
    /// Handle of the armed `ProbeRoundEnd`; cancelled on a timely ack.
    round_end_timer: TimerKey,
}

/// Counters of protocol activity at one node (observability; used by
/// tests, examples and operators).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NodeStats {
    /// Direct probes initiated.
    pub probes_sent: u64,
    /// Probe rounds that ended without an ack.
    pub probes_failed: u64,
    /// `ping-req` messages sent to intermediaries.
    pub indirect_probes_sent: u64,
    /// Suspicions this node started from its own failed probes or
    /// adopted from gossip.
    pub suspicions_raised: u64,
    /// Times this node refuted a suspicion/death claim about itself.
    pub refutations: u64,
    /// Failures this node declared from its own suspicion timeouts.
    pub failures_declared: u64,
}

/// State kept while relaying an indirect probe for another node.
#[derive(Clone, Debug)]
struct RelayState {
    origin_seq: SeqNo,
    origin_addr: NodeAddr,
    acked: bool,
    /// Armed `RelayNack` handle (only when the origin asked for nacks);
    /// cancelled the moment the target's ack arrives.
    nack_timer: Option<TimerKey>,
}

/// A suspicion the local node currently holds, paired with the wheel
/// handle of its single `SuspicionCheck` timer. Lifeguard's timeout
/// shrinking reschedules that timer in place, so there is never a stale
/// deadline in flight.
#[derive(Clone, Debug)]
struct ActiveSuspicion {
    sus: Suspicion,
    timer: TimerKey,
}

/// A single group member's protocol instance.
///
/// # Example
///
/// ```
/// use lifeguard_core::config::Config;
/// use lifeguard_core::node::SwimNode;
/// use lifeguard_core::time::Time;
/// use lifeguard_proto::NodeAddr;
///
/// let mut node = SwimNode::new(
///     "node-0".into(),
///     NodeAddr::new([10, 0, 0, 1], 7946),
///     Config::lan().lifeguard(),
///     42,
/// );
/// let outputs = node.start(Time::ZERO);
/// assert!(outputs.is_empty()); // nothing to send until peers exist
/// assert!(node.next_wake().is_some()); // probe/gossip timers armed
/// ```
#[derive(Debug)]
pub struct SwimNode {
    config: Config,
    name: NodeName,
    addr: NodeAddr,
    incarnation: Incarnation,
    meta: Bytes,
    membership: Membership,
    probe_list: ProbeList,
    broadcasts: BroadcastQueue,
    awareness: Awareness,
    suspicions: HashMap<NodeName, ActiveSuspicion>,
    probe: Option<ProbeState>,
    relays: HashMap<SeqNo, RelayState>,
    seq: SeqNo,
    timers: TimerWheel<Timer>,
    rng: StdRng,
    started: bool,
    left: bool,
    /// Whether sends/receives are currently blocked (anomaly injection).
    io_blocked: bool,
    /// Loop timers that already executed their one blocked iteration.
    stuck_gossip: bool,
    stuck_push_pull: bool,
    stuck_reconnect: bool,
    /// Timers that came due while blocked and must re-fire on unblock,
    /// in original due order.
    deferred_timers: Vec<DeferredTimer>,
    stats: NodeStats,
}

impl SwimNode {
    /// Creates a node. Call [`SwimNode::start`] before driving it.
    ///
    /// `seed` fixes the node's private RNG stream (probe order, gossip
    /// fan-out choices); two nodes with the same seed and inputs behave
    /// identically.
    pub fn new(name: NodeName, addr: NodeAddr, config: Config, seed: u64) -> Self {
        let awareness = Awareness::new(config.effective_awareness_max());
        SwimNode {
            config,
            name,
            addr,
            incarnation: Incarnation::ZERO,
            meta: Bytes::new(),
            membership: Membership::new(),
            probe_list: ProbeList::new(),
            broadcasts: BroadcastQueue::new(),
            awareness,
            suspicions: HashMap::new(),
            probe: None,
            relays: HashMap::new(),
            seq: SeqNo(0),
            timers: TimerWheel::new(),
            rng: StdRng::seed_from_u64(seed),
            started: false,
            left: false,
            io_blocked: false,
            stuck_gossip: false,
            stuck_push_pull: false,
            stuck_reconnect: false,
            deferred_timers: Vec::new(),
            stats: NodeStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The local node's name.
    pub fn name(&self) -> &NodeName {
        &self.name
    }

    /// The local node's advertised address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The local incarnation number.
    pub fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    /// The current Local Health Multiplier score (0 = healthy).
    pub fn local_health(&self) -> u32 {
        self.awareness.score()
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// All known members (including self and retained dead members).
    pub fn members(&self) -> impl Iterator<Item = &Member> {
        self.membership.iter()
    }

    /// Looks up a member record by name.
    pub fn member(&self, name: &NodeName) -> Option<&Member> {
        self.membership.get(name)
    }

    /// Number of members currently believed alive (including self).
    pub fn num_alive(&self) -> usize {
        self.membership.alive_count()
    }

    /// Number of live members (alive + suspect, including self).
    pub fn num_live(&self) -> usize {
        self.membership.live_count()
    }

    /// Whether the node has left the group.
    pub fn has_left(&self) -> bool {
        self.left
    }

    /// Number of gossip broadcasts waiting in the queue (introspection).
    pub fn pending_broadcasts(&self) -> usize {
        self.broadcasts.len()
    }

    /// Protocol activity counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Replaces the local node's application metadata and gossips the
    /// change (memberlist's `UpdateNode`): the incarnation is bumped so
    /// the new `alive` message supersedes older state.
    pub fn update_meta(&mut self, meta: Bytes, now: Time) {
        self.meta = meta.clone();
        self.incarnation = self.incarnation.next();
        let incarnation = self.incarnation;
        self.membership.update(&self.name, |me| {
            me.meta = meta.clone();
            me.incarnation = incarnation;
            me.set_state(MemberState::Alive, now);
        });
        self.broadcasts.enqueue(Message::Alive(Alive {
            incarnation: self.incarnation,
            node: self.name.clone(),
            addr: self.addr,
            meta,
        }));
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Boots the node: registers itself as alive and arms the periodic
    /// timers. Must be called exactly once before any other driving call.
    pub fn start(&mut self, now: Time) -> Vec<Output> {
        assert!(!self.started, "start() called twice");
        self.started = true;
        let mut me = Member::new(self.name.clone(), self.addr, self.incarnation, now);
        me.meta = self.meta.clone();
        self.membership.upsert(me);

        // Randomize initial phases so a cluster booted in lock-step does
        // not probe in lock-step.
        let probe_phase = self.random_phase(self.config.probe_interval);
        self.schedule(now + probe_phase, Timer::ProbeRound);
        let gossip_phase = self.random_phase(self.config.gossip_interval);
        self.schedule(now + gossip_phase, Timer::GossipTick);
        if let Some(pp) = self.config.push_pull_interval {
            let pp_phase = self.random_phase(pp);
            self.schedule(now + pp + pp_phase, Timer::PushPullTick);
        }
        if let Some(rc) = self.config.reconnect_interval {
            let rc_phase = self.random_phase(rc);
            self.schedule(now + rc + rc_phase, Timer::Reconnect);
        }
        self.schedule(now + self.config.dead_reclaim, Timer::Reap);
        Vec::new()
    }

    /// Registers peers directly as alive members, bypassing the join
    /// protocol — the simulator's full-mesh bootstrap for large-cluster
    /// benchmarks. No gossip is enqueued and no events are emitted; the
    /// probe rotation absorbs all names with one bulk shuffle.
    pub fn bootstrap_peers(
        &mut self,
        peers: impl IntoIterator<Item = (NodeName, NodeAddr)>,
        now: Time,
    ) {
        debug_assert!(self.started, "bootstrap_peers() before start()");
        let mut fresh = Vec::new();
        for (name, addr) in peers {
            if name == self.name || self.membership.get(&name).is_some() {
                continue;
            }
            self.membership
                .upsert(Member::new(name.clone(), addr, Incarnation::ZERO, now));
            fresh.push(name);
        }
        self.probe_list.extend_shuffled(fresh, &mut self.rng);
    }

    /// Initiates a join: sends a push-pull sync (carrying our own record)
    /// to each seed address over the stream transport.
    pub fn join(&mut self, seeds: &[NodeAddr], _now: Time) -> Vec<Output> {
        debug_assert!(self.started, "join() before start()");
        let states = vec![self
            .membership
            .get(&self.name)
            .expect("self is registered")
            .to_push_state()];
        seeds
            .iter()
            .filter(|a| **a != self.addr)
            .map(|&to| Output::Stream {
                to,
                msg: Message::PushPull(PushPull {
                    join: true,
                    reply: false,
                    states: states.clone(),
                }),
            })
            .collect()
    }

    /// Gracefully leaves the group: broadcasts a self-signed `dead`
    /// message (memberlist's leave semantics) and flushes it to a few
    /// peers immediately.
    pub fn leave(&mut self, now: Time) -> Vec<Output> {
        if self.left {
            return Vec::new();
        }
        self.left = true;
        let dead = Message::Dead(Dead {
            incarnation: self.incarnation,
            node: self.name.clone(),
            from: self.name.clone(),
        });
        self.broadcasts.enqueue(dead);
        self.membership.set_state(&self.name, MemberState::Left, now);
        let mut out = Vec::new();
        self.gossip_once(now, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Driving
    // ------------------------------------------------------------------

    /// The earliest instant at which [`SwimNode::tick`] has work to do.
    pub fn next_wake(&self) -> Option<Time> {
        self.timers.next_deadline()
    }

    /// Marks the node's message I/O as blocked or unblocked (anomaly
    /// injection, paper §V-D: members "block immediately before sending
    /// or after receiving any protocol message").
    ///
    /// While blocked, the node's logic and wall-clock deadlines keep
    /// running, but each protocol loop (probe, gossip, push-pull,
    /// reconnect) executes at most one more iteration — the one stuck at
    /// its blocked send — and the in-flight probe's deadline evaluation
    /// is postponed. The runtime must also withhold the node's sends and
    /// inbound messages for the duration of the block.
    ///
    /// Unblocking re-injects the postponed deadline timers into the
    /// wheel at their *original* deadlines and drains everything due, so
    /// the catch-up interleaves them with timers armed while blocked in
    /// global (deadline, insertion) order — the stuck probe fails and
    /// raises a suspicion exactly like a real agent resuming after an
    /// anomaly, and nothing fires out of order relative to it. Returns
    /// the outputs of that catch-up processing.
    pub fn set_io_blocked(&mut self, blocked: bool, now: Time) -> Vec<Output> {
        let mut out = Vec::new();
        if blocked == self.io_blocked {
            return out;
        }
        self.io_blocked = blocked;
        if !blocked {
            self.stuck_gossip = false;
            self.stuck_push_pull = false;
            self.stuck_reconnect = false;
            let mut deferred = std::mem::take(&mut self.deferred_timers);
            // Stable by original deadline: exact ties keep deferral
            // (i.e. original firing) order — the deterministic tiebreak.
            deferred.sort_by_key(|d| d.at);
            for DeferredTimer { at, timer } in deferred {
                // Re-point the owning state at the re-injected timer, so
                // cancellation (a handler consuming the probe, a relay
                // expiring) still truly unschedules it — the no-stale-fire
                // invariant must hold through the refire path too.
                let key = self.timers.schedule(at, timer.clone());
                match timer {
                    Timer::ProbeTimeout { seq } => {
                        if let Some(p) = &mut self.probe {
                            if p.seq == seq {
                                p.timeout_timer = key;
                            }
                        }
                    }
                    Timer::ProbeRoundEnd { seq } => {
                        if let Some(p) = &mut self.probe {
                            if p.seq == seq {
                                p.round_end_timer = key;
                            }
                        }
                    }
                    Timer::RelayNack { seq } => {
                        if let Some(relay) = self.relays.get_mut(&seq) {
                            relay.nack_timer = Some(key);
                        }
                    }
                    _ => {}
                }
            }
            while let Some((at, timer)) = self.timers.pop_due(now) {
                self.fire(at, timer, now, &mut out);
            }
        }
        out
    }

    /// Whether message I/O is currently blocked (anomaly injection).
    pub fn is_io_blocked(&self) -> bool {
        self.io_blocked
    }

    /// Fires all timers due at or before `now`.
    pub fn tick(&mut self, now: Time) -> Vec<Output> {
        let mut out = Vec::new();
        while let Some((at, timer)) = self.timers.pop_due(now) {
            self.fire(at, timer, now, &mut out);
        }
        out
    }

    /// Decodes and processes a received datagram.
    ///
    /// # Errors
    ///
    /// Returns the [`DecodeError`] if the packet is malformed; the node's
    /// state is unchanged in that case (a real deployment just drops such
    /// packets).
    pub fn handle_datagram(
        &mut self,
        from: NodeAddr,
        payload: &[u8],
        now: Time,
    ) -> Result<Vec<Output>, DecodeError> {
        let msgs = compound::decode_packet(payload)?;
        let mut out = Vec::new();
        for msg in msgs {
            self.handle_message(from, msg, now, &mut out);
        }
        Ok(out)
    }

    /// [`SwimNode::handle_datagram`] for runtimes that hold the payload
    /// as [`Bytes`]: compound parts and blob fields are zero-copy slices
    /// of the datagram instead of fresh allocations.
    ///
    /// # Errors
    ///
    /// Same as [`SwimNode::handle_datagram`].
    pub fn handle_datagram_bytes(
        &mut self,
        from: NodeAddr,
        payload: &Bytes,
        now: Time,
    ) -> Result<Vec<Output>, DecodeError> {
        let msgs = compound::decode_packet_shared(payload)?;
        let mut out = Vec::new();
        for msg in msgs {
            self.handle_message(from, msg, now, &mut out);
        }
        Ok(out)
    }

    /// Processes one already-decoded datagram message.
    pub fn handle_message_in(&mut self, from: NodeAddr, msg: Message, now: Time) -> Vec<Output> {
        let mut out = Vec::new();
        self.handle_message(from, msg, now, &mut out);
        out
    }

    /// Processes a message from the reliable stream transport.
    pub fn handle_stream(&mut self, from: NodeAddr, msg: Message, now: Time) -> Vec<Output> {
        let mut out = Vec::new();
        match msg {
            // Fallback direct probe over TCP: reply in kind.
            Message::Ping(p) if p.target == self.name => {
                out.push(Output::Stream {
                    to: from,
                    msg: Message::Ack(Ack { seq: p.seq }),
                });
            }
            Message::Ack(a) => self.handle_ack(a, now, &mut out),
            Message::PushPull(pp) => {
                let reply = !pp.reply;
                self.merge_remote_state(&pp.states, now, &mut out);
                if reply {
                    let states = self.membership.iter().map(Member::to_push_state).collect();
                    out.push(Output::Stream {
                        to: from,
                        msg: Message::PushPull(PushPull {
                            join: false,
                            reply: true,
                            states,
                        }),
                    });
                }
            }
            // Gossip over the stream transport is not part of the
            // protocol; ignore anything else.
            _ => {}
        }
        out
    }

    // ------------------------------------------------------------------
    // Message handling (datagram)
    // ------------------------------------------------------------------

    fn handle_message(&mut self, from: NodeAddr, msg: Message, now: Time, out: &mut Vec<Output>) {
        if !self.started {
            return;
        }
        match msg {
            Message::Ping(p) => self.handle_ping(from, p, now, out),
            Message::IndirectPing(p) => self.handle_indirect_ping(p, now, out),
            Message::Ack(a) => self.handle_ack(a, now, out),
            Message::Nack(n) => self.handle_nack(n),
            Message::Suspect(s) => self.handle_suspect(s, now, out),
            Message::Alive(a) => self.handle_alive(a, now, out),
            Message::Dead(d) => self.handle_dead(d, now, out),
            // Push-pull is stream-only; drop it if it arrives by datagram.
            Message::PushPull(_) => {}
        }
    }

    fn handle_ping(&mut self, _from: NodeAddr, ping: Ping, now: Time, out: &mut Vec<Output>) {
        // memberlist drops pings addressed to a different node name: they
        // indicate a stale address mapping.
        if ping.target != self.name {
            return;
        }
        let ack = Message::Ack(Ack { seq: ping.seq });
        self.send_packet(ping.source_addr, vec![ack], None, now, out);
    }

    fn handle_indirect_ping(&mut self, req: IndirectPing, now: Time, out: &mut Vec<Output>) {
        let local_seq = self.next_seq();
        let ping = Message::Ping(Ping {
            seq: local_seq,
            target: req.target.clone(),
            source: self.name.clone(),
            source_addr: self.addr,
        });
        self.send_packet(req.target_addr, vec![ping], Some(&req.target), now, out);
        let nack_timer = if req.nack {
            let nack_at = now + crate::time::scale_duration(
                self.config.probe_timeout,
                self.config.nack_fraction,
            );
            Some(self.schedule(nack_at, Timer::RelayNack { seq: local_seq }))
        } else {
            None
        };
        self.schedule(
            now + self.config.probe_interval,
            Timer::RelayExpire { seq: local_seq },
        );
        self.relays.insert(
            local_seq,
            RelayState {
                origin_seq: req.seq,
                origin_addr: req.source_addr,
                acked: false,
                nack_timer,
            },
        );
    }

    fn handle_ack(&mut self, ack: Ack, now: Time, out: &mut Vec<Output>) {
        // Our own outstanding probe? A timely ack completes the round
        // immediately (memberlist's probeNode returns on the first ack);
        // a stale ack is ignored and the round fails at its end.
        if let Some(p) = &self.probe {
            if p.seq == ack.seq {
                if now <= p.round_end {
                    let p = self.probe.take().expect("probe present");
                    // True cancellation: the round's remaining deadlines
                    // are unscheduled, not left to fire stale.
                    self.timers.cancel(p.timeout_timer);
                    self.timers.cancel(p.round_end_timer);
                    // Successful probe: LHM −1 (paper §IV-A).
                    self.awareness
                        .apply_delta(self.config.awareness_deltas.probe_success);
                }
                return;
            }
        }
        // An indirect probe we are relaying: forward to the origin. The
        // ack is forwarded even after a nack was sent (paper footnote 5).
        if let Some(relay) = self.relays.get_mut(&ack.seq) {
            if !relay.acked {
                relay.acked = true;
                let nack_timer = relay.nack_timer.take();
                let fwd = Message::Ack(Ack {
                    seq: relay.origin_seq,
                });
                let to = relay.origin_addr;
                if let Some(key) = nack_timer {
                    self.timers.cancel(key);
                }
                self.send_packet(to, vec![fwd], None, now, out);
            }
        }
    }

    fn handle_nack(&mut self, nack: Nack) {
        if let Some(p) = &mut self.probe {
            if p.seq == nack.seq {
                p.nacks_received += 1;
            }
        }
    }

    fn handle_suspect(&mut self, s: Suspect, now: Time, out: &mut Vec<Output>) {
        if s.node == self.name {
            self.refute(s.incarnation, now, out);
            return;
        }
        self.suspect_node(s, now, out);
    }

    /// Processes a suspicion about a peer, whether it arrived by gossip
    /// or was raised by our own failed probe (memberlist's
    /// `suspectNode`). A suspicion about an already-suspected member
    /// counts as an independent confirmation.
    fn suspect_node(&mut self, s: Suspect, now: Time, out: &mut Vec<Output>) {
        let Some(member) = self.membership.get(&s.node) else {
            return;
        };
        if s.incarnation < member.incarnation {
            return; // stale
        }
        match member.state {
            MemberState::Dead | MemberState::Left => {}
            MemberState::Suspect => {
                let Some(active) = self.suspicions.get_mut(&s.node) else {
                    return;
                };
                active.sus.observe_incarnation(s.incarnation);
                if active.sus.confirm(s.from.clone()) {
                    // LHA-Suspicion: re-gossip the first K independent
                    // suspicions (paper §IV-B). The enqueue resets the
                    // transmit budget, giving (K+1)·λ·log n max copies.
                    self.broadcasts.enqueue(Message::Suspect(s.clone()));
                }
                // Timeout shrinking moves the one suspicion timer in
                // place; the superseded deadline can never fire.
                let deadline = active.sus.deadline();
                match self.timers.reschedule(active.timer, deadline) {
                    Some(key) => active.timer = key,
                    None => debug_assert!(false, "active suspicion lost its timer"),
                }
                self.membership.update(&s.node, |m| {
                    if s.incarnation > m.incarnation {
                        m.incarnation = s.incarnation;
                    }
                });
            }
            MemberState::Alive => {
                self.start_suspicion(s.node.clone(), s.incarnation, s.from.clone(), now, out);
            }
        }
    }

    fn handle_alive(&mut self, a: Alive, now: Time, out: &mut Vec<Output>) {
        if a.node == self.name {
            // Someone is echoing our own alive message, or a name
            // conflict. Nothing to do: our own incarnation is
            // authoritative.
            return;
        }
        match self.membership.get(&a.node) {
            None => {
                // Membership records and queued rebroadcasts are
                // long-lived; with zero-copy decode `a.meta` may alias a
                // whole received datagram, so store and re-gossip a
                // compact copy rather than pinning the packet buffer.
                // (Copied only on accepted messages — stale duplicates
                // return above/below without allocating.)
                let meta = Bytes::copy_from_slice(&a.meta);
                let mut m = Member::new(a.node.clone(), a.addr, a.incarnation, now);
                m.meta = meta.clone();
                self.membership.upsert(m);
                self.probe_list.insert(a.node.clone(), &mut self.rng);
                self.broadcasts.enqueue(Message::Alive(Alive {
                    incarnation: a.incarnation,
                    node: a.node.clone(),
                    addr: a.addr,
                    meta,
                }));
                out.push(Output::Event(Event::MemberJoined { name: a.node }));
            }
            Some(member) => {
                // An alive message only overrides suspect/dead at a
                // strictly higher incarnation (SWIM §4.2).
                if a.incarnation <= member.incarnation {
                    return;
                }
                let old_state = member.state;
                let meta = Bytes::copy_from_slice(&a.meta);
                let updated = self.membership.update(&a.node, |m| {
                    m.incarnation = a.incarnation;
                    m.addr = a.addr;
                    m.meta = meta.clone();
                    m.set_state(MemberState::Alive, now);
                });
                debug_assert!(updated.is_some(), "member present");
                if let Some(active) = self.suspicions.remove(&a.node) {
                    // Refuted: the pending expiry is truly cancelled.
                    self.timers.cancel(active.timer);
                }
                self.broadcasts.enqueue(Message::Alive(Alive {
                    incarnation: a.incarnation,
                    node: a.node.clone(),
                    addr: a.addr,
                    meta,
                }));
                match old_state {
                    MemberState::Suspect | MemberState::Dead => {
                        out.push(Output::Event(Event::MemberRecovered { name: a.node }));
                    }
                    MemberState::Left => {
                        out.push(Output::Event(Event::MemberJoined { name: a.node }));
                    }
                    MemberState::Alive => {}
                }
            }
        }
    }

    fn handle_dead(&mut self, d: Dead, now: Time, out: &mut Vec<Output>) {
        if d.node == self.name {
            if !self.left {
                self.refute(d.incarnation, now, out);
            }
            return;
        }
        let Some(member) = self.membership.get(&d.node) else {
            return;
        };
        if d.incarnation < member.incarnation {
            return;
        }
        if matches!(member.state, MemberState::Dead | MemberState::Left) {
            return;
        }
        let is_leave = d.from == d.node;
        let updated = self.membership.update(&d.node, |m| {
            m.incarnation = d.incarnation;
            m.set_state(
                if is_leave {
                    MemberState::Left
                } else {
                    MemberState::Dead
                },
                now,
            );
        });
        debug_assert!(updated.is_some(), "member present");
        if let Some(active) = self.suspicions.remove(&d.node) {
            self.timers.cancel(active.timer);
        }
        self.broadcasts.enqueue(Message::Dead(d.clone()));
        if is_leave {
            out.push(Output::Event(Event::MemberLeft { name: d.node }));
        } else {
            out.push(Output::Event(Event::MemberFailed {
                name: d.node,
                incarnation: d.incarnation,
                from: d.from,
            }));
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Executes one fired timer. `at` is the timer's original deadline
    /// (used to defer it faithfully while I/O is blocked); `now` is the
    /// current wall-clock instant the handlers observe.
    fn fire(&mut self, at: Time, timer: Timer, now: Time, out: &mut Vec<Output>) {
        if self.io_blocked {
            match &timer {
                // The dedicated gossip / push-pull / reconnect loops are
                // single threads in memberlist: the iteration that blocks
                // mid-send executes (the runtime captures its sends), the
                // ticks that follow are dropped like missed ticker fires.
                Timer::GossipTick => {
                    self.schedule(now + self.config.gossip_interval, Timer::GossipTick);
                    if !self.stuck_gossip && !self.left {
                        self.stuck_gossip = true;
                        self.gossip_once(now, out);
                    }
                    return;
                }
                Timer::PushPullTick => {
                    if let Some(pp) = self.config.push_pull_interval {
                        self.schedule(now + pp, Timer::PushPullTick);
                    }
                    if !self.stuck_push_pull && !self.left {
                        self.stuck_push_pull = true;
                        self.push_pull_once(out);
                    }
                    return;
                }
                Timer::Reconnect => {
                    if let Some(rc) = self.config.reconnect_interval {
                        self.schedule(now + rc, Timer::Reconnect);
                    }
                    if !self.stuck_reconnect && !self.left {
                        self.stuck_reconnect = true;
                        self.reconnect_once(out);
                    }
                    return;
                }
                // The probe in flight when the block hit is evaluated
                // when the loop unblocks: its deadlines were computed
                // before the block, so the late evaluation fails the
                // probe exactly as a real blocked agent does.
                Timer::ProbeTimeout { .. }
                | Timer::ProbeRoundEnd { .. }
                | Timer::RelayNack { .. }
                | Timer::RelayExpire { .. } => {
                    self.deferred_timers.push(DeferredTimer { at, timer });
                    return;
                }
                // ProbeRound falls through: with a probe already in
                // flight it is a no-op (the loop is busy), which models
                // the dropped ticker fires. Suspicion expiry and reaping
                // are pure local state + logging and run on time.
                Timer::ProbeRound | Timer::SuspicionCheck { .. } | Timer::Reap => {}
            }
        }
        match timer {
            Timer::ProbeRound => self.probe_round(now, out),
            Timer::ProbeTimeout { seq } => self.probe_timeout(seq, now, out),
            Timer::ProbeRoundEnd { seq } => self.probe_round_end(seq, now, out),
            Timer::GossipTick => {
                self.schedule(now + self.config.gossip_interval, Timer::GossipTick);
                if !self.left {
                    self.gossip_once(now, out);
                }
            }
            Timer::PushPullTick => {
                if let Some(pp) = self.config.push_pull_interval {
                    self.schedule(now + pp, Timer::PushPullTick);
                }
                if !self.left {
                    self.push_pull_once(out);
                }
            }
            Timer::Reconnect => {
                if let Some(rc) = self.config.reconnect_interval {
                    self.schedule(now + rc, Timer::Reconnect);
                }
                if !self.left {
                    self.reconnect_once(out);
                }
            }
            Timer::SuspicionCheck { node } => self.suspicion_check(node, now, out),
            Timer::RelayNack { seq } => {
                // An ack (or the relay's expiry) cancels this timer, so a
                // fire always means the target is still silent — no
                // fire-time staleness check is needed.
                let relay = self.relays.get_mut(&seq);
                debug_assert!(relay.is_some(), "stale relay-nack timer reached its handler");
                if let Some(relay) = relay {
                    debug_assert!(!relay.acked, "nack timer outlived the target's ack");
                    relay.nack_timer = None;
                    let msg = Message::Nack(Nack {
                        seq: relay.origin_seq,
                    });
                    let to = relay.origin_addr;
                    self.send_packet(to, vec![msg], None, now, out);
                }
            }
            Timer::RelayExpire { seq } => {
                let relay = self.relays.remove(&seq);
                debug_assert!(relay.is_some(), "stale relay-expire timer reached its handler");
                if let Some(relay) = relay {
                    if let Some(key) = relay.nack_timer {
                        // Pathological configs can place the nack after
                        // the expiry; drop it with the relay state.
                        self.timers.cancel(key);
                    }
                }
            }
            Timer::Reap => {
                self.schedule(now + self.config.dead_reclaim, Timer::Reap);
                let cutoff = Time::ZERO + now.saturating_since(Time::ZERO + self.config.dead_reclaim);
                // O(retained dead): the reapable iterator walks the gone
                // pool only, never the whole table.
                let names: Vec<NodeName> = self
                    .membership
                    .reapable(cutoff)
                    .filter(|m| m.name != self.name)
                    .map(|m| m.name.clone())
                    .collect();
                for name in &names {
                    self.membership.remove(name);
                }
            }
        }
    }

    /// Starts one failure-detector round (SWIM's protocol period).
    fn probe_round(&mut self, now: Time, out: &mut Vec<Output>) {
        // LHA-Probe: the period itself is scaled by LHM+1 (paper §IV-A).
        let interval = self.awareness.scale(self.config.probe_interval);
        self.schedule(now + interval, Timer::ProbeRound);
        if self.left {
            return;
        }
        if self.probe.is_some() {
            // Previous round still in flight (possible after the
            // interval shrank when the LHM recovered); let it finish.
            return;
        }
        let me = &self.name;
        let membership = &self.membership;
        let Some(target) = self.probe_list.next_target(membership, &mut self.rng, |n| {
            n != me
                && membership
                    .get(n)
                    .map(|m| m.is_live())
                    .unwrap_or(false)
        }) else {
            return;
        };
        let target_addr = self
            .membership
            .get(&target)
            .expect("eligible member exists")
            .addr;
        let seq = self.next_seq();
        let ping = Message::Ping(Ping {
            seq,
            target: target.clone(),
            source: self.name.clone(),
            source_addr: self.addr,
        });
        self.stats.probes_sent += 1;
        self.send_packet(target_addr, vec![ping], Some(&target), now, out);
        let timeout = self.awareness.scale(self.config.probe_timeout);
        let timeout_timer = self.schedule(now + timeout, Timer::ProbeTimeout { seq });
        let round_end_timer = self.schedule(now + interval, Timer::ProbeRoundEnd { seq });
        self.probe = Some(ProbeState {
            seq,
            target,
            target_addr,
            expected_nacks: 0,
            nacks_received: 0,
            round_end: now + interval,
            timeout_timer,
            round_end_timer,
        });
    }

    /// Direct probe timed out: launch indirect probes and the stream
    /// fallback.
    fn probe_timeout(&mut self, seq: SeqNo, now: Time, out: &mut Vec<Output>) {
        // Generation-keyed cancellation (a timely ack unschedules this
        // timer) makes a stale fire impossible; assert instead of guard.
        let Some(p) = &self.probe else {
            debug_assert!(false, "probe timeout fired with no probe in flight");
            return;
        };
        debug_assert_eq!(p.seq, seq, "stale probe timeout reached its handler");
        let target = p.target.clone();
        let target_addr = p.target_addr;
        let k = self.config.indirect_checks;
        let nack = self.config.nack_enabled();
        // O(k) draw from the live pool: the filter only rejects self and
        // the probe target, so expected inspections stay ~k even at 10k
        // members.
        let me = &self.name;
        let peers: Vec<NodeAddr> = self
            .membership
            .sample_pool(SamplePool::Live, k, &mut self.rng, |m| {
                m.name != *me && m.name != target
            })
            .into_iter()
            .map(|m| m.addr)
            .collect();
        let sent = peers.len() as u32;
        self.stats.indirect_probes_sent += sent as u64;
        for &peer_addr in &peers {
            let req = Message::IndirectPing(IndirectPing {
                seq,
                target: target.clone(),
                target_addr,
                nack,
                source: self.name.clone(),
                source_addr: self.addr,
            });
            self.send_packet(peer_addr, vec![req], None, now, out);
        }
        if let Some(p) = &mut self.probe {
            p.expected_nacks = if nack { sent } else { 0 };
        }
        if self.config.stream_fallback_probe {
            out.push(Output::Stream {
                to: target_addr,
                msg: Message::Ping(Ping {
                    seq,
                    target,
                    source: self.name.clone(),
                    source_addr: self.addr,
                }),
            });
        }
    }

    /// End of the protocol period: settle the probe result.
    fn probe_round_end(&mut self, seq: SeqNo, now: Time, out: &mut Vec<Output>) {
        let Some(p) = &self.probe else {
            debug_assert!(false, "probe round end fired with no probe in flight");
            return;
        };
        debug_assert_eq!(p.seq, seq, "stale probe round end reached its handler");
        let p = self.probe.take().expect("probe present");
        // Unschedule the timeout in case it has not fired yet (possible
        // only when the timeout is configured beyond the interval).
        self.timers.cancel(p.timeout_timer);
        self.stats.probes_failed += 1;
        // The probe was not acked in time (a timely ack clears the probe
        // state), so the round failed: feed the LHM. Following memberlist: when we had
        // nack-capable peers, health feedback comes from missed nacks;
        // otherwise the failed probe itself counts (+1).
        if p.expected_nacks > 0 {
            let missed = p.expected_nacks.saturating_sub(p.nacks_received);
            self.awareness
                .apply_delta(missed as i32 * self.config.awareness_deltas.missed_nack);
        } else {
            self.awareness
                .apply_delta(self.config.awareness_deltas.probe_failed);
        }
        let incarnation = self
            .membership
            .get(&p.target)
            .map(|m| m.incarnation)
            .unwrap_or(Incarnation::ZERO);
        // Routed through the same path as gossiped suspicions: if the
        // target is already suspect, our failed probe is an independent
        // confirmation (and is re-gossiped under LHA-Suspicion).
        self.suspect_node(
            Suspect {
                incarnation,
                node: p.target,
                from: self.name.clone(),
            },
            now,
            out,
        );
    }

    /// The suspicion deadline was reached: declare the failure.
    ///
    /// Deadline changes reschedule the single suspicion timer in place
    /// and refutations cancel it, so — unlike the old lazy-heap design —
    /// a fire here always means the *current* deadline truly expired;
    /// there is no re-arm path and no fire-time staleness check.
    fn suspicion_check(&mut self, node: NodeName, now: Time, out: &mut Vec<Output>) {
        let Some(active) = self.suspicions.remove(&node) else {
            debug_assert!(false, "stale suspicion timer reached its handler");
            return;
        };
        debug_assert!(
            now >= active.sus.deadline(),
            "suspicion timer fired before its deadline"
        );
        let incarnation = active.sus.incarnation();
        let declared = self
            .membership
            .update(&node, |member| {
                if member.state != MemberState::Suspect {
                    return false;
                }
                member.incarnation = incarnation;
                member.set_state(MemberState::Dead, now);
                true
            })
            .unwrap_or(false);
        if !declared {
            return;
        }
        self.stats.failures_declared += 1;
        let dead = Dead {
            incarnation,
            node: node.clone(),
            from: self.name.clone(),
        };
        self.broadcasts.enqueue(Message::Dead(dead));
        out.push(Output::Event(Event::MemberFailed {
            name: node,
            incarnation,
            from: self.name.clone(),
        }));
    }

    // ------------------------------------------------------------------
    // Suspicion / refutation
    // ------------------------------------------------------------------

    /// Marks `node` suspect and arms the (possibly dynamic) suspicion
    /// timer. `from` is the accuser (ourselves on probe failure).
    fn start_suspicion(
        &mut self,
        node: NodeName,
        incarnation: Incarnation,
        from: NodeName,
        now: Time,
        out: &mut Vec<Output>,
    ) {
        let Some(member) = self.membership.get(&node) else {
            return;
        };
        if !matches!(member.state, MemberState::Alive) {
            return;
        }
        let n = self.membership.live_count();
        let min = self.config.suspicion_min(n);
        let max = self.config.suspicion_max(n);
        let k = self.config.effective_k();
        let sus = Suspicion::new(incarnation, from.clone(), k, min, max, now);
        self.stats.suspicions_raised += 1;
        let deadline = sus.deadline();
        let timer = self.schedule(deadline, Timer::SuspicionCheck { node: node.clone() });
        self.suspicions.insert(node.clone(), ActiveSuspicion { sus, timer });
        self.membership.update(&node, |m| {
            m.incarnation = incarnation;
            m.set_state(MemberState::Suspect, now);
        });
        self.broadcasts.enqueue(Message::Suspect(Suspect {
            incarnation,
            node: node.clone(),
            from: from.clone(),
        }));
        out.push(Output::Event(Event::MemberSuspected { name: node, from }));
    }

    /// Refutes a suspicion (or death declaration) about ourselves by
    /// taking a higher incarnation and gossiping it. Feeds the LHM (+1):
    /// being suspected means we were too slow to answer probes.
    fn refute(&mut self, accused_incarnation: Incarnation, now: Time, out: &mut Vec<Output>) {
        if accused_incarnation < self.incarnation {
            // Old news: our current incarnation already supersedes it,
            // but re-gossip our aliveness to speed convergence.
        } else {
            self.incarnation = accused_incarnation.next();
        }
        let incarnation = self.incarnation;
        self.membership.update(&self.name, |me| {
            me.incarnation = incarnation;
            me.set_state(MemberState::Alive, now);
        });
        self.stats.refutations += 1;
        self.awareness
            .apply_delta(self.config.awareness_deltas.refute);
        self.broadcasts.enqueue(Message::Alive(Alive {
            incarnation: self.incarnation,
            node: self.name.clone(),
            addr: self.addr,
            meta: self.meta.clone(),
        }));
        out.push(Output::Event(Event::SelfRefuted {
            incarnation: self.incarnation,
        }));
    }

    // ------------------------------------------------------------------
    // Gossip & push-pull
    // ------------------------------------------------------------------

    /// One dedicated gossip tick: send queued broadcasts to up to
    /// `gossip_nodes` random live (or recently dead) members.
    fn gossip_once(&mut self, now: Time, out: &mut Vec<Output>) {
        if self.broadcasts.is_empty() {
            return;
        }
        let me = &self.name;
        let dead_window = self.config.gossip_to_the_dead;
        let targets: Vec<NodeAddr> = self
            .membership
            .sample(self.config.gossip_nodes, &mut self.rng, |m| {
                m.name != *me
                    && (m.is_live()
                        || (matches!(m.state, MemberState::Dead | MemberState::Left)
                            && now.saturating_since(m.state_change) <= dead_window))
            })
            .into_iter()
            .map(|m| m.addr)
            .collect();
        let limit = self.config.retransmit_limit(self.membership.live_count());
        for to in targets {
            let mut builder = CompoundBuilder::new(self.config.packet_budget);
            self.broadcasts.fill(&mut builder, limit, None);
            if let Some(payload) = builder.finish() {
                out.push(Output::Packet { to, payload });
            }
        }
    }

    /// One anti-entropy exchange with a random alive peer.
    fn push_pull_once(&mut self, out: &mut Vec<Output>) {
        let me = &self.name;
        let peer = self
            .membership
            .sample_pool(SamplePool::Live, 1, &mut self.rng, |m| {
                m.name != *me && m.state == MemberState::Alive
            })
            .first()
            .map(|m| m.addr);
        let Some(to) = peer else { return };
        let states = self.membership.iter().map(Member::to_push_state).collect();
        out.push(Output::Stream {
            to,
            msg: Message::PushPull(PushPull {
                join: false,
                reply: false,
                states,
            }),
        });
    }

    /// One Serf-style reconnect attempt: push-pull with a random member
    /// believed dead, so partitioned sub-groups re-merge automatically
    /// once connectivity is restored.
    fn reconnect_once(&mut self, out: &mut Vec<Output>) {
        let me = &self.name;
        let peer = self
            .membership
            .sample_pool(SamplePool::Gone, 1, &mut self.rng, |m| {
                m.name != *me && m.state == MemberState::Dead
            })
            .first()
            .map(|m| m.addr);
        let Some(to) = peer else { return };
        let states = self.membership.iter().map(Member::to_push_state).collect();
        out.push(Output::Stream {
            to,
            msg: Message::PushPull(PushPull {
                join: false,
                reply: false,
                states,
            }),
        });
    }

    /// Merges a remote membership table (push-pull). Remote `dead` claims
    /// are downgraded to suspicions so the victim can refute (memberlist
    /// behaviour); `left` is authoritative.
    ///
    /// Entries are pre-filtered through the borrowed state the
    /// shared-decode path produced: an entry that cannot survive the
    /// merge (stale incarnation, or a state the local record already
    /// supersedes) is dropped *before* any name/meta clone or message
    /// construction. In steady-state anti-entropy almost every entry is
    /// such a no-op, so the merge allocates only for actual changes.
    fn merge_remote_state(
        &mut self,
        states: &[lifeguard_proto::PushNodeState],
        now: Time,
        out: &mut Vec<Output>,
    ) {
        for st in states {
            match st.state {
                MemberState::Alive => {
                    // `handle_alive` ignores alives at or below the known
                    // incarnation; decide that from the borrowed entry.
                    if st.name == self.name {
                        continue;
                    }
                    if let Some(member) = self.membership.get(&st.name) {
                        if st.incarnation <= member.incarnation {
                            continue;
                        }
                    }
                    let alive = Alive {
                        incarnation: st.incarnation,
                        node: st.name.clone(),
                        addr: st.addr,
                        meta: st.meta.clone(),
                    };
                    self.handle_alive(alive, now, out);
                }
                MemberState::Suspect | MemberState::Dead => {
                    if st.name == self.name {
                        self.refute(st.incarnation, now, out);
                        continue;
                    }
                    match self.membership.get(&st.name) {
                        // A suspicion below the known incarnation, or
                        // about a member already dead/left, is a no-op
                        // in `suspect_node`: drop it borrowed.
                        Some(member)
                            if st.incarnation < member.incarnation
                                || matches!(
                                    member.state,
                                    MemberState::Dead | MemberState::Left
                                ) =>
                        {
                            continue;
                        }
                        Some(_) => {}
                        // Learn the member first if unknown (a suspect
                        // entry still carries a usable address).
                        None => {
                            let alive = Alive {
                                incarnation: st.incarnation,
                                node: st.name.clone(),
                                addr: st.addr,
                                meta: st.meta.clone(),
                            };
                            self.handle_alive(alive, now, out);
                        }
                    }
                    let suspect = Suspect {
                        incarnation: st.incarnation,
                        node: st.name.clone(),
                        from: self.name.clone(),
                    };
                    self.handle_suspect(suspect, now, out);
                }
                MemberState::Left => {
                    // A leave claim about ourselves is refuted exactly as
                    // `handle_dead` would.
                    if st.name == self.name {
                        if !self.left {
                            self.refute(st.incarnation, now, out);
                        }
                        continue;
                    }
                    // `handle_dead` drops claims about unknown members,
                    // stale incarnations and already-gone members.
                    match self.membership.get(&st.name) {
                        None => continue,
                        Some(member)
                            if st.incarnation < member.incarnation
                                || matches!(
                                    member.state,
                                    MemberState::Dead | MemberState::Left
                                ) =>
                        {
                            continue;
                        }
                        Some(_) => {}
                    }
                    let dead = Dead {
                        incarnation: st.incarnation,
                        node: st.name.clone(),
                        from: st.name.clone(),
                    };
                    self.handle_dead(dead, now, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Send helpers
    // ------------------------------------------------------------------

    /// Builds and emits one datagram: the primary messages plus gossip
    /// piggyback. `ping_target` enables the Buddy System hook: when set
    /// and the target is suspected, the suspect message about it is
    /// force-included first (paper §IV-C).
    fn send_packet(
        &mut self,
        to: NodeAddr,
        primary: Vec<Message>,
        ping_target: Option<&NodeName>,
        _now: Time,
        out: &mut Vec<Output>,
    ) {
        let mut builder = CompoundBuilder::new(self.config.packet_budget);
        for msg in &primary {
            // Encoded straight into the packet buffer: no per-message
            // allocation on the assembly path.
            let added = builder.try_add_msg(msg);
            debug_assert!(added, "primary message must fit");
        }
        let mut exclude = None;
        if let Some(target) = ping_target {
            if self.config.lifeguard.buddy_system {
                if let Some(active) = self.suspicions.get(target) {
                    let suspect = Message::Suspect(Suspect {
                        incarnation: active.sus.incarnation(),
                        node: target.clone(),
                        from: self.name.clone(),
                    });
                    builder.try_add_msg(&suspect);
                    exclude = Some(target.clone());
                }
            }
        }
        let limit = self.config.retransmit_limit(self.membership.live_count());
        self.broadcasts.fill(&mut builder, limit, exclude.as_ref());
        if let Some(payload) = builder.finish() {
            out.push(Output::Packet { to, payload });
        }
    }

    fn next_seq(&mut self) -> SeqNo {
        self.seq = self.seq.next();
        self.seq
    }

    fn schedule(&mut self, at: Time, timer: Timer) -> TimerKey {
        self.timers.schedule(at, timer)
    }

    fn random_phase(&mut self, interval: std::time::Duration) -> std::time::Duration {
        let us = interval.as_micros().max(1) as u64;
        std::time::Duration::from_micros(self.rng.random_range(0..us))
    }

    /// The queued gossip broadcast about `subject`, if any (test/debug
    /// introspection).
    pub fn queued_broadcast_for(&self, subject: &NodeName) -> Option<&Message> {
        self.broadcasts.queued_for(subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LifeguardConfig;
    use std::time::Duration;

    fn addr(i: u8) -> NodeAddr {
        NodeAddr::new([10, 0, 0, i], 7946)
    }

    fn node(cfg: Config) -> SwimNode {
        let mut n = SwimNode::new("local".into(), addr(1), cfg, 1);
        n.start(Time::ZERO);
        n
    }

    /// Registers `name` as an alive peer via an alive message.
    fn add_peer(n: &mut SwimNode, name: &str, i: u8, now: Time) {
        let outputs = n.handle_message_in(
            addr(i),
            Message::Alive(Alive {
                incarnation: Incarnation(1),
                node: name.into(),
                addr: addr(i),
                meta: Bytes::new(),
            }),
            now,
        );
        assert!(outputs
            .iter()
            .any(|o| matches!(o, Output::Event(Event::MemberJoined { .. }))));
    }

    fn events(outputs: &[Output]) -> Vec<&Event> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Event(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    fn packets(outputs: &[Output]) -> Vec<(NodeAddr, Vec<Message>)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Packet { to, payload } => {
                    Some((*to, compound::decode_packet(payload).unwrap()))
                }
                _ => None,
            })
            .collect()
    }

    /// Runs the node's timers up to `until`, collecting outputs.
    fn run_until(n: &mut SwimNode, until: Time) -> Vec<Output> {
        let mut out = Vec::new();
        while let Some(wake) = n.next_wake() {
            if wake > until {
                break;
            }
            out.extend(n.tick(wake));
        }
        out
    }

    #[test]
    fn start_arms_timers() {
        let n = node(Config::lan());
        assert!(n.next_wake().is_some());
        assert_eq!(n.num_alive(), 1);
        assert_eq!(n.incarnation(), Incarnation::ZERO);
    }

    #[test]
    #[should_panic(expected = "start() called twice")]
    fn double_start_panics() {
        let mut n = node(Config::lan());
        n.start(Time::ZERO);
    }

    #[test]
    fn ping_is_acked_to_source() {
        let mut n = node(Config::lan());
        let out = n.handle_message_in(
            addr(2),
            Message::Ping(Ping {
                seq: SeqNo(7),
                target: "local".into(),
                source: "peer".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        let pkts = packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].0, addr(2));
        assert_eq!(pkts[0].1[0], Message::Ack(Ack { seq: SeqNo(7) }));
    }

    #[test]
    fn misaddressed_ping_is_dropped() {
        let mut n = node(Config::lan());
        let out = n.handle_message_in(
            addr(2),
            Message::Ping(Ping {
                seq: SeqNo(7),
                target: "someone-else".into(),
                source: "peer".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        assert!(packets(&out).is_empty());
    }

    #[test]
    fn alive_message_adds_member() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "peer-1", 2, Time::from_secs(1));
        assert_eq!(n.num_alive(), 2);
        let m = n.member(&"peer-1".into()).unwrap();
        assert_eq!(m.state, MemberState::Alive);
        assert_eq!(m.incarnation, Incarnation(1));
        // The alive message is re-gossiped.
        assert!(n.pending_broadcasts() > 0);
    }

    #[test]
    fn stale_alive_does_not_override_suspect() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        let out = n.handle_message_in(
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(2),
        );
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberSuspected { .. })));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);

        // Alive at the same incarnation must NOT clear the suspicion.
        let out = n.handle_message_in(
            addr(2),
            Message::Alive(Alive {
                incarnation: Incarnation(1),
                node: "p".into(),
                addr: addr(2),
                meta: Bytes::new(),
            }),
            Time::from_secs(3),
        );
        assert!(events(&out).is_empty());
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);

        // Alive at a higher incarnation refutes it.
        let out = n.handle_message_in(
            addr(2),
            Message::Alive(Alive {
                incarnation: Incarnation(2),
                node: "p".into(),
                addr: addr(2),
                meta: Bytes::new(),
            }),
            Time::from_secs(4),
        );
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberRecovered { .. })));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Alive);
    }

    #[test]
    fn suspect_about_self_is_refuted() {
        let mut n = node(Config::lan().lifeguard());
        let health_before = n.local_health();
        let out = n.handle_message_in(
            addr(2),
            Message::Suspect(Suspect {
                incarnation: Incarnation::ZERO,
                node: "local".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(1),
        );
        assert!(n.incarnation() > Incarnation::ZERO);
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::SelfRefuted { .. })));
        // Refutation costs local health (+1).
        assert_eq!(n.local_health(), health_before + 1);
        // An alive broadcast is queued.
        assert!(n.pending_broadcasts() > 0);
    }

    #[test]
    fn dead_about_self_is_refuted() {
        let mut n = node(Config::lan());
        let out = n.handle_message_in(
            addr(2),
            Message::Dead(Dead {
                incarnation: Incarnation(3),
                node: "local".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(1),
        );
        assert_eq!(n.incarnation(), Incarnation(4));
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::SelfRefuted { .. })));
    }

    #[test]
    fn suspicion_expires_to_dead_with_fixed_swim_timeout() {
        let mut n = node(Config::lan()); // SWIM: α=5, β(eff)=1
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        n.handle_message_in(
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(2),
        );
        // n = 2 live ⇒ min = 5·max(1, log10(2))·1 s = 5 s.
        let out = run_until(&mut n, Time::from_secs(2) + Duration::from_millis(5001));
        let fails: Vec<_> = events(&out)
            .into_iter()
            .filter(|e| e.is_failure())
            .collect();
        assert_eq!(fails.len(), 1);
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Dead);
    }

    #[test]
    fn lha_suspicion_starts_at_max_and_confirmations_shorten_it() {
        let mut n = node(Config::lan().lifeguard());
        for (i, name) in ["p", "a", "b", "c"].iter().enumerate() {
            add_peer(&mut n, name, i as u8 + 2, Time::from_secs(1));
        }
        let t0 = Time::from_secs(2);
        n.handle_message_in(
            addr(9),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "a".into(),
            }),
            t0,
        );
        // n = 5 live ⇒ min = 5 s, max = 30 s. No confirmations: not dead
        // at min + ε.
        let out = run_until(&mut n, t0 + Duration::from_millis(5500));
        assert!(events(&out).iter().all(|e| !e.is_failure()));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);

        // Three independent confirmations drive the deadline to min,
        // which has already passed → immediate failure on next tick.
        for from in ["b", "c", "local-other"] {
            n.handle_message_in(
                addr(9),
                Message::Suspect(Suspect {
                    incarnation: Incarnation(1),
                    node: "p".into(),
                    from: from.into(),
                }),
                t0 + Duration::from_millis(5600),
            );
        }
        let out = run_until(&mut n, t0 + Duration::from_millis(5700));
        assert!(events(&out).iter().any(|e| e.is_failure()));
    }

    #[test]
    fn independent_suspicions_are_regossiped_at_most_k_times() {
        let mut n = node(Config::lan().lifeguard());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        n.handle_message_in(
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "a".into(),
            }),
            Time::from_secs(2),
        );
        // Queue currently holds the initial suspect broadcast.
        let mut regossiped = 0;
        for from in ["b", "c", "d", "e", "f"] {
            let before = n.pending_broadcasts();
            n.handle_message_in(
                addr(3),
                Message::Suspect(Suspect {
                    incarnation: Incarnation(1),
                    node: "p".into(),
                    from: from.into(),
                }),
                Time::from_secs(3),
            );
            // Re-gossip replaces the queued suspect (same subject), so
            // the queue length is unchanged; detect via queued message.
            if n.pending_broadcasts() == before {
                if let Some(Message::Suspect(s)) = n.queued_broadcast_for(&"p".into()) {
                    if s.from == NodeName::from(from) {
                        regossiped += 1;
                    }
                }
            }
        }
        assert_eq!(regossiped, 3, "exactly K=3 confirmations re-gossiped");
    }

    #[test]
    fn probe_failure_raises_suspicion_and_lhm() {
        let mut n = node(Config::lan().lifeguard());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        // Run past a whole probe round with no responses: the probe
        // fails (no ack, no nacks possible with one peer).
        let out = run_until(&mut n, Time::from_secs(4));
        let suspected = events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberSuspected { name, .. } if name.as_str() == "p"));
        assert!(suspected, "unanswered probe must raise a suspicion");
        assert!(n.local_health() >= 1, "failed probe must cost local health");
    }

    #[test]
    fn acked_probe_improves_lhm() {
        let mut n = node(Config::lan().lifeguard());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        // Push LHM up first.
        n.handle_message_in(
            addr(2),
            Message::Suspect(Suspect {
                incarnation: Incarnation::ZERO,
                node: "local".into(),
                from: "p".into(),
            }),
            Time::from_secs(1),
        );
        let health = n.local_health();
        assert!(health > 0);

        // Find the ping the probe round sends and ack it in time.
        let mut acked = false;
        for _ in 0..50 {
            let wake = n.next_wake().unwrap();
            let out = n.tick(wake);
            for (to, msgs) in packets(&out) {
                for m in msgs {
                    if let Message::Ping(p) = m {
                        assert_eq!(to, addr(2));
                        n.handle_message_in(
                            addr(2),
                            Message::Ack(Ack { seq: p.seq }),
                            wake + Duration::from_millis(1),
                        );
                        acked = true;
                    }
                }
            }
            if acked {
                break;
            }
        }
        assert!(acked, "probe round never sent a ping");
        assert_eq!(n.local_health(), health - 1);
    }

    #[test]
    fn indirect_ping_is_relayed_and_ack_forwarded() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "target", 3, Time::from_secs(1));
        let out = n.handle_message_in(
            addr(2),
            Message::IndirectPing(IndirectPing {
                seq: SeqNo(99),
                target: "target".into(),
                target_addr: addr(3),
                nack: true,
                source: "origin".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        let pkts = packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].0, addr(3));
        let relayed_seq = match &pkts[0].1[0] {
            Message::Ping(p) => {
                assert_eq!(p.target.as_str(), "target");
                p.seq
            }
            other => panic!("expected relayed ping, got {other:?}"),
        };

        // Target acks → the ack is forwarded to the origin with the
        // origin's sequence number.
        let out = n.handle_message_in(
            addr(3),
            Message::Ack(Ack { seq: relayed_seq }),
            Time::from_secs(1) + Duration::from_millis(10),
        );
        let pkts = packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].0, addr(2));
        assert_eq!(pkts[0].1[0], Message::Ack(Ack { seq: SeqNo(99) }));
    }

    #[test]
    fn relay_sends_nack_at_deadline_when_target_silent() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "target", 3, Time::from_secs(1));
        n.handle_message_in(
            addr(2),
            Message::IndirectPing(IndirectPing {
                seq: SeqNo(99),
                target: "target".into(),
                target_addr: addr(3),
                nack: true,
                source: "origin".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        // 80% of the 500 ms probe timeout = 400 ms.
        let out = run_until(&mut n, Time::from_secs(1) + Duration::from_millis(401));
        let nacks: Vec<_> = packets(&out)
            .into_iter()
            .filter(|(to, msgs)| {
                *to == addr(2) && msgs.iter().any(|m| matches!(m, Message::Nack(k) if k.seq == SeqNo(99)))
            })
            .collect();
        assert_eq!(nacks.len(), 1);
    }

    #[test]
    fn leave_broadcasts_self_signed_dead() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        let out = n.leave(Time::from_secs(2));
        assert!(n.has_left());
        let mut saw_leave = false;
        for (_, msgs) in packets(&out) {
            for m in msgs {
                if let Message::Dead(d) = m {
                    assert_eq!(d.node, d.from);
                    saw_leave = true;
                }
            }
        }
        assert!(saw_leave, "leave must gossip a self-signed dead message");
    }

    #[test]
    fn peer_leave_emits_member_left() {
        let mut n = node(Config::lan());
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        let out = n.handle_message_in(
            addr(2),
            Message::Dead(Dead {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "p".into(),
            }),
            Time::from_secs(2),
        );
        assert!(events(&out)
            .iter()
            .any(|e| matches!(e, Event::MemberLeft { .. })));
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Left);
    }

    #[test]
    fn push_pull_merge_downgrades_dead_to_suspect() {
        let mut n = node(Config::lan());
        let states = vec![
            lifeguard_proto::PushNodeState {
                name: "p".into(),
                addr: addr(2),
                incarnation: Incarnation(1),
                state: MemberState::Dead,
                meta: Bytes::new(),
            },
        ];
        let out = n.handle_stream(
            addr(2),
            Message::PushPull(PushPull {
                join: true,
                reply: false,
                states,
            }),
            Time::from_secs(1),
        );
        // Dead entries are merged as suspicions so the victim can refute.
        assert_eq!(n.member(&"p".into()).unwrap().state, MemberState::Suspect);
        // And the exchange is answered.
        assert!(out
            .iter()
            .any(|o| matches!(o, Output::Stream { msg: Message::PushPull(pp), .. } if pp.reply)));
    }

    #[test]
    fn stream_ping_gets_stream_ack() {
        let mut n = node(Config::lan());
        let out = n.handle_stream(
            addr(2),
            Message::Ping(Ping {
                seq: SeqNo(5),
                target: "local".into(),
                source: "peer".into(),
                source_addr: addr(2),
            }),
            Time::from_secs(1),
        );
        assert!(matches!(
            &out[0],
            Output::Stream { msg: Message::Ack(a), .. } if a.seq == SeqNo(5)
        ));
    }

    #[test]
    fn buddy_system_includes_suspect_in_ping_to_suspected() {
        let mut cfg = Config::lan();
        cfg.lifeguard = LifeguardConfig::buddy_system_only();
        let mut n = node(cfg);
        add_peer(&mut n, "p", 2, Time::from_secs(1));
        n.handle_message_in(
            addr(3),
            Message::Suspect(Suspect {
                incarnation: Incarnation(1),
                node: "p".into(),
                from: "accuser".into(),
            }),
            Time::from_secs(2),
        );
        // Drain the broadcast queue completely so only the buddy hook
        // could possibly attach the suspicion.
        while n.pending_broadcasts() > 0 {
            let wake = n.next_wake().unwrap();
            n.tick(wake);
        }
        // Probe rounds target "p" (the only peer): the ping must carry
        // the suspect message about "p".
        let mut saw_buddy = false;
        for _ in 0..100 {
            let Some(wake) = n.next_wake() else { break };
            if wake > Time::from_secs(60) {
                break;
            }
            let out = n.tick(wake);
            for (to, msgs) in packets(&out) {
                let has_ping = msgs.iter().any(
                    |m| matches!(m, Message::Ping(p) if p.target.as_str() == "p"),
                );
                if has_ping && to == addr(2) {
                    let has_suspect = msgs.iter().any(
                        |m| matches!(m, Message::Suspect(s) if s.node.as_str() == "p"),
                    );
                    if has_suspect {
                        saw_buddy = true;
                    }
                }
            }
            if saw_buddy {
                break;
            }
        }
        assert!(
            saw_buddy,
            "buddy system must attach the suspicion to pings of the suspected member"
        );
    }

    #[test]
    fn join_sends_push_pull_to_seeds() {
        let mut n = node(Config::lan());
        let out = n.join(&[addr(5), addr(1)], Time::ZERO);
        // addr(1) is ourselves and is skipped.
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            Output::Stream { to, msg: Message::PushPull(pp) } if *to == addr(5) && pp.join && !pp.reply
        ));
    }

    #[test]
    fn datagram_decode_error_is_propagated() {
        let mut n = node(Config::lan());
        assert!(n.handle_datagram(addr(2), &[250, 250], Time::ZERO).is_err());
    }
}
