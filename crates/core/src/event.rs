//! Membership change events.
//!
//! Events report what the *local* node concluded about the group. The
//! experiment harness classifies `MemberFailed` events into true and false
//! positives; applications use them to drive failover.

use lifeguard_proto::{Incarnation, NodeName};

/// A membership conclusion reached by the local node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// A new member became known (via gossip, push-pull or join).
    MemberJoined {
        /// The new member.
        name: NodeName,
    },
    /// The local node now suspects `name` of having failed.
    MemberSuspected {
        /// The suspected member.
        name: NodeName,
        /// The member whose suspicion we adopted (ourselves if we raised
        /// it from a failed probe).
        from: NodeName,
    },
    /// The local node declared `name` failed. This is the "failure event"
    /// counted by the paper's false-positive metrics.
    MemberFailed {
        /// The failed member.
        name: NodeName,
        /// Incarnation at which it was declared failed.
        incarnation: Incarnation,
        /// The member that declared the failure (ourselves if our own
        /// suspicion timer expired; otherwise the gossip origin).
        from: NodeName,
    },
    /// A member left the group gracefully.
    MemberLeft {
        /// The departed member.
        name: NodeName,
    },
    /// A previously suspected or failed member proved to be alive.
    MemberRecovered {
        /// The recovered member.
        name: NodeName,
    },
    /// The local node learned it was suspected (or declared dead) and
    /// refuted with a higher incarnation. Feeds the Local Health
    /// Multiplier (+1).
    SelfRefuted {
        /// The new local incarnation after refutation.
        incarnation: Incarnation,
    },
}

impl Event {
    /// The member the event is about, if it concerns a peer.
    pub fn subject(&self) -> Option<&NodeName> {
        match self {
            Event::MemberJoined { name }
            | Event::MemberSuspected { name, .. }
            | Event::MemberFailed { name, .. }
            | Event::MemberLeft { name }
            | Event::MemberRecovered { name } => Some(name),
            Event::SelfRefuted { .. } => None,
        }
    }

    /// Whether this is a failure declaration (the paper's "failure event").
    pub fn is_failure(&self) -> bool {
        matches!(self, Event::MemberFailed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subject_and_failure_classification() {
        let e = Event::MemberFailed {
            name: "x".into(),
            incarnation: Incarnation(1),
            from: "y".into(),
        };
        assert_eq!(e.subject(), Some(&NodeName::from("x")));
        assert!(e.is_failure());

        let r = Event::SelfRefuted {
            incarnation: Incarnation(2),
        };
        assert_eq!(r.subject(), None);
        assert!(!r.is_failure());
    }
}
