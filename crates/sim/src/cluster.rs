//! The simulated cluster: N protocol nodes + network + anomaly injection.
//!
//! Reproduces the paper's experiment environment (§V-E): many agents on
//! one machine's loopback interface, with message send/receive *blocked*
//! at selected nodes for controlled periods. A paused node's inbound
//! messages and timers are queued and processed the moment it resumes —
//! exactly the observable behaviour of a process starved of CPU.
//!
//! The whole simulation is deterministic for a given
//! [`ClusterBuilder::seed`]: node RNGs, network jitter and event ordering
//! are all derived from it.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use lifeguard_core::config::Config;
use lifeguard_core::driver::{Driver, OwnedOutput, Sink};
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_proto::{codec, Message, NodeAddr, NodeName};

use crate::anomaly::AnomalySpec;
use crate::clock::{SimDuration, SimTime};
use crate::event_queue::EventQueue;
use crate::network::{Delivery, Network, NetworkConfig};
use crate::telemetry::Telemetry;
use crate::trace::Trace;

/// An action injected into a running simulation.
#[derive(Clone, Debug)]
pub enum SimAction {
    /// Hard-kill a node: it stops processing forever (true failure).
    Crash {
        /// Index of the node to crash.
        node: usize,
    },
    /// Pause a node (anomaly) for `duration` from the current instant.
    Pause {
        /// Index of the node to pause.
        node: usize,
        /// How long the node blocks.
        duration: Duration,
    },
    /// Make a node leave the group gracefully.
    Leave {
        /// Index of the leaving node.
        node: usize,
    },
    /// Replace a node's application metadata (controlled membership
    /// churn: bumps the incarnation and gossips the change, without the
    /// failure-detector side effects of a pause or crash).
    UpdateMeta {
        /// Index of the node whose metadata changes.
        node: usize,
        /// The new metadata blob.
        meta: Bytes,
    },
    /// Sever connectivity between two nodes (both directions).
    Partition {
        /// One side.
        a: usize,
        /// Other side.
        b: usize,
    },
    /// Remove all partitions.
    HealPartitions,
}

enum SimEvent {
    Wake { node: usize },
    Datagram { to: usize, from: NodeAddr, payload: Bytes },
    Stream { to: usize, from: NodeAddr, msg: Message },
    PauseStart { node: usize, until: SimTime },
    PauseEnd { node: usize },
}

struct NodeSlot {
    /// The protocol core behind the shared sans-I/O driver harness.
    driver: Driver,
    paused_until: Option<SimTime>,
    crashed: bool,
    wake_marker: Option<SimTime>,
    /// Sends generated while paused ("block immediately before
    /// sending"); flushed in order at the end of the anomaly.
    outbox: Vec<OwnedOutput>,
}

/// The simulator's [`Sink`]: packets and stream messages enter the
/// simulated network (or a paused node's outbox), events enter the
/// trace. One instance is materialised per driver call from split
/// borrows of the cluster's fields.
struct SimSink<'a> {
    from_idx: usize,
    from_addr: NodeAddr,
    now: SimTime,
    paused: bool,
    outbox: &'a mut Vec<OwnedOutput>,
    queue: &'a mut EventQueue<SimEvent>,
    network: &'a mut Network,
    addr_to_idx: &'a HashMap<NodeAddr, usize>,
    trace: &'a mut Trace,
    telemetry: &'a mut Telemetry,
}

impl SimSink<'_> {
    fn deliver_packet(&mut self, to: NodeAddr, payload: Bytes) {
        self.telemetry.record_datagram(self.from_idx, payload.len());
        let Some(&to_idx) = self.addr_to_idx.get(&to) else {
            return; // address outside the simulation
        };
        match self.network.datagram(self.from_idx, to_idx) {
            Delivery::Deliver(delay) => self.queue.push(
                self.now + delay,
                SimEvent::Datagram {
                    to: to_idx,
                    from: self.from_addr,
                    payload,
                },
            ),
            Delivery::Dropped => {}
        }
    }

    fn deliver_stream(&mut self, to: NodeAddr, msg: Message) {
        self.telemetry
            .record_stream(self.from_idx, codec::encoded_len(&msg));
        let Some(&to_idx) = self.addr_to_idx.get(&to) else {
            return;
        };
        match self.network.stream(self.from_idx, to_idx) {
            Delivery::Deliver(delay) => self.queue.push(
                self.now + delay,
                SimEvent::Stream {
                    to: to_idx,
                    from: self.from_addr,
                    msg,
                },
            ),
            Delivery::Dropped => {}
        }
    }

    /// Dispatches a previously captured (outbox) output as if it were
    /// produced now — used when a pause ends and the blocked sends are
    /// released.
    fn dispatch_owned(&mut self, output: OwnedOutput) {
        match output {
            OwnedOutput::Packet { to, payload } => self.deliver_packet(to, payload),
            OwnedOutput::Stream { to, msg } => self.deliver_stream(to, msg),
            OwnedOutput::Event(e) => self.trace.record(self.now, self.from_idx, e),
        }
    }
}

impl Sink for SimSink<'_> {
    fn transmit(&mut self, to: NodeAddr, payload: &[u8]) {
        // A paused node blocks before sending: network effects are held
        // in its outbox until the anomaly ends. In-flight packets
        // outlive the borrow of the node's scratch, so both paths copy
        // the payload into an owned buffer.
        if self.paused {
            self.outbox.push(OwnedOutput::Packet {
                to,
                payload: Bytes::copy_from_slice(payload),
            });
        } else {
            self.deliver_packet(to, Bytes::copy_from_slice(payload));
        }
    }

    fn stream(&mut self, to: NodeAddr, msg: Message) {
        if self.paused {
            self.outbox.push(OwnedOutput::Stream { to, msg });
        } else {
            self.deliver_stream(to, msg);
        }
    }

    fn event(&mut self, event: lifeguard_core::event::Event) {
        // A paused node's membership conclusions are still logged (the
        // paper's analysis reads the agents' logs, which are written
        // regardless).
        self.trace.record(self.now, self.from_idx, event);
    }
}

/// Configures and builds a [`Cluster`].
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    n: usize,
    config: Config,
    seed: u64,
    network: NetworkConfig,
    anomalies: Vec<(usize, AnomalySpec)>,
    full_mesh: bool,
}

impl ClusterBuilder {
    /// A cluster of `n` nodes named `node-0 … node-{n-1}`, with `node-0`
    /// acting as the join seed.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "cluster needs at least one node");
        ClusterBuilder {
            n,
            config: Config::lan(),
            seed: 0,
            network: NetworkConfig::loopback(),
            anomalies: Vec::new(),
            full_mesh: false,
        }
    }

    /// Starts every node with full knowledge of every peer instead of
    /// joining through `node-0`. Skips the O(n²) join/push-pull flood, so
    /// large-cluster benchmarks measure steady-state protocol cost
    /// rather than bootstrap traffic.
    pub fn full_mesh(mut self, enabled: bool) -> Self {
        self.full_mesh = enabled;
        self
    }

    /// Protocol configuration used by every node.
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Master seed for all randomness in the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Network latency/loss model.
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Adds an anomaly schedule for one node.
    pub fn anomaly(mut self, node: usize, spec: AnomalySpec) -> Self {
        assert!(node < self.n, "anomaly node out of range");
        self.anomalies.push((node, spec));
        self
    }

    /// Builds the cluster at simulated time zero: every node is started,
    /// and nodes 1… send a join push-pull to `node-0`.
    pub fn build(self) -> Cluster {
        let n = self.n;
        let mut slots = Vec::with_capacity(n);
        let mut addr_to_idx = HashMap::with_capacity(n);
        for i in 0..n {
            let name = NodeName::from(format!("node-{i}"));
            let addr = Cluster::addr_for(i);
            addr_to_idx.insert(addr, i);
            // Distinct, seed-derived RNG stream per node.
            let node_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            let node = SwimNode::new(name, addr, self.config.clone(), node_seed);
            slots.push(NodeSlot {
                driver: Driver::new(node),
                paused_until: None,
                crashed: false,
                wake_marker: None,
                outbox: Vec::new(),
            });
        }
        let mut cluster = Cluster {
            slots,
            queue: EventQueue::new(),
            network: Network::new(self.network, self.seed.wrapping_add(0x00C0_FFEE)),
            addr_to_idx,
            now: SimTime::ZERO,
            trace: Trace::new(),
            telemetry: Telemetry::new(n),
        };
        // Boot + join (or direct full-mesh bootstrap).
        let seed_addr = Cluster::addr_for(0);
        let roster: Vec<(NodeName, NodeAddr)> = if self.full_mesh {
            (0..n)
                .map(|i| (Cluster::name_of(i), Cluster::addr_for(i)))
                .collect()
        } else {
            Vec::new()
        };
        for i in 0..n {
            cluster.with_sink(i, |driver, sink| driver.start(SimTime::ZERO, sink));
            if self.full_mesh {
                cluster.slots[i]
                    .driver
                    .node_mut()
                    .bootstrap_peers(roster.iter().cloned(), SimTime::ZERO);
            } else if i > 0 {
                cluster.with_sink(i, |driver, sink| {
                    driver.join(vec![seed_addr], SimTime::ZERO, sink);
                });
            }
            cluster.ensure_wake(i);
        }
        // Schedule anomaly windows.
        for (node, spec) in &self.anomalies {
            let wseed = self.seed.wrapping_add(0xA0_0000 + *node as u64);
            for w in spec.windows(wseed) {
                cluster
                    .queue
                    .push(w.start, SimEvent::PauseStart { node: *node, until: w.end });
                cluster.queue.push(w.end, SimEvent::PauseEnd { node: *node });
            }
        }
        cluster
    }
}

/// A running simulated cluster.
pub struct Cluster {
    slots: Vec<NodeSlot>,
    queue: EventQueue<SimEvent>,
    network: Network,
    addr_to_idx: HashMap<NodeAddr, usize>,
    now: SimTime,
    trace: Trace,
    telemetry: Telemetry,
}

impl Cluster {
    /// The synthetic address of node `i`.
    pub fn addr_for(i: usize) -> NodeAddr {
        NodeAddr::new([10, 0, (i >> 8) as u8, (i & 0xff) as u8], 7946)
    }

    /// The name of node `i`.
    pub fn name_of(i: usize) -> NodeName {
        NodeName::from(format!("node-{i}"))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cluster is empty (never true after building).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, i: usize) -> &SwimNode {
        self.slots[i].driver.node()
    }

    /// The recorded event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The message/byte counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Node `i`'s metrics export in the runtime-independent snapshot
    /// shape: the core's deterministic protocol metrics plus the sim
    /// network's transmit accounting folded into the I/O section —
    /// the same struct the threaded and reactor agents return from
    /// `Agent::metrics()`, so sim and real runs aggregate identically.
    pub fn metrics_snapshot(&self, i: usize) -> lifeguard_metrics::Snapshot {
        let t = self.telemetry.node(i);
        lifeguard_metrics::Snapshot {
            core: self.slots[i].driver.metrics(),
            io: lifeguard_metrics::IoSnapshot {
                datagrams_sent: t.datagrams_sent,
                datagram_bytes: t.datagram_bytes,
                streams_sent: t.streams_sent,
                stream_bytes: t.stream_bytes,
                ..Default::default()
            },
        }
    }

    /// Whether node `i` is currently inside an anomaly window.
    pub fn is_paused(&self, i: usize) -> bool {
        self.slots[i].paused_until.is_some()
    }

    /// Whether node `i` was crashed.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.slots[i].crashed
    }

    /// Runs the simulation until simulated time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(at) = self.queue.peek_time() {
            if at > t {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.dispatch(ev);
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs the simulation for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Injects an action at the current instant.
    pub fn apply(&mut self, action: SimAction) {
        match action {
            SimAction::Crash { node } => {
                self.slots[node].crashed = true;
            }
            SimAction::Pause { node, duration } => {
                let until = self.now + duration;
                self.slots[node].paused_until = Some(until);
                let now = self.now;
                self.with_sink(node, |driver, sink| {
                    driver
                        .handle(Input::IoBlocked { blocked: true }, now, sink)
                        .expect("io-blocked input is infallible");
                });
                self.queue.push(until, SimEvent::PauseEnd { node });
            }
            SimAction::Leave { node } => {
                let now = self.now;
                self.with_sink(node, |driver, sink| driver.leave(now, sink));
                self.ensure_wake(node);
            }
            SimAction::UpdateMeta { node, meta } => {
                let now = self.now;
                self.with_sink(node, |driver, sink| {
                    driver
                        .handle(Input::UpdateMeta { meta }, now, sink)
                        .expect("update-meta input is infallible");
                });
                self.ensure_wake(node);
            }
            SimAction::Partition { a, b } => {
                self.network.set_partitioned(a, b, true);
            }
            SimAction::HealPartitions => {
                self.network.heal_all();
            }
        }
    }

    /// Whether every functioning (non-crashed, non-left) node sees every
    /// other functioning node as alive.
    pub fn converged(&self) -> bool {
        let participants: Vec<usize> = (0..self.len())
            .filter(|&i| !self.slots[i].crashed && !self.slots[i].driver.node().has_left())
            .collect();
        for &i in &participants {
            for &j in &participants {
                if i == j {
                    continue;
                }
                let name = Self::name_of(j);
                match self.slots[i].driver.node().member(&name) {
                    Some(m) if m.state == lifeguard_proto::MemberState::Alive => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Indices of nodes that consider `name` alive right now.
    pub fn nodes_seeing_alive(&self, name: &str) -> Vec<usize> {
        let name = NodeName::from(name);
        (0..self.len())
            .filter(|&i| {
                self.slots[i]
                    .driver
                    .node()
                    .member(&name)
                    .map(|m| m.state == lifeguard_proto::MemberState::Alive)
                    .unwrap_or(false)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: SimEvent) {
        let now = self.now;
        match ev {
            SimEvent::Wake { node } => {
                let slot = &mut self.slots[node];
                if slot.wake_marker != Some(now) {
                    return; // stale wake; a fresher one is queued
                }
                slot.wake_marker = None;
                if slot.crashed {
                    return;
                }
                // Timers run even during an anomaly: the paper's
                // instrumentation blocks only sends/receives, so the
                // agent's logic keeps evaluating wall-clock deadlines.
                // Sends it produces are captured in the outbox by the
                // sink.
                self.with_sink(node, |driver, sink| driver.tick(now, sink));
                self.ensure_wake(node);
            }
            SimEvent::Datagram { to, from, payload } => {
                let slot = &mut self.slots[to];
                if slot.crashed {
                    return;
                }
                if let Some(until) = slot.paused_until {
                    // Blocked on receive: queue for after the anomaly.
                    self.queue
                        .push(until, SimEvent::Datagram { to, from, payload });
                    return;
                }
                // Zero-copy delivery: compound parts and blob fields
                // alias the datagram buffer. Malformed packets are
                // dropped, as a real deployment would.
                self.with_sink(to, |driver, sink| {
                    let _ = driver.handle(Input::Datagram { from, payload }, now, sink);
                });
                self.ensure_wake(to);
            }
            SimEvent::Stream { to, from, msg } => {
                let slot = &mut self.slots[to];
                if slot.crashed {
                    return;
                }
                if let Some(until) = slot.paused_until {
                    self.queue.push(until, SimEvent::Stream { to, from, msg });
                    return;
                }
                self.with_sink(to, |driver, sink| {
                    driver
                        .handle(Input::Stream { from, msg }, now, sink)
                        .expect("stream input is infallible");
                });
                self.ensure_wake(to);
            }
            SimEvent::PauseStart { node, until } => {
                if !self.slots[node].crashed {
                    self.slots[node].paused_until = Some(until);
                    self.with_sink(node, |driver, sink| {
                        driver
                            .handle(Input::IoBlocked { blocked: true }, now, sink)
                            .expect("io-blocked input is infallible");
                    });
                }
            }
            SimEvent::PauseEnd { node } => {
                let slot = &mut self.slots[node];
                if slot.crashed {
                    return;
                }
                // Only clear if this PauseEnd matches the active window
                // (an overlapping manual pause may extend it).
                if slot.paused_until.map(|u| u <= now).unwrap_or(false) {
                    slot.paused_until = None;
                    // "The blocked sends ... are unblocked": flush
                    // everything the node tried to send while paused,
                    // then let the node evaluate its postponed probe
                    // deadlines (which fail, raising suspicions) and any
                    // other due timers.
                    let outbox = std::mem::take(&mut slot.outbox);
                    self.with_sink(node, |driver, sink| {
                        for held in outbox {
                            sink.dispatch_owned(held);
                        }
                        driver
                            .handle(Input::IoBlocked { blocked: false }, now, sink)
                            .expect("io-blocked input is infallible");
                        driver.tick(now, sink);
                    });
                    self.ensure_wake(node);
                }
            }
        }
    }

    /// Runs one driver call with a [`SimSink`] assembled from split
    /// borrows of the cluster's fields — the single place simulated
    /// network I/O, telemetry and tracing attach to the shared driver
    /// harness.
    fn with_sink<R>(&mut self, node: usize, f: impl FnOnce(&mut Driver, &mut SimSink<'_>) -> R) -> R {
        let now = self.now;
        let slot = &mut self.slots[node];
        let paused = slot.paused_until.is_some();
        let from_addr = slot.driver.node().addr();
        let NodeSlot { driver, outbox, .. } = slot;
        let mut sink = SimSink {
            from_idx: node,
            from_addr,
            now,
            paused,
            outbox,
            queue: &mut self.queue,
            network: &mut self.network,
            addr_to_idx: &self.addr_to_idx,
            trace: &mut self.trace,
            telemetry: &mut self.telemetry,
        };
        f(driver, &mut sink)
    }

    /// Arms a wake event at the node's next timer deadline unless an
    /// earlier one is already queued.
    fn ensure_wake(&mut self, node: usize) {
        let slot = &mut self.slots[node];
        if slot.crashed {
            return;
        }
        let Some(wake) = slot.driver.next_wake() else {
            return;
        };
        let wake = wake.max(self.now);
        match slot.wake_marker {
            Some(existing) if existing <= wake => {}
            _ => {
                slot.wake_marker = Some(wake);
                self.queue.push(wake, SimEvent::Wake { node });
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("n", &self.slots.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_core::event::Event;

    #[test]
    fn five_node_cluster_converges() {
        let mut c = ClusterBuilder::new(5).seed(1).build();
        c.run_for(SimDuration::from_secs(15));
        assert!(c.converged(), "cluster failed to converge in 15 s");
        for i in 0..5 {
            assert_eq!(c.node(i).num_alive(), 5);
        }
    }

    #[test]
    fn crashed_node_is_detected_and_disseminated() {
        let mut c = ClusterBuilder::new(8).seed(2).build();
        c.run_for(SimDuration::from_secs(15));
        assert!(c.converged());
        c.apply(SimAction::Crash { node: 7 });
        c.run_for(SimDuration::from_secs(40));
        let detect = c.trace().first_failure_detection("node-7");
        assert!(detect.is_some(), "crash never detected");
        // Everyone else eventually declares it failed.
        let healthy: Vec<usize> = (0..7).collect();
        assert!(c.trace().full_dissemination("node-7", &healthy).is_some());
    }

    #[test]
    fn short_pause_does_not_kill_a_node_with_lifeguard() {
        let mut c = ClusterBuilder::new(8)
            .seed(3)
            .config(Config::lan().lifeguard())
            .build();
        c.run_for(SimDuration::from_secs(15));
        c.apply(SimAction::Pause {
            node: 3,
            duration: Duration::from_millis(1500),
        });
        c.run_for(SimDuration::from_secs(30));
        // A 1.5 s pause may raise suspicions but must never produce a
        // failure declaration about the paused (healthy) node.
        assert_eq!(c.trace().first_failure_detection("node-3"), None);
        assert!(c.nodes_seeing_alive("node-3").len() == 8);
    }

    #[test]
    fn leave_is_not_a_failure() {
        let mut c = ClusterBuilder::new(5).seed(4).build();
        c.run_for(SimDuration::from_secs(15));
        c.apply(SimAction::Leave { node: 4 });
        c.run_for(SimDuration::from_secs(20));
        assert_eq!(c.trace().first_failure_detection("node-4"), None);
        let leaves = c
            .trace()
            .count(|e| matches!(&e.event, Event::MemberLeft { name } if name.as_str() == "node-4"));
        assert!(leaves >= 4, "peers must observe the graceful leave");
    }

    #[test]
    fn determinism_same_seed_same_trace_and_telemetry() {
        let run = |seed: u64| {
            let mut c = ClusterBuilder::new(6).seed(seed).build();
            c.run_for(SimDuration::from_secs(10));
            c.apply(SimAction::Crash { node: 5 });
            c.run_for(SimDuration::from_secs(30));
            let events: Vec<String> = c
                .trace()
                .events()
                .iter()
                .map(|e| format!("{:?}/{}/{:?}", e.at, e.reporter, e.event))
                .collect();
            (events, c.telemetry().total())
        };
        let (ea, ta) = run(77);
        let (eb, tb) = run(77);
        assert_eq!(ea, eb);
        assert_eq!(ta, tb);
        let (ec, _) = run(78);
        assert_ne!(ea, ec, "different seeds should differ");
    }

    #[test]
    fn partition_heals_via_push_pull() {
        let mut c = ClusterBuilder::new(4).seed(5).build();
        c.run_for(SimDuration::from_secs(15));
        // Fully isolate node 3.
        for i in 0..3 {
            c.apply(SimAction::Partition { a: i, b: 3 });
        }
        c.run_for(SimDuration::from_secs(40));
        // The majority side declared node-3 failed.
        assert!(c.trace().first_failure_detection("node-3").is_some());
        c.apply(SimAction::HealPartitions);
        // After healing, Serf-style reconnect push-pulls re-merge the
        // sides: node-3 refutes and everyone sees it alive again.
        let mut recovered = false;
        for _ in 0..30 {
            c.run_for(SimDuration::from_secs(5));
            if c.nodes_seeing_alive("node-3").len() == 4 && c.converged() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "partition did not heal within 150 s");
    }

    #[test]
    fn telemetry_counts_grow_with_time() {
        let mut c = ClusterBuilder::new(4).seed(6).build();
        c.run_for(SimDuration::from_secs(5));
        let early = c.telemetry().total();
        c.run_for(SimDuration::from_secs(5));
        let late = c.telemetry().total();
        assert!(late.messages() > early.messages());
        assert!(late.bytes() > early.bytes());
    }

    #[test]
    fn anomaly_schedule_pauses_and_resumes() {
        let mut c = ClusterBuilder::new(4)
            .seed(7)
            .anomaly(
                2,
                AnomalySpec::Threshold {
                    start: SimTime::from_secs(10),
                    duration: Duration::from_secs(2),
                },
            )
            .build();
        c.run_until(SimTime::from_secs(11));
        assert!(c.is_paused(2));
        c.run_until(SimTime::from_secs(13));
        assert!(!c.is_paused(2));
    }
}
