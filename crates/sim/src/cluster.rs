//! The simulated cluster: N protocol nodes + network + anomaly injection.
//!
//! Reproduces the paper's experiment environment (§V-E): many agents on
//! one machine's loopback interface, with message send/receive *blocked*
//! at selected nodes for controlled periods. A paused node's inbound
//! messages and timers are queued and processed the moment it resumes —
//! exactly the observable behaviour of a process starved of CPU.
//!
//! # Execution model: lanes, windows, canonical commits
//!
//! Nodes are partitioned round-robin over per-node event lanes (the
//! private `lane` module), each with its own event queue. The simulation
//! advances in bounded *windows* no longer than the network's minimum
//! one-way latency: within a window no lane can causally affect another,
//! so lanes run independently — inline when `workers == 1`, on a scoped
//! worker pool otherwise. Cross-node effects are buffered and *committed*
//! between windows in the canonical order `(time, sending node, per-node
//! sequence)`; network RNG draws, telemetry and trace appends all happen
//! at commit. Because that order never depends on lane assignment or
//! thread scheduling, a run is **byte-identical at any worker count**.
//!
//! The whole simulation is deterministic for a given
//! [`ClusterBuilder::seed`]: node RNGs, network jitter and event ordering
//! are all derived from it.
//!
//! # Phantom members
//!
//! Large-scale slices (tens of thousands of members) cannot afford a
//! full driver per member. [`ClusterBuilder::phantom_members`] extends
//! the roster with *phantoms*: members that exist in every real node's
//! tables but are simulated by a canned responder that acks probes and
//! swallows gossip. Real protocol work (tables, sampling, gossip fan-out,
//! probe scheduling) runs against the full roster size while memory and
//! CPU stay proportional to the real-node count.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel;
use lifeguard_core::config::Config;
use lifeguard_core::driver::Driver;
use lifeguard_core::node::{Input, SwimNode};
use lifeguard_proto::{NodeAddr, NodeName};

use crate::anomaly::AnomalySpec;
use crate::clock::{SimDuration, SimTime};
use crate::lane::{EmitKind, Emission, Lane, LaneEvent, LaneSink, NodeSlot, Topology, TraceRecord};
use crate::network::{Delivery, Network, NetworkConfig};
use crate::telemetry::Telemetry;
use crate::trace::Trace;

/// UDP/TCP port every simulated member listens on.
pub(crate) const SIM_PORT: u16 = 7946;

/// An action injected into a running simulation.
#[derive(Clone, Debug)]
pub enum SimAction {
    /// Hard-kill a node: it stops processing forever (true failure).
    Crash {
        /// Index of the node to crash.
        node: usize,
    },
    /// Pause a node (anomaly) for `duration` from the current instant.
    Pause {
        /// Index of the node to pause.
        node: usize,
        /// How long the node blocks.
        duration: Duration,
    },
    /// Make a node leave the group gracefully.
    Leave {
        /// Index of the leaving node.
        node: usize,
    },
    /// Replace a node's application metadata (controlled membership
    /// churn: bumps the incarnation and gossips the change, without the
    /// failure-detector side effects of a pause or crash).
    UpdateMeta {
        /// Index of the node whose metadata changes.
        node: usize,
        /// The new metadata blob.
        meta: Bytes,
    },
    /// Sever connectivity between two nodes (both directions).
    Partition {
        /// One side.
        a: usize,
        /// Other side.
        b: usize,
    },
    /// Remove all partitions.
    HealPartitions,
}

/// Configures and builds a [`Cluster`].
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    n: usize,
    config: Config,
    seed: u64,
    network: NetworkConfig,
    anomalies: Vec<(usize, AnomalySpec)>,
    full_mesh: bool,
    workers: usize,
    phantoms: usize,
}

impl ClusterBuilder {
    /// A cluster of `n` nodes named `node-0 … node-{n-1}`, with `node-0`
    /// acting as the join seed.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "cluster needs at least one node");
        ClusterBuilder {
            n,
            config: Config::lan(),
            seed: 0,
            network: NetworkConfig::loopback(),
            anomalies: Vec::new(),
            full_mesh: false,
            workers: 1,
            phantoms: 0,
        }
    }

    /// Starts every node with full knowledge of every peer instead of
    /// joining through `node-0`. Skips the O(n²) join/push-pull flood, so
    /// large-cluster benchmarks measure steady-state protocol cost
    /// rather than bootstrap traffic.
    pub fn full_mesh(mut self, enabled: bool) -> Self {
        self.full_mesh = enabled;
        self
    }

    /// Protocol configuration used by every node.
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Master seed for all randomness in the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Network latency/loss model.
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Adds an anomaly schedule for one node.
    pub fn anomaly(mut self, node: usize, spec: AnomalySpec) -> Self {
        assert!(node < self.n, "anomaly node out of range");
        self.anomalies.push((node, spec));
        self
    }

    /// Number of worker threads processing event lanes (default 1:
    /// fully inline execution). Any value produces the same trace,
    /// telemetry and final state — parallelism is an implementation
    /// detail of the window scheduler, not an observable input.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Extends the roster with `phantoms` phantom members (indices
    /// `n..n + phantoms`): table entries answered by a canned prober-side
    /// responder instead of a full protocol instance. Requires
    /// [`full_mesh`](Self::full_mesh) bootstrap, since phantoms cannot
    /// execute a join handshake.
    pub fn phantom_members(mut self, phantoms: usize) -> Self {
        self.phantoms = phantoms;
        self
    }

    /// Builds the cluster at simulated time zero: every node is started,
    /// and nodes 1… send a join push-pull to `node-0`.
    pub fn build(self) -> Cluster {
        let n = self.n;
        let total = n + self.phantoms;
        assert!(
            self.phantoms == 0 || self.full_mesh,
            "phantom members require full_mesh bootstrap"
        );
        assert!(total <= 1 << 24, "address scheme supports 2^24 members");
        let topo = Topology {
            lanes: self.workers.clamp(1, n),
            real: n,
            total,
        };
        // The conservative-lookahead horizon: nothing crosses the
        // network faster than the minimum one-way latency, so a window
        // of that length is causally closed per lane.
        let horizon_us = self
            .network
            .datagram_latency
            .min(self.network.stream_latency)
            .as_micros() as u64;
        let mut lanes: Vec<Lane> = (0..topo.lanes).map(|_| Lane::default()).collect();
        let mut addr_to_idx = HashMap::with_capacity(n);
        for i in 0..n {
            let name = NodeName::from(format!("node-{i}"));
            let addr = Cluster::addr_for(i);
            addr_to_idx.insert(addr, i);
            // Distinct, seed-derived RNG stream per node.
            let node_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            let node = SwimNode::new(name, addr, self.config.clone(), node_seed);
            lanes[topo.lane_of(i)].slots.push(NodeSlot {
                driver: Driver::new(node),
                paused_until: None,
                crashed: false,
                wake_marker: None,
                outbox: Vec::new(),
                emit_seq: 0,
            });
        }
        let mut cluster = Cluster {
            lanes,
            network: Network::new(self.network, self.seed.wrapping_add(0x00C0_FFEE)),
            addr_to_idx,
            now: SimTime::ZERO,
            trace: Trace::new(),
            telemetry: Telemetry::new(n),
            topo,
            horizon_us,
            workers: self.workers.max(1),
        };
        // Boot + join (or direct full-mesh bootstrap). Phantom members
        // appear in the bootstrap roster like any other peer.
        let seed_addr = Cluster::addr_for(0);
        let roster: Vec<(NodeName, NodeAddr)> = if self.full_mesh {
            (0..total)
                .map(|i| (Cluster::name_of(i), Cluster::addr_for(i)))
                .collect()
        } else {
            Vec::new()
        };
        for i in 0..n {
            cluster.with_sink(i, |driver, sink| driver.start(SimTime::ZERO, sink));
            if self.full_mesh {
                cluster.slot_mut(i).driver.node_mut().bootstrap_peers(
                    roster.iter().cloned(),
                    SimTime::ZERO,
                );
            } else if i > 0 {
                cluster.with_sink(i, |driver, sink| {
                    driver.join(vec![seed_addr], SimTime::ZERO, sink);
                });
            }
            cluster.ensure_wake(i);
        }
        // Schedule anomaly windows in the owning lane's queue.
        for (node, spec) in &self.anomalies {
            let wseed = self.seed.wrapping_add(0xA0_0000 + *node as u64);
            let lane = &mut cluster.lanes[topo.lane_of(*node)];
            for w in spec.windows(wseed) {
                lane.queue.push(
                    w.start,
                    LaneEvent::PauseStart {
                        node: *node,
                        until: w.end,
                    },
                );
                lane.queue.push(w.end, LaneEvent::PauseEnd { node: *node });
            }
        }
        cluster
    }
}

/// A running simulated cluster.
pub struct Cluster {
    lanes: Vec<Lane>,
    network: Network,
    addr_to_idx: HashMap<NodeAddr, usize>,
    now: SimTime,
    trace: Trace,
    telemetry: Telemetry,
    topo: Topology,
    /// Window length: the network's minimum one-way latency, in µs.
    horizon_us: u64,
    workers: usize,
}

impl Cluster {
    /// The synthetic address of node `i` (10.x.y.z encodes `i` in the
    /// low 24 bits, supporting rosters beyond 2¹⁶ members).
    pub fn addr_for(i: usize) -> NodeAddr {
        NodeAddr::new(
            [10, (i >> 16) as u8, (i >> 8) as u8, i as u8],
            SIM_PORT,
        )
    }

    /// The name of node `i`.
    pub fn name_of(i: usize) -> NodeName {
        NodeName::from(format!("node-{i}"))
    }

    /// Number of real (driver-backed) nodes.
    pub fn len(&self) -> usize {
        self.topo.real
    }

    /// Whether the cluster is empty (never true after building).
    pub fn is_empty(&self) -> bool {
        self.topo.real == 0
    }

    /// Total roster size including phantom members.
    pub fn total_members(&self) -> usize {
        self.topo.total
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to a node's protocol state.
    pub fn node(&self, i: usize) -> &SwimNode {
        self.slot(i).driver.node()
    }

    /// The recorded event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The message/byte counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Node `i`'s metrics export in the runtime-independent snapshot
    /// shape: the core's deterministic protocol metrics plus the sim
    /// network's transmit accounting folded into the I/O section —
    /// the same struct the threaded and reactor agents return from
    /// `Agent::metrics()`, so sim and real runs aggregate identically.
    pub fn metrics_snapshot(&self, i: usize) -> lifeguard_metrics::Snapshot {
        let t = self.telemetry.node(i);
        lifeguard_metrics::Snapshot {
            core: self.slot(i).driver.metrics(),
            io: lifeguard_metrics::IoSnapshot {
                datagrams_sent: t.datagrams_sent,
                datagram_bytes: t.datagram_bytes,
                streams_sent: t.streams_sent,
                stream_bytes: t.stream_bytes,
                ..Default::default()
            },
        }
    }

    /// Whether node `i` is currently inside an anomaly window.
    pub fn is_paused(&self, i: usize) -> bool {
        self.slot(i).paused_until.is_some()
    }

    /// Whether node `i` was crashed.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.slot(i).crashed
    }

    /// Runs the simulation until simulated time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        if self.workers > 1 && self.topo.lanes > 1 {
            self.run_until_parallel(t);
        } else {
            self.run_until_serial(t);
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs the simulation for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Injects an action at the current instant.
    pub fn apply(&mut self, action: SimAction) {
        match action {
            SimAction::Crash { node } => {
                self.slot_mut(node).crashed = true;
            }
            SimAction::Pause { node, duration } => {
                let until = self.now + duration;
                self.slot_mut(node).paused_until = Some(until);
                let now = self.now;
                self.with_sink(node, |driver, sink| {
                    driver
                        .handle(Input::IoBlocked { blocked: true }, now, sink)
                        .expect("io-blocked input is infallible");
                });
                let lane = self.topo.lane_of(node);
                self.lanes[lane]
                    .queue
                    .push(until, LaneEvent::PauseEnd { node });
            }
            SimAction::Leave { node } => {
                let now = self.now;
                self.with_sink(node, |driver, sink| driver.leave(now, sink));
                self.ensure_wake(node);
            }
            SimAction::UpdateMeta { node, meta } => {
                let now = self.now;
                self.with_sink(node, |driver, sink| {
                    driver
                        .handle(Input::UpdateMeta { meta }, now, sink)
                        .expect("update-meta input is infallible");
                });
                self.ensure_wake(node);
            }
            SimAction::Partition { a, b } => {
                self.network.set_partitioned(a, b, true);
            }
            SimAction::HealPartitions => {
                self.network.heal_all();
            }
        }
    }

    /// Whether every functioning (non-crashed, non-left) node sees every
    /// other functioning node as alive.
    pub fn converged(&self) -> bool {
        let participants: Vec<usize> = (0..self.len())
            .filter(|&i| !self.slot(i).crashed && !self.slot(i).driver.node().has_left())
            .collect();
        for &i in &participants {
            for &j in &participants {
                if i == j {
                    continue;
                }
                let name = Self::name_of(j);
                match self.slot(i).driver.node().member(&name) {
                    Some(m) if m.state == lifeguard_proto::MemberState::Alive => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Indices of nodes that consider `name` alive right now.
    pub fn nodes_seeing_alive(&self, name: &str) -> Vec<usize> {
        let name = NodeName::from(name);
        (0..self.len())
            .filter(|&i| {
                self.slot(i)
                    .driver
                    .node()
                    .member(&name)
                    .map(|m| m.state == lifeguard_proto::MemberState::Alive)
                    .unwrap_or(false)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn slot(&self, i: usize) -> &NodeSlot {
        &self.lanes[self.topo.lane_of(i)].slots[self.topo.slot_of(i)]
    }

    fn slot_mut(&mut self, i: usize) -> &mut NodeSlot {
        &mut self.lanes[self.topo.lane_of(i)].slots[self.topo.slot_of(i)]
    }

    /// End of the window opening at `base`: one µs short of the horizon
    /// (a delivery drawn at `base` lands at `base + horizon` at the
    /// earliest, strictly after the window), clipped to the run target.
    fn window_end(base: SimTime, horizon_us: u64, t: SimTime) -> SimTime {
        let w = base.as_micros() + horizon_us.saturating_sub(1);
        SimTime::from_micros(w.min(t.as_micros()))
    }

    /// Earliest pending event across all lanes: the next window's base.
    fn next_event_time(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(|l| l.queue.peek_time()).min()
    }

    fn run_until_serial(&mut self, t: SimTime) {
        let topo = self.topo;
        let mut ems = Vec::new();
        let mut recs = Vec::new();
        while let Some(base) = self.next_event_time() {
            if base > t {
                break;
            }
            let wend = Self::window_end(base, self.horizon_us, t);
            for lane in &mut self.lanes {
                if lane.queue.peek_time().is_none_or(|p| p > wend) {
                    continue; // nothing due: the lane clock catches up lazily
                }
                lane.run_window(wend, topo);
            }
            self.now = wend;
            let Cluster {
                lanes,
                network,
                addr_to_idx,
                telemetry,
                trace,
                ..
            } = self;
            commit_window(lanes, network, addr_to_idx, telemetry, trace, &mut ems, &mut recs);
        }
    }

    /// The same window loop, with lanes shipped to a scoped worker pool.
    /// Lanes move by value through channels (no locks, no shared state);
    /// the coordinator blocks for the window barrier, then commits —
    /// committing is serial by design, it is where the canonical order
    /// is imposed.
    fn run_until_parallel(&mut self, t: SimTime) {
        let topo = self.topo;
        let horizon_us = self.horizon_us;
        let workers = self.workers.min(self.topo.lanes);
        let Cluster {
            lanes,
            network,
            addr_to_idx,
            telemetry,
            trace,
            now,
            ..
        } = self;
        let mut ems = Vec::new();
        let mut recs = Vec::new();
        let (work_tx, work_rx) = channel::unbounded::<(usize, Lane, SimTime)>();
        let (done_tx, done_rx) = channel::unbounded::<(usize, Lane)>();
        let result = crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                let rx = work_rx.clone();
                let tx = done_tx.clone();
                s.spawn(move |_| {
                    while let Ok((i, mut lane, wend)) = rx.recv() {
                        lane.run_window(wend, topo);
                        if tx.send((i, lane)).is_err() {
                            break;
                        }
                    }
                });
            }
            while let Some(base) = lanes.iter().filter_map(|l| l.queue.peek_time()).min() {
                if base > t {
                    break;
                }
                let wend = Self::window_end(base, horizon_us, t);
                let mut sent = 0usize;
                for (i, lane) in lanes.iter_mut().enumerate() {
                    if lane.queue.peek_time().is_none_or(|p| p > wend) {
                        continue;
                    }
                    let lane = std::mem::take(lane);
                    if work_tx.send((i, lane, wend)).is_err() {
                        panic!("sim worker exited prematurely");
                    }
                    sent += 1;
                }
                for _ in 0..sent {
                    let Ok((i, lane)) = done_rx.recv() else {
                        panic!("sim worker exited prematurely");
                    };
                    lanes[i] = lane;
                }
                *now = wend;
                commit_window(lanes, network, addr_to_idx, telemetry, trace, &mut ems, &mut recs);
            }
            drop(work_tx);
        });
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    /// Runs one driver call against the owning lane's sink at the
    /// cluster clock, then immediately commits the buffered effects —
    /// the path for build-time boots and injected actions, which happen
    /// between windows.
    fn with_sink<R>(
        &mut self,
        node: usize,
        f: impl FnOnce(&mut Driver, &mut LaneSink<'_>) -> R,
    ) -> R {
        let topo = self.topo;
        let lane = topo.lane_of(node);
        self.lanes[lane].now = self.now;
        let r = self.lanes[lane].with_sink(node, topo, f);
        let Cluster {
            lanes,
            network,
            addr_to_idx,
            telemetry,
            trace,
            ..
        } = self;
        let mut ems = Vec::new();
        let mut recs = Vec::new();
        commit_window(lanes, network, addr_to_idx, telemetry, trace, &mut ems, &mut recs);
        r
    }

    /// Arms a wake event at the node's next timer deadline unless an
    /// earlier one is already queued.
    fn ensure_wake(&mut self, node: usize) {
        let topo = self.topo;
        let lane = topo.lane_of(node);
        self.lanes[lane].now = self.now;
        self.lanes[lane].ensure_wake(node, topo);
    }
}

/// Sorts the effects buffered by every lane into the canonical
/// `(time, sender, per-sender seq)` order and applies them: telemetry
/// counters, network verdicts (the only RNG draws in the delivery path)
/// and arrival events for the owning lanes, then trace appends in
/// `(time, reporter, seq)` order. This is the serialisation point that
/// makes worker count unobservable.
fn commit_window(
    lanes: &mut [Lane],
    network: &mut Network,
    addr_to_idx: &HashMap<NodeAddr, usize>,
    telemetry: &mut Telemetry,
    trace: &mut Trace,
    ems: &mut Vec<Emission>,
    recs: &mut Vec<TraceRecord>,
) {
    for lane in lanes.iter_mut() {
        ems.append(&mut lane.emissions);
        recs.append(&mut lane.records);
    }
    ems.sort_unstable_by_key(|e| (e.at, e.from, e.seq));
    recs.sort_unstable_by_key(|r| (r.at, r.reporter, r.seq));
    let lanes_n = lanes.len();
    for em in ems.drain(..) {
        let from_addr = Cluster::addr_for(em.from);
        match em.kind {
            EmitKind::Packet { to, payload } => {
                telemetry.record_datagram(em.from, payload.len());
                let Some(&to_idx) = addr_to_idx.get(&to) else {
                    continue; // address outside the simulation
                };
                if let Delivery::Deliver(delay) = network.datagram(em.from, to_idx) {
                    lanes[to_idx % lanes_n].queue.push(
                        em.at + delay,
                        LaneEvent::Datagram {
                            to: to_idx,
                            from: from_addr,
                            payload,
                        },
                    );
                }
            }
            EmitKind::Stream { to, msg, len } => {
                telemetry.record_stream(em.from, len);
                let Some(&to_idx) = addr_to_idx.get(&to) else {
                    continue;
                };
                if let Delivery::Deliver(delay) = network.stream(em.from, to_idx) {
                    lanes[to_idx % lanes_n].queue.push(
                        em.at + delay,
                        LaneEvent::Stream {
                            to: to_idx,
                            from: from_addr,
                            msg,
                        },
                    );
                }
            }
            EmitKind::PhantomPacket {
                phantom,
                len,
                replies,
            } => {
                telemetry.record_datagram(em.from, len);
                // Outbound leg to the phantom; each canned reply then
                // takes its own return leg. Phantom sends are not
                // telemetered — telemetry tracks real nodes only.
                if let Delivery::Deliver(out) = network.datagram(em.from, phantom) {
                    let phantom_addr = Cluster::addr_for(phantom);
                    for (reply_to, payload) in replies {
                        let Some(&to_idx) = addr_to_idx.get(&reply_to) else {
                            continue;
                        };
                        if let Delivery::Deliver(back) = network.datagram(phantom, to_idx) {
                            lanes[to_idx % lanes_n].queue.push(
                                em.at + out + back,
                                LaneEvent::Datagram {
                                    to: to_idx,
                                    from: phantom_addr,
                                    payload,
                                },
                            );
                        }
                    }
                }
            }
            EmitKind::PhantomStream { len } => {
                // Counted like any send, then dropped: phantoms have no
                // stream endpoint, so anti-entropy with them is a no-op.
                telemetry.record_stream(em.from, len);
            }
        }
    }
    for r in recs.drain(..) {
        trace.record(r.at, r.reporter, r.event);
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("n", &self.topo.real)
            .field("phantoms", &(self.topo.total - self.topo.real))
            .field("lanes", &self.topo.lanes)
            .field("workers", &self.workers)
            .field("now", &self.now)
            .field(
                "pending_events",
                &self.lanes.iter().map(|l| l.queue.len()).sum::<usize>(),
            )
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifeguard_core::event::Event;

    #[test]
    fn five_node_cluster_converges() {
        let mut c = ClusterBuilder::new(5).seed(1).build();
        c.run_for(SimDuration::from_secs(15));
        assert!(c.converged(), "cluster failed to converge in 15 s");
        for i in 0..5 {
            assert_eq!(c.node(i).num_alive(), 5);
        }
    }

    #[test]
    fn crashed_node_is_detected_and_disseminated() {
        let mut c = ClusterBuilder::new(8).seed(2).build();
        c.run_for(SimDuration::from_secs(15));
        assert!(c.converged());
        c.apply(SimAction::Crash { node: 7 });
        c.run_for(SimDuration::from_secs(40));
        let detect = c.trace().first_failure_detection("node-7");
        assert!(detect.is_some(), "crash never detected");
        // Everyone else eventually declares it failed.
        let healthy: Vec<usize> = (0..7).collect();
        assert!(c.trace().full_dissemination("node-7", &healthy).is_some());
    }

    #[test]
    fn short_pause_does_not_kill_a_node_with_lifeguard() {
        let mut c = ClusterBuilder::new(8)
            .seed(3)
            .config(Config::lan().lifeguard())
            .build();
        c.run_for(SimDuration::from_secs(15));
        c.apply(SimAction::Pause {
            node: 3,
            duration: Duration::from_millis(1500),
        });
        c.run_for(SimDuration::from_secs(30));
        // A 1.5 s pause may raise suspicions but must never produce a
        // failure declaration about the paused (healthy) node.
        assert_eq!(c.trace().first_failure_detection("node-3"), None);
        assert!(c.nodes_seeing_alive("node-3").len() == 8);
    }

    #[test]
    fn leave_is_not_a_failure() {
        let mut c = ClusterBuilder::new(5).seed(4).build();
        c.run_for(SimDuration::from_secs(15));
        c.apply(SimAction::Leave { node: 4 });
        c.run_for(SimDuration::from_secs(20));
        assert_eq!(c.trace().first_failure_detection("node-4"), None);
        let leaves = c
            .trace()
            .count(|e| matches!(&e.event, Event::MemberLeft { name } if name.as_str() == "node-4"));
        assert!(leaves >= 4, "peers must observe the graceful leave");
    }

    #[test]
    fn determinism_same_seed_same_trace_and_telemetry() {
        let run = |seed: u64| {
            let mut c = ClusterBuilder::new(6).seed(seed).build();
            c.run_for(SimDuration::from_secs(10));
            c.apply(SimAction::Crash { node: 5 });
            c.run_for(SimDuration::from_secs(30));
            let events: Vec<String> = c
                .trace()
                .events()
                .iter()
                .map(|e| format!("{:?}/{}/{:?}", e.at, e.reporter, e.event))
                .collect();
            (events, c.telemetry().total())
        };
        let (ea, ta) = run(77);
        let (eb, tb) = run(77);
        assert_eq!(ea, eb);
        assert_eq!(ta, tb);
        let (ec, _) = run(78);
        assert_ne!(ea, ec, "different seeds should differ");
    }

    #[test]
    fn partition_heals_via_push_pull() {
        let mut c = ClusterBuilder::new(4).seed(5).build();
        c.run_for(SimDuration::from_secs(15));
        // Fully isolate node 3.
        for i in 0..3 {
            c.apply(SimAction::Partition { a: i, b: 3 });
        }
        c.run_for(SimDuration::from_secs(40));
        // The majority side declared node-3 failed.
        assert!(c.trace().first_failure_detection("node-3").is_some());
        c.apply(SimAction::HealPartitions);
        // After healing, Serf-style reconnect push-pulls re-merge the
        // sides: node-3 refutes and everyone sees it alive again.
        let mut recovered = false;
        for _ in 0..30 {
            c.run_for(SimDuration::from_secs(5));
            if c.nodes_seeing_alive("node-3").len() == 4 && c.converged() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "partition did not heal within 150 s");
    }

    #[test]
    fn telemetry_counts_grow_with_time() {
        let mut c = ClusterBuilder::new(4).seed(6).build();
        c.run_for(SimDuration::from_secs(5));
        let early = c.telemetry().total();
        c.run_for(SimDuration::from_secs(5));
        let late = c.telemetry().total();
        assert!(late.messages() > early.messages());
        assert!(late.bytes() > early.bytes());
    }

    #[test]
    fn anomaly_schedule_pauses_and_resumes() {
        let mut c = ClusterBuilder::new(4)
            .seed(7)
            .anomaly(
                2,
                AnomalySpec::Threshold {
                    start: SimTime::from_secs(10),
                    duration: Duration::from_secs(2),
                },
            )
            .build();
        c.run_until(SimTime::from_secs(11));
        assert!(c.is_paused(2));
        c.run_until(SimTime::from_secs(13));
        assert!(!c.is_paused(2));
    }

    #[test]
    fn worker_count_is_unobservable() {
        let run = |workers: usize| {
            let mut c = ClusterBuilder::new(6).seed(21).workers(workers).build();
            c.run_for(SimDuration::from_secs(8));
            c.apply(SimAction::Crash { node: 5 });
            c.run_for(SimDuration::from_secs(22));
            let events: Vec<String> = c
                .trace()
                .events()
                .iter()
                .map(|e| format!("{:?}/{}/{:?}", e.at, e.reporter, e.event))
                .collect();
            (events, c.telemetry().total())
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(5));
    }

    #[test]
    fn phantom_members_are_seen_alive_and_stay_alive() {
        // 4 real nodes + 60 phantoms: every real node should hold the
        // full roster as alive and keep it that way (phantoms always
        // ack probes), without ever declaring a phantom failed.
        let mut c = ClusterBuilder::new(4)
            .seed(11)
            .full_mesh(true)
            .phantom_members(60)
            .build();
        c.run_for(SimDuration::from_secs(30));
        for i in 0..4 {
            assert_eq!(c.node(i).num_alive(), 64, "node {i} lost roster members");
        }
        let phantom_failures = c.trace().count(|e| {
            matches!(&e.event, Event::MemberFailed { name, .. }
                if name.as_str().strip_prefix("node-")
                    .and_then(|s| s.parse::<usize>().ok())
                    .is_some_and(|idx| idx >= 4))
        });
        assert_eq!(phantom_failures, 0, "phantoms must never be declared failed");
    }
}
